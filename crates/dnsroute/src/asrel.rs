//! AS-relationship inference from DNSRoute++ paths (§5).
//!
//! "The AS before the AS of a forwarder indicates an inbound network
//! (AS_in) and the AS after a forwarder the outbound network (AS_out). If
//! AS_in = AS_out, we can assume a provider-customer relationship, since
//! our scanner is outside the customer cone of AS_in." The paper finds
//! AS_in = AS_out on 62 % of 27k usable paths and 41 provider-customer
//! pairs unknown to CAIDA.

use crate::sanitize::ForwarderPath;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// An inferred provider → customer relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct InferredRelationship {
    /// The surrounding network (provider).
    pub provider_asn: u32,
    /// The forwarder's network (customer).
    pub customer_asn: u32,
}

/// Outcome of running inference over a path set.
#[derive(Debug, Clone, Default)]
pub struct InferenceReport {
    /// Paths with usable AS mappings on both sides of the forwarder.
    pub usable_paths: usize,
    /// Paths where `AS_in == AS_out`.
    pub matching_paths: usize,
    /// Distinct inferred provider→customer pairs.
    pub inferred: BTreeSet<InferredRelationship>,
    /// Paths skipped because an IP had no AS mapping.
    pub unmapped: usize,
}

impl InferenceReport {
    /// Share of usable paths with `AS_in == AS_out` (the paper's 62 %).
    pub fn matching_share(&self) -> f64 {
        if self.usable_paths == 0 {
            0.0
        } else {
            self.matching_paths as f64 / self.usable_paths as f64
        }
    }

    /// Split inferred pairs into already-known and newly-discovered
    /// relative to a CAIDA-like baseline (the paper's "41 currently
    /// unclassified relationships").
    pub fn against_baseline(
        &self,
        known: &BTreeSet<(u32, u32)>,
    ) -> (Vec<InferredRelationship>, Vec<InferredRelationship>) {
        let mut known_hits = Vec::new();
        let mut new_pairs = Vec::new();
        for r in &self.inferred {
            if known.contains(&(r.provider_asn, r.customer_asn)) {
                known_hits.push(*r);
            } else {
                new_pairs.push(*r);
            }
        }
        (known_hits, new_pairs)
    }
}

/// Infer relationships from sanitized paths. `asn_of` maps an IP to its
/// origin ASN (Routeviews-style longest-prefix data in the real study; the
/// analysis crate supplies the simulator's mapping with optional noise).
pub fn infer_relationships<F>(paths: &[ForwarderPath], asn_of: F) -> InferenceReport
where
    F: Fn(Ipv4Addr) -> Option<u32>,
{
    let mut report = InferenceReport::default();
    for p in paths {
        let Some(fwd_asn) = asn_of(p.forwarder) else {
            report.unmapped += 1;
            continue;
        };
        // AS_in: last approach hop in a different AS than the forwarder.
        let as_in = p
            .approach
            .iter()
            .rev()
            .filter_map(|&ip| asn_of(ip))
            .find(|&a| a != fwd_asn);
        // AS_out: first hop beyond the forwarder in a different AS.
        let as_out = p
            .via
            .iter()
            .filter_map(|&ip| asn_of(ip))
            .find(|&a| a != fwd_asn);
        let (Some(a_in), Some(a_out)) = (as_in, as_out) else {
            report.unmapped += 1;
            continue;
        };
        report.usable_paths += 1;
        if a_in == a_out {
            report.matching_paths += 1;
            report.inferred.insert(InferredRelationship {
                provider_asn: a_in,
                customer_asn: fwd_asn,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, a, 0, d)
    }

    /// asn_of: 10.A.0.x → ASN 100+A.
    fn asn_of(ip: Ipv4Addr) -> Option<u32> {
        let o = ip.octets();
        if o[0] == 10 {
            Some(100 + u32::from(o[1]))
        } else {
            None
        }
    }

    fn path(approach: Vec<Ipv4Addr>, fwd: Ipv4Addr, via: Vec<Ipv4Addr>) -> ForwarderPath {
        ForwarderPath {
            forwarder: fwd,
            resolver: Ipv4Addr::new(8, 8, 8, 8),
            hop_count: (via.len() + 1) as u8,
            via,
            approach,
        }
    }

    #[test]
    fn matching_in_out_infers_provider_customer() {
        // Provider AS 101 before and after the forwarder in AS 105.
        let p = path(vec![ip(1, 1)], ip(5, 99), vec![ip(1, 2), ip(3, 1)]);
        let r = infer_relationships(&[p], asn_of);
        assert_eq!(r.usable_paths, 1);
        assert_eq!(r.matching_paths, 1);
        assert_eq!(
            r.inferred.iter().copied().collect::<Vec<_>>(),
            vec![InferredRelationship {
                provider_asn: 101,
                customer_asn: 105
            }]
        );
        assert!((r.matching_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_in_out_counts_usable_but_not_matching() {
        let p = path(vec![ip(1, 1)], ip(5, 99), vec![ip(2, 1)]);
        let r = infer_relationships(&[p], asn_of);
        assert_eq!(r.usable_paths, 1);
        assert_eq!(r.matching_paths, 0);
        assert!(r.inferred.is_empty());
    }

    #[test]
    fn intra_as_hops_skipped_when_finding_boundaries() {
        // Hops inside the forwarder's own AS must not count as AS_in/out.
        let p = path(
            vec![ip(1, 1), ip(5, 1)],
            ip(5, 99),
            vec![ip(5, 2), ip(1, 7)],
        );
        let r = infer_relationships(&[p], asn_of);
        assert_eq!(
            r.matching_paths, 1,
            "AS 101 surrounds the forwarder's AS 105"
        );
    }

    #[test]
    fn unmapped_ips_counted() {
        let p = path(
            vec![Ipv4Addr::new(172, 16, 0, 1)],
            ip(5, 99),
            vec![ip(1, 1)],
        );
        let r = infer_relationships(&[p], asn_of);
        assert_eq!(r.usable_paths, 0);
        assert_eq!(r.unmapped, 1);
    }

    #[test]
    fn baseline_split_finds_new_pairs() {
        let p1 = path(vec![ip(1, 1)], ip(5, 99), vec![ip(1, 2)]);
        let p2 = path(vec![ip(2, 1)], ip(6, 99), vec![ip(2, 2)]);
        let r = infer_relationships(&[p1, p2], asn_of);
        let mut known = BTreeSet::new();
        known.insert((101u32, 105u32));
        let (hits, new_pairs) = r.against_baseline(&known);
        assert_eq!(hits.len(), 1);
        assert_eq!(new_pairs.len(), 1);
        assert_eq!(
            new_pairs[0],
            InferredRelationship {
                provider_asn: 102,
                customer_asn: 106
            }
        );
    }

    #[test]
    fn empty_input_is_defined() {
        let r = infer_relationships(&[], asn_of);
        assert_eq!(r.matching_share(), 0.0);
        assert_eq!(r.usable_paths, 0);
    }
}
