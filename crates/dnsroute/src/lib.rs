//! # dnsroute — DNSRoute++ (§5 of the paper)
//!
//! A traceroute variant that sends DNS queries as probes and **continues
//! incrementing the TTL past the target**. Against transparent forwarders
//! this exposes (i) every hop between scanner and forwarder, (ii) the
//! forwarder itself (its IP stack answers Time Exceeded), and (iii) every
//! hop between the forwarder and the recursive resolver it secretly uses —
//! because the relayed probe keeps the scanner's (spoofed) source address,
//! all error messages come home.
//!
//! Three stages mirror the paper:
//!
//! 1. [`run_dnsroute`] — the sweep itself;
//! 2. [`sanitize()`] — drop incomplete/anomalous traces ("over 70k paths …
//!    after sanitization");
//! 3. [`infer_relationships`] — `AS_in == AS_out` provider-customer
//!    inference, evaluated against a CAIDA-like baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asrel;
pub mod sanitize;
pub mod trace;

pub use asrel::{infer_relationships, InferenceReport, InferredRelationship};
pub use sanitize::{check_trace, sanitize, ForwarderPath, SanitizeStats, TraceReject};
pub use trace::{run_dnsroute, DnsEndpoint, DnsRouteConfig, DnsRoutePlusPlus, TraceResult};
