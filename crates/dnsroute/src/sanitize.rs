//! Trace sanitization and the forwarder-path data set.
//!
//! The paper obtains "over 70k paths to 1.1k ASNs *after sanitization*",
//! which "removes incomplete paths due to host churn or traceroute
//! anomalies" (§5). This module applies the same filters and shapes the
//! surviving traces into per-forwarder path records for Figure 6.

use crate::trace::TraceResult;
use std::net::Ipv4Addr;

/// A sanitized forwarder → resolver path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwarderPath {
    /// The transparent forwarder.
    pub forwarder: Ipv4Addr,
    /// The resolver that finally answered (service address for anycast).
    pub resolver: Ipv4Addr,
    /// IP hop count forwarder → resolver (Figure 6's x-axis).
    pub hop_count: u8,
    /// Router addresses strictly between forwarder and resolver.
    pub via: Vec<Ipv4Addr>,
    /// Router addresses scanner → forwarder (exclusive).
    pub approach: Vec<Ipv4Addr>,
}

/// Why a trace was discarded during sanitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceReject {
    /// The target never identified itself with Time Exceeded — not a
    /// transparent forwarder (or it churned away).
    NoForwarderSignature,
    /// No DNS answer arrived within the sweep.
    NoResolverAnswer,
    /// Anonymous hops inside the forwarder→resolver segment.
    IncompleteBeyond,
    /// Nonsensical hop arithmetic (answer TTL not beyond the forwarder).
    Anomalous,
}

/// Sanitization statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Traces accepted.
    pub kept: usize,
    /// Rejections by cause.
    pub rejected_no_signature: usize,
    /// Missing DNS endpoint.
    pub rejected_no_answer: usize,
    /// Anonymous hops beyond the forwarder.
    pub rejected_incomplete: usize,
    /// Inconsistent TTL arithmetic.
    pub rejected_anomalous: usize,
}

impl SanitizeStats {
    /// Total inspected.
    pub fn total(&self) -> usize {
        self.kept
            + self.rejected_no_signature
            + self.rejected_no_answer
            + self.rejected_incomplete
            + self.rejected_anomalous
    }
}

/// Classify a single trace.
pub fn check_trace(t: &TraceResult) -> Result<ForwarderPath, TraceReject> {
    let Some(fwd_ttl) = t.target_seen_at else {
        return Err(TraceReject::NoForwarderSignature);
    };
    let Some(dns) = &t.dns else {
        return Err(TraceReject::NoResolverAnswer);
    };
    if dns.ttl <= fwd_ttl {
        return Err(TraceReject::Anomalous);
    }
    let beyond = t.hops_beyond_target();
    if beyond.iter().any(|h| h.is_none()) {
        return Err(TraceReject::IncompleteBeyond);
    }
    let approach: Vec<Ipv4Addr> = t.hops_before_target().into_iter().flatten().collect();
    Ok(ForwarderPath {
        forwarder: t.target,
        resolver: dns.src,
        hop_count: dns.ttl - fwd_ttl,
        via: beyond.into_iter().flatten().collect(),
        approach,
    })
}

/// Sanitize a whole sweep, returning the surviving paths and statistics.
pub fn sanitize(traces: &[TraceResult]) -> (Vec<ForwarderPath>, SanitizeStats) {
    let mut stats = SanitizeStats::default();
    let mut paths = Vec::new();
    for t in traces {
        match check_trace(t) {
            Ok(p) => {
                stats.kept += 1;
                paths.push(p);
            }
            Err(TraceReject::NoForwarderSignature) => stats.rejected_no_signature += 1,
            Err(TraceReject::NoResolverAnswer) => stats.rejected_no_answer += 1,
            Err(TraceReject::IncompleteBeyond) => stats.rejected_incomplete += 1,
            Err(TraceReject::Anomalous) => stats.rejected_anomalous += 1,
        }
    }
    (paths, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DnsEndpoint;
    use netsim::SimTime;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn good_trace() -> TraceResult {
        TraceResult {
            target: ip(99),
            hops: vec![Some(ip(1)), Some(ip(99)), Some(ip(2)), Some(ip(3))],
            target_seen_at: Some(2),
            dns: Some(DnsEndpoint {
                ttl: 5,
                src: Ipv4Addr::new(8, 8, 8, 8),
                at: SimTime(0),
            }),
        }
    }

    #[test]
    fn clean_trace_accepted() {
        let p = check_trace(&good_trace()).unwrap();
        assert_eq!(p.forwarder, ip(99));
        assert_eq!(p.resolver, Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(p.hop_count, 3);
        assert_eq!(p.via, vec![ip(2), ip(3)]);
        assert_eq!(p.approach, vec![ip(1)]);
    }

    #[test]
    fn missing_signature_rejected() {
        let mut t = good_trace();
        t.target_seen_at = None;
        assert_eq!(check_trace(&t), Err(TraceReject::NoForwarderSignature));
    }

    #[test]
    fn missing_answer_rejected() {
        let mut t = good_trace();
        t.dns = None;
        assert_eq!(check_trace(&t), Err(TraceReject::NoResolverAnswer));
    }

    #[test]
    fn anonymous_hop_beyond_rejected() {
        let mut t = good_trace();
        t.hops[2] = None; // anonymous hop between forwarder and resolver
        assert_eq!(check_trace(&t), Err(TraceReject::IncompleteBeyond));
    }

    #[test]
    fn anomalous_ttl_rejected() {
        let mut t = good_trace();
        t.dns = Some(DnsEndpoint {
            ttl: 2,
            src: Ipv4Addr::new(8, 8, 8, 8),
            at: SimTime(0),
        });
        assert_eq!(check_trace(&t), Err(TraceReject::Anomalous));
    }

    #[test]
    fn sanitize_tallies_causes() {
        let mut bad1 = good_trace();
        bad1.target_seen_at = None;
        let mut bad2 = good_trace();
        bad2.dns = None;
        let (paths, stats) = sanitize(&[good_trace(), bad1, bad2]);
        assert_eq!(paths.len(), 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.rejected_no_signature, 1);
        assert_eq!(stats.rejected_no_answer, 1);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn anonymous_approach_hops_tolerated() {
        // Churn before the forwarder does not invalidate the
        // forwarder→resolver measurement.
        let mut t = good_trace();
        t.hops[0] = None;
        let p = check_trace(&t).unwrap();
        assert!(p.approach.is_empty());
        assert_eq!(p.hop_count, 3);
    }
}
