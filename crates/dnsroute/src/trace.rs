//! The DNSRoute++ engine.
//!
//! Classic traceroute stops when the target answers. DNSRoute++ (§5) sends
//! *DNS queries* as probes and **keeps incrementing the TTL after the
//! target is reached**. Against a transparent forwarder this reveals two
//! segments:
//!
//! 1. scanner → forwarder: ordinary Time Exceeded messages from routers,
//!    then one from the *forwarder itself* (its IP stack answers when the
//!    relay decrement kills the TTL);
//! 2. forwarder → resolver: the relayed probe keeps the scanner's source
//!    address, so Time Exceeded from routers *behind* the forwarder still
//!    reaches the scanner; eventually the probe survives to the resolver
//!    and a DNS answer arrives.
//!
//! Probe identity: one UDP source port per target (ICMP quotes only carry
//! the UDP header, so the port is the only correlator available for
//! Time Exceeded), plus a TTL-encoding transaction ID for DNS answers.

use dnswire::{MessageBuilder, RrType};
use netsim::{
    Ctx, Datagram, Host, IcmpMessage, NodeId, RetryPolicy, SimDuration, SimTime, Simulator, UdpSend,
};
use odns::study;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// DNSRoute++ configuration.
#[derive(Debug, Clone)]
pub struct DnsRouteConfig {
    /// Targets to trace (normally the transparent forwarders found by a
    /// transactional scan — the tool "scans all transparent forwarders").
    pub targets: Vec<Ipv4Addr>,
    /// Highest TTL probed per target.
    pub max_ttl: u8,
    /// Wait per TTL step before moving on (an anonymous hop is recorded).
    pub per_hop_timeout: SimDuration,
    /// Stagger between starting consecutive targets.
    pub start_gap: SimDuration,
    /// First source port; each target owns `base_port + index`.
    pub base_port: u16,
    /// The defining DNSRoute++ behaviour: keep incrementing TTL after the
    /// target answered Time Exceeded. Setting this to `false` degrades the
    /// tool to classic traceroute — the ablation showing why "common
    /// traceroute" cannot see behind a transparent forwarder (§5).
    pub continue_past_target: bool,
    /// Per-hop retransmission policy. On a silent hop timeout the probe
    /// is re-sent (same TTL, same `(port, txid)`) up to
    /// `retry.max_attempts` times before the hop is recorded anonymous
    /// and the sweep advances. [`DnsRouteConfig::per_hop_timeout`] plays
    /// the role of the initial RTO; the policy contributes the attempt
    /// count, backoff multiplier, and jitter.
    pub retry: RetryPolicy,
}

impl DnsRouteConfig {
    /// Defaults: TTL up to 30, 2 s per hop, continue past the target.
    ///
    /// One source port per target bounds a single sweep to the port space
    /// above `base_port` (validated loudly when the prober is built);
    /// larger target sets shard the sweep — each shard world owns its own
    /// port space (see `analysis::run_dnsroute_sharded`).
    pub fn new(targets: Vec<Ipv4Addr>) -> Self {
        DnsRouteConfig {
            targets,
            max_ttl: 30,
            per_hop_timeout: SimDuration::from_secs(2),
            start_gap: SimDuration::from_micros(200),
            base_port: 40_000,
            continue_past_target: true,
            retry: RetryPolicy::none(),
        }
    }

    /// The classic-traceroute ablation: stop at the target.
    pub fn classic(targets: Vec<Ipv4Addr>) -> Self {
        DnsRouteConfig {
            continue_past_target: false,
            ..Self::new(targets)
        }
    }

    /// Enable per-hop retransmissions (validated loudly).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry.assert_valid();
        self.retry = retry;
        self
    }

    /// The silent-hop wait after transmission `attempt` (0 = the TTL's
    /// first probe): `per_hop_timeout` backed off by the retry policy's
    /// multiplier, plus its deterministic jitter keyed by the probe's
    /// `(target, ttl)` identity.
    fn hop_wait(&self, idx: usize, ttl: u8, attempt: u8) -> SimDuration {
        let policy = RetryPolicy {
            initial_rto: self.per_hop_timeout,
            ..self.retry
        };
        let key = ((idx as u64) << 8) | u64::from(ttl);
        policy.rto_after(attempt) + policy.jitter_for(key, attempt)
    }
}

/// The DNS answer terminating a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsEndpoint {
    /// Probe TTL that elicited the answer.
    pub ttl: u8,
    /// Source of the DNS answer (the recursive resolver; for anycast
    /// services this is the service address).
    pub src: Ipv4Addr,
    /// When it arrived.
    pub at: SimTime,
}

/// One traced target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceResult {
    /// The traced address.
    pub target: Ipv4Addr,
    /// Hop observations indexed by `ttl - 1`: `Some(router)` for a Time
    /// Exceeded source, `None` for an anonymous (timed-out) hop.
    pub hops: Vec<Option<Ipv4Addr>>,
    /// TTL at which the *target itself* sent Time Exceeded — the signature
    /// of a transparent forwarder at that distance.
    pub target_seen_at: Option<u8>,
    /// The DNS answer, if the sweep reached a resolver.
    pub dns: Option<DnsEndpoint>,
}

impl TraceResult {
    /// Path length forwarder → resolver in IP hops (Figure 6's metric):
    /// the TTL distance between the forwarder's own Time Exceeded and the
    /// DNS answer. `None` unless both were observed.
    pub fn forwarder_to_resolver_hops(&self) -> Option<u8> {
        match (self.target_seen_at, &self.dns) {
            (Some(fwd), Some(dns)) if dns.ttl > fwd => Some(dns.ttl - fwd),
            _ => None,
        }
    }

    /// Router hops observed strictly between the forwarder and the DNS
    /// endpoint (for AS-path work).
    pub fn hops_beyond_target(&self) -> Vec<Option<Ipv4Addr>> {
        match (self.target_seen_at, &self.dns) {
            (Some(fwd), Some(dns)) => {
                let lo = fwd as usize; // hops[fwd-1] is the forwarder itself
                let hi = (dns.ttl as usize).saturating_sub(1);
                self.hops
                    .get(lo..hi)
                    .map(|s| s.to_vec())
                    .unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Router hops before the target (classic traceroute part).
    pub fn hops_before_target(&self) -> Vec<Option<Ipv4Addr>> {
        let end = match self.target_seen_at {
            Some(fwd) => (fwd as usize).saturating_sub(1),
            None => self.hops.len(),
        };
        self.hops.get(..end).map(|s| s.to_vec()).unwrap_or_default()
    }
}

#[derive(Debug)]
struct TargetState {
    target: Ipv4Addr,
    port: u16,
    current_ttl: u8,
    /// Transmissions of the current TTL's probe (1 after the first send).
    attempts: u8,
    hops: Vec<Option<Ipv4Addr>>,
    target_seen_at: Option<u8>,
    dns: Option<DnsEndpoint>,
    done: bool,
}

/// The DNSRoute++ prober host.
#[derive(Debug)]
pub struct DnsRoutePlusPlus {
    config: DnsRouteConfig,
    states: Vec<TargetState>,
    port_to_target: HashMap<u16, usize>,
    started: usize,
    /// Per-hop retransmissions sent across the whole sweep.
    pub retransmits_sent: u64,
}

/// Timer token space: `START_TOKEN + i` starts target `i`;
/// `(i << 8) | ttl` is the per-hop timeout for target `i` at `ttl`.
const START_BASE: u64 = 1 << 48;

impl DnsRoutePlusPlus {
    /// Build from config.
    ///
    /// # Panics
    ///
    /// When `base_port + targets.len() - 1` would exceed the 16-bit port
    /// space: the source port is the only Time-Exceeded correlator, so a
    /// wrapped port would silently alias two targets and orphan the
    /// earlier one's trace. Reject loudly instead of dropping traces.
    pub fn new(config: DnsRouteConfig) -> Self {
        let capacity = usize::from(u16::MAX - config.base_port) + 1;
        assert!(
            config.targets.len() <= capacity,
            "source-port space exhausted: {} targets from base port {} \
             would wrap past 65535 and alias earlier targets; lower \
             base_port or split the sweep into shards (each shard world \
             owns its own port space)",
            config.targets.len(),
            config.base_port,
        );
        let states = config
            .targets
            .iter()
            .enumerate()
            .map(|(i, &target)| TargetState {
                target,
                port: config.base_port + i as u16,
                current_ttl: 0,
                attempts: 0,
                hops: Vec::new(),
                target_seen_at: None,
                dns: None,
                done: false,
            })
            .collect::<Vec<_>>();
        // Ports are `base_port + i` with no wrap (capacity asserted
        // above), so every target's port is distinct by construction.
        let port_to_target = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.port, i))
            .collect();
        config.retry.assert_valid();
        DnsRoutePlusPlus {
            config,
            states,
            port_to_target,
            started: 0,
            retransmits_sent: 0,
        }
    }

    /// Extract results (after the simulation drained).
    pub fn results(&self) -> Vec<TraceResult> {
        self.states
            .iter()
            .map(|s| TraceResult {
                target: s.target,
                hops: s.hops.clone(),
                target_seen_at: s.target_seen_at,
                dns: s.dns,
            })
            .collect()
    }

    /// The wire probe for target `idx` at `ttl` — rebuilt identically for
    /// every retransmission attempt.
    fn probe_send(&self, idx: usize, ttl: u8) -> UdpSend {
        let s = &self.states[idx];
        // The answer's txid is the only way to recover which probe TTL
        // reached the resolver, so the low byte carries the full 8-bit TTL
        // (no aliasing for any `max_ttl`); the high byte tags the target
        // index for debugging — correlation itself is by source port.
        let txid = (idx as u16) << 8 | u16::from(ttl);
        let query = MessageBuilder::query(txid, study::study_qname(), RrType::A)
            .recursion_desired(true)
            .build();
        UdpSend {
            src: None,
            src_port: s.port,
            dst: s.target,
            dst_port: dnswire::DNS_PORT,
            ttl: Some(ttl),
            payload: query.encode().into(),
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let s = &mut self.states[idx];
        if s.done || s.current_ttl >= self.config.max_ttl {
            s.done = true;
            return;
        }
        s.current_ttl += 1;
        s.attempts = 1;
        let ttl = s.current_ttl;
        s.hops.push(None); // provisional anonymous hop for this TTL
        debug_assert_eq!(s.hops.len(), ttl as usize);
        let send = self.probe_send(idx, ttl);
        ctx.send_udp(send);
        ctx.set_timer(
            self.config.hop_wait(idx, ttl, 0),
            ((idx as u64) << 8) | u64::from(ttl),
        );
    }

    /// Retransmit the current TTL's probe after a silent wait: same
    /// `(port, txid)`, same TTL, next backoff wait. The caller has
    /// checked attempts remain.
    fn retransmit_probe(&mut self, ctx: &mut Ctx<'_>, idx: usize, ttl: u8) {
        let attempt = self.states[idx].attempts; // 0-based index of this transmission
        let send = self.probe_send(idx, ttl);
        ctx.send_udp_attempt(send, attempt);
        self.states[idx].attempts += 1;
        self.retransmits_sent += 1;
        ctx.set_timer(
            self.config.hop_wait(idx, ttl, attempt),
            ((idx as u64) << 8) | u64::from(ttl),
        );
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if self.states[idx].done {
            return;
        }
        if self.states[idx].current_ttl >= self.config.max_ttl {
            self.states[idx].done = true;
            return;
        }
        self.send_probe(ctx, idx);
    }
}

impl Host for DnsRoutePlusPlus {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        // Only a DNS *answer* terminates a trace: it must come from the
        // DNS port and carry a response (QR=1) message. Any other UDP
        // datagram landing on a probe port — stray traffic, spoofed
        // noise, a reflected query — must not end the sweep early.
        if dgram.src_port != dnswire::DNS_PORT {
            return;
        }
        // Match by destination port (one per target).
        let Some(&idx) = self.port_to_target.get(&dgram.dst_port) else {
            return;
        };
        let Some(txid) = dnswire::peek_id(&dgram.payload) else {
            return;
        };
        if dnswire::peek_qr(&dgram.payload) != Some(true) {
            return;
        }
        let ttl = (txid & 0xFF) as u8;
        let s = &mut self.states[idx];
        if s.done || s.dns.is_some() {
            return;
        }
        s.dns = Some(DnsEndpoint {
            ttl,
            src: dgram.src,
            at: ctx.now(),
        });
        // The sweep's purpose is fulfilled once the resolver answered.
        s.done = true;
    }

    fn on_icmp(&mut self, ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
        if icmp.kind != netsim::IcmpKind::TimeExceeded {
            return;
        }
        let Some(quote) = icmp.quote else {
            return;
        };
        let Some(&idx) = self.port_to_target.get(&quote.src_port) else {
            return;
        };
        let s = &mut self.states[idx];
        if s.done {
            return;
        }
        let ttl = s.current_ttl;
        // ICMP quotes carry only the UDP header, so the probe TTL cannot be
        // recovered from the message; it is attributed to the current TTL.
        // The per-hop timeout (seconds) dwarfs RTTs (milliseconds), so a
        // late straggler for an older TTL is the only hazard — and it would
        // find the slot already filled or the sweep advanced, so duplicates
        // are dropped here rather than double-advancing.
        let slot = s.hops.get_mut((ttl as usize).saturating_sub(1));
        match slot {
            Some(h) if h.is_none() => *h = Some(icmp.from),
            _ => return,
        }
        if icmp.from == s.target && s.target_seen_at.is_none() {
            s.target_seen_at = Some(ttl);
            if !self.config.continue_past_target {
                // Classic traceroute: the destination answered, stop — and
                // thereby never see the forwarder→resolver segment.
                s.done = true;
                return;
            }
        }
        self.advance(ctx, idx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token >= START_BASE {
            let idx = (token - START_BASE) as usize;
            if idx < self.states.len() {
                self.started += 1;
                self.send_probe(ctx, idx);
            }
            return;
        }
        let idx = (token >> 8) as usize;
        let ttl = (token & 0xFF) as u8;
        let Some(s) = self.states.get(idx) else {
            return;
        };
        // Only a timeout for the *current* TTL advances the sweep; stale
        // timers from already-answered hops are ignored.
        if s.done || s.current_ttl != ttl {
            return;
        }
        // Check whether this TTL got any reply; the hop slot tells us.
        let answered = s
            .hops
            .get((ttl as usize) - 1)
            .map(|h| h.is_some())
            .unwrap_or(false);
        if !answered {
            // Silent hop: retransmit while the policy allows, then record
            // it anonymous and move on.
            if s.attempts < self.config.retry.max_attempts {
                self.retransmit_probe(ctx, idx, ttl);
            } else {
                self.advance(ctx, idx);
            }
        }
    }

    netsim::impl_host_downcast!();
}

/// Install DNSRoute++ at `node`, run the sweep, and return all traces.
pub fn run_dnsroute(sim: &mut Simulator, node: NodeId, config: DnsRouteConfig) -> Vec<TraceResult> {
    let n = config.targets.len();
    let gap = config.start_gap;
    sim.install(node, DnsRoutePlusPlus::new(config));
    if n > 0 {
        // One batched timer starts every trace: the k-th fires at k·gap with
        // token START_BASE + k, byte-identical to the old per-target loop.
        sim.schedule_timer_batch(node, SimDuration::ZERO, gap, n as u32, START_BASE, 1);
    }
    sim.run();
    sim.host_as::<DnsRoutePlusPlus>(node)
        .expect("prober installed")
        .results()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarder_to_resolver_hop_math() {
        let t = TraceResult {
            target: Ipv4Addr::new(203, 0, 113, 1),
            hops: vec![
                Some(Ipv4Addr::new(10, 0, 0, 1)),
                Some(Ipv4Addr::new(203, 0, 113, 1)), // the forwarder at TTL 2
                Some(Ipv4Addr::new(10, 1, 0, 1)),
                Some(Ipv4Addr::new(10, 2, 0, 1)),
            ],
            target_seen_at: Some(2),
            dns: Some(DnsEndpoint {
                ttl: 5,
                src: Ipv4Addr::new(8, 8, 8, 8),
                at: SimTime(0),
            }),
        };
        assert_eq!(t.forwarder_to_resolver_hops(), Some(3));
        assert_eq!(
            t.hops_beyond_target(),
            vec![
                Some(Ipv4Addr::new(10, 1, 0, 1)),
                Some(Ipv4Addr::new(10, 2, 0, 1))
            ]
        );
        assert_eq!(
            t.hops_before_target(),
            vec![Some(Ipv4Addr::new(10, 0, 0, 1))]
        );
    }

    #[test]
    fn incomplete_traces_yield_none() {
        let no_dns = TraceResult {
            target: Ipv4Addr::new(203, 0, 113, 1),
            hops: vec![Some(Ipv4Addr::new(10, 0, 0, 1))],
            target_seen_at: Some(1),
            dns: None,
        };
        assert_eq!(no_dns.forwarder_to_resolver_hops(), None);
        let no_fwd = TraceResult {
            target: Ipv4Addr::new(203, 0, 113, 1),
            hops: vec![],
            target_seen_at: None,
            dns: Some(DnsEndpoint {
                ttl: 3,
                src: Ipv4Addr::new(8, 8, 8, 8),
                at: SimTime(0),
            }),
        };
        assert_eq!(no_fwd.forwarder_to_resolver_hops(), None);
        assert!(no_fwd.hops_beyond_target().is_empty());
    }

    // End-to-end sweeps through real topologies live in the crate's
    // integration tests (tests/traces.rs).
}
