//! End-to-end DNSRoute++ sweeps through a multi-AS topology.
//!
//! Topology (AS-level):
//!
//! ```text
//! AS100 (scanner) — AS200 (transit) — AS300 (eyeball, no SAV: forwarder)
//!                          |
//!                       AS400 (resolver)
//! ```
//!
//! The forwarder in AS300 relays to the resolver in AS400; the probe path
//! beyond the forwarder re-crosses AS200 — giving `AS_in == AS_out` for
//! the relationship inference.

use dnsroute::{infer_relationships, run_dnsroute, sanitize, DnsRouteConfig, DnsRoutePlusPlus};
use dnswire::{Message, MessageBuilder, RrType};
use netsim::{
    AsKind, AsSpec, CountryCode, Ctx, Datagram, Host, HostSpec, NodeId, Relationship, SimConfig,
    SimDuration, Simulator, TopologyBuilder, UdpSend,
};
use odns::TransparentForwarder;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const FORWARDER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const RECURSIVE_HOST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);
const NOISE: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 99);

struct Canned;
impl Host for Canned {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Ok(q) = Message::decode(&dgram.payload) else {
            return;
        };
        let resp = MessageBuilder::response_to(&q)
            .recursion_available(true)
            .answer_a(q.questions[0].qname.clone(), 300, dgram.src)
            .answer_a(q.questions[0].qname.clone(), 300, odns::study::CONTROL_A)
            .build();
        ctx.send_udp(UdpSend {
            src: Some(dgram.dst),
            src_port: 53,
            dst: dgram.src,
            dst_port: dgram.src_port,
            ttl: None,
            payload: resp.encode().into(),
        });
    }
    netsim::impl_host_downcast!();
}

fn as_spec(asn: u32, sav: bool, routers: Vec<Ipv4Addr>) -> AsSpec {
    AsSpec {
        asn,
        country: CountryCode::new("ZZZ"),
        kind: AsKind::Transit,
        sav_outbound: sav,
        transit_routers: routers,
    }
}

/// The four-AS world plus a noise host in AS400. `scanner_access` routers
/// sit between the scanner and its AS — each adds one IP hop in front of
/// every probe, which is how the deep-topology tests push the forwarder
/// past TTL 31 without touching the AS structure.
struct World {
    sim: Simulator,
    scanner: NodeId,
    noise: NodeId,
}

fn build_world_ext(scanner_access: &[Ipv4Addr]) -> World {
    build_world_cfg(scanner_access, SimConfig::default())
}

fn build_world_cfg(scanner_access: &[Ipv4Addr], config: SimConfig) -> World {
    let mut b = TopologyBuilder::new();
    let a100 = b.add_as(as_spec(100, true, vec![Ipv4Addr::new(10, 100, 0, 1)]));
    let a200 = b.add_as(as_spec(
        200,
        true,
        vec![Ipv4Addr::new(10, 200, 0, 1), Ipv4Addr::new(10, 200, 0, 2)],
    ));
    let a300 = b.add_as(as_spec(300, false, vec![Ipv4Addr::new(10, 30, 0, 1)]));
    let a400 = b.add_as(as_spec(400, true, vec![Ipv4Addr::new(10, 40, 0, 1)]));
    b.connect(a100, a200, Relationship::Peer);
    b.connect(a200, a300, Relationship::ProviderCustomer);
    b.connect(a200, a400, Relationship::ProviderCustomer);

    let scanner = b.add_host(
        a100,
        HostSpec {
            ip: SCANNER,
            extra_ips: vec![],
            access_routers: scanner_access.to_vec(),
            link_latency: SimDuration::from_millis(2),
        },
    );
    let forwarder = b.add_host(a300, HostSpec::simple(FORWARDER));
    let recursive = b.add_host(a300, HostSpec::simple(RECURSIVE_HOST));
    let resolver = b.add_host(a400, HostSpec::simple(RESOLVER));
    let noise = b.add_host(a400, HostSpec::simple(NOISE));

    let mut sim = Simulator::new(b.build().unwrap(), config);
    sim.install(forwarder, TransparentForwarder::new(RESOLVER));
    sim.install(recursive, odns::RecursiveForwarder::new(RESOLVER));
    sim.install(resolver, Canned);
    World {
        sim,
        scanner,
        noise,
    }
}

/// Build the four-AS world; returns (sim, scanner node).
fn build_world() -> (Simulator, NodeId) {
    let w = build_world_ext(&[]);
    (w.sim, w.scanner)
}

#[test]
fn transparent_forwarder_trace_reveals_hops_beyond() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![FORWARDER]));
    assert_eq!(traces.len(), 1);
    let t = &traces[0];

    // Forwarder distance: AS100 router + 2×AS200 routers + AS300 router =
    // 4 router hops, so the forwarder's own Time Exceeded fires at TTL 5.
    assert_eq!(t.target_seen_at, Some(5), "hops: {:?}", t.hops);
    assert_eq!(t.hops[4], Some(FORWARDER));

    // DNS answer arrives from the resolver after the relay path:
    // forwarder → AS300 router → 2×AS200 → AS400 router → resolver.
    let dns = t.dns.expect("resolver answered");
    assert_eq!(dns.src, RESOLVER);
    assert!(dns.ttl > 5);

    // Hops beyond the forwarder are visible — the DNSRoute++ claim.
    let beyond: Vec<_> = t.hops_beyond_target().into_iter().flatten().collect();
    assert!(
        beyond.contains(&Ipv4Addr::new(10, 200, 0, 1)),
        "transit router behind the forwarder visible: {beyond:?}"
    );

    // Figure 6 metric: forwarder → resolver distance in IP hops.
    assert_eq!(t.forwarder_to_resolver_hops(), Some(dns.ttl - 5));
}

#[test]
fn recursive_forwarder_trace_shows_nothing_beyond() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![RECURSIVE_HOST]));
    let t = &traces[0];
    // The recursive forwarder never sends Time Exceeded for the relay (it
    // re-originates the query with a fresh TTL), so there is no forwarder
    // signature; the DNS answer comes from the probed address itself.
    assert_eq!(t.target_seen_at, None);
    let dns = t.dns.expect("answered");
    assert_eq!(dns.src, RECURSIVE_HOST);
    assert!(t.hops_beyond_target().is_empty());

    // Sanitization classifies this trace as not-a-transparent-forwarder.
    let (paths, stats) = sanitize(&traces);
    assert!(paths.is_empty());
    assert_eq!(stats.rejected_no_signature, 1);
}

#[test]
fn sanitized_path_feeds_relationship_inference() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![FORWARDER]));
    let (paths, stats) = sanitize(&traces);
    assert_eq!(stats.kept, 1);
    let p = &paths[0];
    assert_eq!(p.forwarder, FORWARDER);
    assert_eq!(p.resolver, RESOLVER);

    // Map IPs to ASNs using the simulator's ground truth.
    let report = {
        let topo = sim.topology();
        infer_relationships(&paths, |ip| topo.as_of_ip(ip).map(|a| topo.as_spec(a).asn))
    };
    assert_eq!(report.usable_paths, 1);
    assert_eq!(report.matching_paths, 1, "AS200 is both AS_in and AS_out");
    let inferred: Vec<_> = report.inferred.iter().copied().collect();
    assert_eq!(inferred[0].provider_asn, 200);
    assert_eq!(inferred[0].customer_asn, 300);

    // Against ground truth, the inferred pair is real.
    let known: BTreeSet<(u32, u32)> = sim
        .topology()
        .provider_customer_pairs()
        .iter()
        .copied()
        .collect();
    let (hits, new_pairs) = report.against_baseline(&known);
    assert_eq!(hits.len(), 1);
    assert!(new_pairs.is_empty());
    assert!((report.matching_share() - 1.0).abs() < 1e-9);
}

#[test]
fn sweep_handles_unresponsive_target() {
    let (mut sim, scanner) = build_world();
    // 198.18.0.1 is not assigned: every TTL step times out.
    let mut cfg = DnsRouteConfig::new(vec![Ipv4Addr::new(198, 18, 0, 1)]);
    cfg.max_ttl = 6;
    cfg.per_hop_timeout = SimDuration::from_millis(100);
    let traces = run_dnsroute(&mut sim, scanner, cfg);
    let t = &traces[0];
    assert_eq!(t.target_seen_at, None);
    assert!(t.dns.is_none());
    assert!(
        t.hops.iter().all(|h| h.is_none()),
        "all hops anonymous: {:?}",
        t.hops
    );
}

/// Regression: the probe txid used to encode the TTL in 5 bits
/// (`ttl & 0x1F`), so any sweep past TTL 31 recorded the answer TTL
/// mod 32 and broke `forwarder_to_resolver_hops`. Pushing the forwarder
/// beyond 31 hops with a deep access-router chain must now recover the
/// true answer TTL.
#[test]
fn deep_topology_recovers_answer_ttl_past_31() {
    // 31 access routers in front of the scanner: every probe crosses
    // them before the 4 backbone/AS hops of the shallow world, so the
    // forwarder's own Time Exceeded fires at TTL 31 + 5 = 36 and the DNS
    // answer lands at TTL 41 — both far past the old 5-bit limit.
    let access: Vec<Ipv4Addr> = (1..=31)
        .map(|i| Ipv4Addr::new(10, 99, 0, i as u8))
        .collect();
    let mut w = build_world_ext(&access);
    let mut cfg = DnsRouteConfig::new(vec![FORWARDER]);
    cfg.max_ttl = 48;
    let traces = run_dnsroute(&mut w.sim, w.scanner, cfg);
    let t = &traces[0];

    assert_eq!(t.target_seen_at, Some(36), "hops: {:?}", t.hops);
    let dns = t.dns.expect("resolver answered");
    assert_eq!(dns.src, RESOLVER);
    assert_eq!(dns.ttl, 41, "true answer TTL, not {} (mod 32)", 41 % 32);
    // The Figure 6 metric matches the shallow world: approach depth must
    // not leak into the forwarder → resolver distance.
    assert_eq!(t.forwarder_to_resolver_hops(), Some(5));
    let (paths, stats) = sanitize(&traces);
    assert_eq!(stats.kept, 1);
    assert_eq!(paths[0].hop_count, 5);
}

/// A sweep whose target count would wrap the 16-bit source-port space
/// must be rejected loudly — a wrapped port aliases two targets and the
/// earlier one's trace silently disappears.
#[test]
#[should_panic(expected = "source-port space exhausted")]
fn colliding_base_port_rejected() {
    let targets: Vec<Ipv4Addr> = (1..=10).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
    let mut cfg = DnsRouteConfig::new(targets);
    cfg.base_port = 65_530; // room for 6 ports, 10 targets
    let _ = DnsRoutePlusPlus::new(cfg);
}

/// The boundary case fits exactly: ports 65526..=65535 for 10 targets.
#[test]
fn base_port_at_capacity_accepted() {
    let targets: Vec<Ipv4Addr> = (1..=10).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
    let mut cfg = DnsRouteConfig::new(targets);
    cfg.base_port = 65_526;
    let _ = DnsRoutePlusPlus::new(cfg);
}

/// Mid-sweep noise aimed at a probe port: a non-DNS datagram, a runt,
/// and a reflected *query* (QR=0) from port 53. None of them may
/// terminate the trace — only a DNS response from port 53 does.
struct NoiseBurst {
    dst: Ipv4Addr,
    dst_port: u16,
}

impl Host for NoiseBurst {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: Datagram) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // Wrong source port, payload long enough to carry fake flags.
        ctx.send_udp(UdpSend {
            src: None,
            src_port: 9_999,
            dst: self.dst,
            dst_port: self.dst_port,
            ttl: None,
            payload: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00].into(),
        });
        // Right port, but a query (QR=0), as a reflector would bounce.
        let query = MessageBuilder::query(0x0102, odns::study::study_qname(), RrType::A)
            .recursion_desired(true)
            .build();
        ctx.send_udp(UdpSend {
            src: None,
            src_port: 53,
            dst: self.dst,
            dst_port: self.dst_port,
            ttl: None,
            payload: query.encode().into(),
        });
        // Right port, runt too short for DNS flags.
        ctx.send_udp(UdpSend {
            src: None,
            src_port: 53,
            dst: self.dst,
            dst_port: self.dst_port,
            ttl: None,
            payload: vec![0x01, 0x02, 0x03].into(),
        });
    }
    netsim::impl_host_downcast!();
}

#[test]
fn stray_datagrams_do_not_end_the_sweep() {
    let mut w = build_world_ext(&[]);
    // Target index 0 owns base_port; fire the noise 1 ms in, long before
    // the probe TTL can reach the resolver (the answer needs TTL 10).
    let cfg = DnsRouteConfig::new(vec![FORWARDER]);
    let probe_port = cfg.base_port;
    w.sim.install(
        w.noise,
        NoiseBurst {
            dst: SCANNER,
            dst_port: probe_port,
        },
    );
    w.sim
        .schedule_timer(w.noise, SimDuration::from_millis(1), 0);
    let traces = run_dnsroute(&mut w.sim, w.scanner, cfg);
    let t = &traces[0];

    // The trace survived the noise: the forwarder signature and the real
    // resolver answer are both intact (the old code recorded the first
    // stray datagram as the DNS endpoint and stopped probing).
    assert_eq!(t.target_seen_at, Some(5), "hops: {:?}", t.hops);
    let dns = t.dns.expect("the real resolver answer still terminates");
    assert_eq!(
        dns.src, RESOLVER,
        "endpoint must be the resolver, not {NOISE}"
    );
    assert!(dns.ttl > 5);
    assert_eq!(t.forwarder_to_resolver_hops(), Some(dns.ttl - 5));
}

#[test]
fn multiple_targets_trace_concurrently() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(
        &mut sim,
        scanner,
        DnsRouteConfig::new(vec![FORWARDER, RECURSIVE_HOST]),
    );
    assert_eq!(traces.len(), 2);
    assert_eq!(traces[0].target, FORWARDER);
    assert!(traces[0].target_seen_at.is_some());
    assert_eq!(traces[1].target, RECURSIVE_HOST);
    assert!(traces[1].target_seen_at.is_none());
    assert!(traces[1].dns.is_some());
}

#[test]
fn per_hop_retries_fill_hops_lost_to_faults() {
    let faulty = |retry: netsim::RetryPolicy| {
        let mut w = build_world_cfg(
            &[],
            SimConfig {
                seed: 9,
                faults: netsim::FaultConfig {
                    drop_probability: 0.35,
                    ..netsim::FaultConfig::none()
                }
                .into(),
                ..SimConfig::default()
            },
        );
        let traces = run_dnsroute(
            &mut w.sim,
            w.scanner,
            DnsRouteConfig::new(vec![FORWARDER]).with_retry(retry),
        );
        (traces, w.sim.stats().retransmits_sent)
    };
    let (single, retx_single) = faulty(netsim::RetryPolicy::none());
    let (retried, retx) = faulty(netsim::RetryPolicy::retries(3));
    assert_eq!(retx_single, 0, "single-shot sweeps never retransmit");
    assert!(retx > 0, "silent hops must trigger retransmissions");
    let anon = |ts: &[dnsroute::TraceResult]| ts[0].hops.iter().filter(|h| h.is_none()).count();
    assert!(
        anon(&retried) < anon(&single),
        "retries fill anonymous hops: {} vs {}",
        anon(&retried),
        anon(&single)
    );
    assert!(
        retried[0].dns.is_some(),
        "with per-hop retries the resolver answer is recovered"
    );
    // Bit-identical replay: stateless fault draws + pure retry schedule.
    let (again, retx_again) = faulty(netsim::RetryPolicy::retries(3));
    assert_eq!(retried, again);
    assert_eq!(retx, retx_again);
}
