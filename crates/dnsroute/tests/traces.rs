//! End-to-end DNSRoute++ sweeps through a multi-AS topology.
//!
//! Topology (AS-level):
//!
//! ```text
//! AS100 (scanner) — AS200 (transit) — AS300 (eyeball, no SAV: forwarder)
//!                          |
//!                       AS400 (resolver)
//! ```
//!
//! The forwarder in AS300 relays to the resolver in AS400; the probe path
//! beyond the forwarder re-crosses AS200 — giving `AS_in == AS_out` for
//! the relationship inference.

use dnsroute::{infer_relationships, run_dnsroute, sanitize, DnsRouteConfig};
use dnswire::{Message, MessageBuilder};
use netsim::{
    AsKind, AsSpec, CountryCode, Ctx, Datagram, Host, HostSpec, NodeId, Relationship, SimConfig,
    SimDuration, Simulator, TopologyBuilder, UdpSend,
};
use odns::TransparentForwarder;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const FORWARDER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const RECURSIVE_HOST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

struct Canned;
impl Host for Canned {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Ok(q) = Message::decode(&dgram.payload) else {
            return;
        };
        let resp = MessageBuilder::response_to(&q)
            .recursion_available(true)
            .answer_a(q.questions[0].qname.clone(), 300, dgram.src)
            .answer_a(q.questions[0].qname.clone(), 300, odns::study::CONTROL_A)
            .build();
        ctx.send_udp(UdpSend {
            src: Some(dgram.dst),
            src_port: 53,
            dst: dgram.src,
            dst_port: dgram.src_port,
            ttl: None,
            payload: resp.encode().into(),
        });
    }
    netsim::impl_host_downcast!();
}

fn as_spec(asn: u32, sav: bool, routers: Vec<Ipv4Addr>) -> AsSpec {
    AsSpec {
        asn,
        country: CountryCode::new("ZZZ"),
        kind: AsKind::Transit,
        sav_outbound: sav,
        transit_routers: routers,
    }
}

/// Build the four-AS world; returns (sim, scanner node).
fn build_world() -> (Simulator, NodeId) {
    let mut b = TopologyBuilder::new();
    let a100 = b.add_as(as_spec(100, true, vec![Ipv4Addr::new(10, 100, 0, 1)]));
    let a200 = b.add_as(as_spec(
        200,
        true,
        vec![Ipv4Addr::new(10, 200, 0, 1), Ipv4Addr::new(10, 200, 0, 2)],
    ));
    let a300 = b.add_as(as_spec(300, false, vec![Ipv4Addr::new(10, 30, 0, 1)]));
    let a400 = b.add_as(as_spec(400, true, vec![Ipv4Addr::new(10, 40, 0, 1)]));
    b.connect(a100, a200, Relationship::Peer);
    b.connect(a200, a300, Relationship::ProviderCustomer);
    b.connect(a200, a400, Relationship::ProviderCustomer);

    let scanner = b.add_host(a100, HostSpec::simple(SCANNER));
    let forwarder = b.add_host(a300, HostSpec::simple(FORWARDER));
    let recursive = b.add_host(a300, HostSpec::simple(RECURSIVE_HOST));
    let resolver = b.add_host(a400, HostSpec::simple(RESOLVER));

    let mut sim = Simulator::new(b.build().unwrap(), SimConfig::default());
    sim.install(forwarder, TransparentForwarder::new(RESOLVER));
    sim.install(recursive, odns::RecursiveForwarder::new(RESOLVER));
    sim.install(resolver, Canned);
    (sim, scanner)
}

#[test]
fn transparent_forwarder_trace_reveals_hops_beyond() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![FORWARDER]));
    assert_eq!(traces.len(), 1);
    let t = &traces[0];

    // Forwarder distance: AS100 router + 2×AS200 routers + AS300 router =
    // 4 router hops, so the forwarder's own Time Exceeded fires at TTL 5.
    assert_eq!(t.target_seen_at, Some(5), "hops: {:?}", t.hops);
    assert_eq!(t.hops[4], Some(FORWARDER));

    // DNS answer arrives from the resolver after the relay path:
    // forwarder → AS300 router → 2×AS200 → AS400 router → resolver.
    let dns = t.dns.expect("resolver answered");
    assert_eq!(dns.src, RESOLVER);
    assert!(dns.ttl > 5);

    // Hops beyond the forwarder are visible — the DNSRoute++ claim.
    let beyond: Vec<_> = t.hops_beyond_target().into_iter().flatten().collect();
    assert!(
        beyond.contains(&Ipv4Addr::new(10, 200, 0, 1)),
        "transit router behind the forwarder visible: {beyond:?}"
    );

    // Figure 6 metric: forwarder → resolver distance in IP hops.
    assert_eq!(t.forwarder_to_resolver_hops(), Some(dns.ttl - 5));
}

#[test]
fn recursive_forwarder_trace_shows_nothing_beyond() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![RECURSIVE_HOST]));
    let t = &traces[0];
    // The recursive forwarder never sends Time Exceeded for the relay (it
    // re-originates the query with a fresh TTL), so there is no forwarder
    // signature; the DNS answer comes from the probed address itself.
    assert_eq!(t.target_seen_at, None);
    let dns = t.dns.expect("answered");
    assert_eq!(dns.src, RECURSIVE_HOST);
    assert!(t.hops_beyond_target().is_empty());

    // Sanitization classifies this trace as not-a-transparent-forwarder.
    let (paths, stats) = sanitize(&traces);
    assert!(paths.is_empty());
    assert_eq!(stats.rejected_no_signature, 1);
}

#[test]
fn sanitized_path_feeds_relationship_inference() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(&mut sim, scanner, DnsRouteConfig::new(vec![FORWARDER]));
    let (paths, stats) = sanitize(&traces);
    assert_eq!(stats.kept, 1);
    let p = &paths[0];
    assert_eq!(p.forwarder, FORWARDER);
    assert_eq!(p.resolver, RESOLVER);

    // Map IPs to ASNs using the simulator's ground truth.
    let report = {
        let topo = sim.topology();
        infer_relationships(&paths, |ip| topo.as_of_ip(ip).map(|a| topo.as_spec(a).asn))
    };
    assert_eq!(report.usable_paths, 1);
    assert_eq!(report.matching_paths, 1, "AS200 is both AS_in and AS_out");
    let inferred: Vec<_> = report.inferred.iter().copied().collect();
    assert_eq!(inferred[0].provider_asn, 200);
    assert_eq!(inferred[0].customer_asn, 300);

    // Against ground truth, the inferred pair is real.
    let known: BTreeSet<(u32, u32)> = sim
        .topology()
        .provider_customer_pairs()
        .iter()
        .copied()
        .collect();
    let (hits, new_pairs) = report.against_baseline(&known);
    assert_eq!(hits.len(), 1);
    assert!(new_pairs.is_empty());
    assert!((report.matching_share() - 1.0).abs() < 1e-9);
}

#[test]
fn sweep_handles_unresponsive_target() {
    let (mut sim, scanner) = build_world();
    // 198.18.0.1 is not assigned: every TTL step times out.
    let mut cfg = DnsRouteConfig::new(vec![Ipv4Addr::new(198, 18, 0, 1)]);
    cfg.max_ttl = 6;
    cfg.per_hop_timeout = SimDuration::from_millis(100);
    let traces = run_dnsroute(&mut sim, scanner, cfg);
    let t = &traces[0];
    assert_eq!(t.target_seen_at, None);
    assert!(t.dns.is_none());
    assert!(
        t.hops.iter().all(|h| h.is_none()),
        "all hops anonymous: {:?}",
        t.hops
    );
}

#[test]
fn multiple_targets_trace_concurrently() {
    let (mut sim, scanner) = build_world();
    let traces = run_dnsroute(
        &mut sim,
        scanner,
        DnsRouteConfig::new(vec![FORWARDER, RECURSIVE_HOST]),
    );
    assert_eq!(traces.len(), 2);
    assert_eq!(traces[0].target, FORWARDER);
    assert!(traces[0].target_seen_at.is_some());
    assert_eq!(traces[1].target, RECURSIVE_HOST);
    assert!(traces[1].target_seen_at.is_none());
    assert!(traces[1].dns.is_some());
}
