//! Figure 8: transparent forwarders per covering /24 prefix.
//!
//! "We map each transparent forwarder to a (non-overlapping) covering /24
//! IP prefix and count the number of forwarders per prefix" — sparse
//! prefixes indicate individual CPE customers, fully-populated prefixes a
//! single middlebox serving the whole network.

use crate::cdf::Cdf;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The density distribution.
#[derive(Debug, Clone, Default)]
pub struct PrefixDensity {
    /// Forwarder count per /24, prefix-sorted (keyed by the prefix base
    /// address) so iterating it feeds report surfaces in a fixed order.
    pub per_prefix: BTreeMap<u32, usize>,
}

/// The sparse/full thresholds used in Appendix E.
pub const SPARSE_MAX: usize = 25;
/// A /24 is "completely populated" at this count.
pub const FULL_MIN: usize = 254;

impl PrefixDensity {
    /// Build from transparent-forwarder addresses.
    pub fn from_ips<I: IntoIterator<Item = Ipv4Addr>>(ips: I) -> Self {
        let mut per_prefix = BTreeMap::new();
        for ip in ips {
            *per_prefix.entry(u32::from(ip) & 0xFFFF_FF00).or_insert(0) += 1;
        }
        PrefixDensity { per_prefix }
    }

    /// Number of distinct /24 prefixes.
    pub fn prefix_count(&self) -> usize {
        self.per_prefix.len()
    }

    /// Total forwarders.
    pub fn total(&self) -> usize {
        self.per_prefix.values().sum()
    }

    /// Share of forwarders (by address, not by prefix) in prefixes with at
    /// most `max` forwarders.
    pub fn share_in_density_at_most(&self, max: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let in_range: usize = self.per_prefix.values().filter(|c| **c <= max).sum();
        in_range as f64 / total as f64
    }

    /// Share of forwarders in prefixes with at least `min` forwarders.
    pub fn share_in_density_at_least(&self, min: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let in_range: usize = self.per_prefix.values().filter(|c| **c >= min).sum();
        in_range as f64 / total as f64
    }

    /// Number of completely populated prefixes (the paper finds 806).
    pub fn full_prefixes(&self) -> usize {
        self.per_prefix.values().filter(|c| **c >= FULL_MIN).count()
    }

    /// Figure 8's CDF: x = prefix density, weighted per forwarder (1 on
    /// the y-axis ≙ all transparent forwarders).
    pub fn cdf(&self) -> Cdf {
        let samples = self
            .per_prefix
            .values()
            .flat_map(|&c| std::iter::repeat_n(c as f64, c))
            .collect::<Vec<_>>();
        Cdf::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips_with_density(prefix_octet: u8, count: usize) -> Vec<Ipv4Addr> {
        (0..count)
            .map(|i| Ipv4Addr::new(11, 1, prefix_octet, (i + 1) as u8))
            .collect()
    }

    #[test]
    fn density_counting() {
        let mut ips = ips_with_density(1, 5);
        ips.extend(ips_with_density(2, 254));
        let d = PrefixDensity::from_ips(ips);
        assert_eq!(d.prefix_count(), 2);
        assert_eq!(d.total(), 259);
        assert_eq!(d.full_prefixes(), 1);
        let sparse_share = d.share_in_density_at_most(SPARSE_MAX);
        assert!((sparse_share - 5.0 / 259.0).abs() < 1e-9);
        let full_share = d.share_in_density_at_least(FULL_MIN);
        assert!((full_share - 254.0 / 259.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_weighted_per_forwarder() {
        // 10 forwarders at density 10, 1 at density 1 → F(1) = 1/11.
        let mut ips = ips_with_density(1, 10);
        ips.push(Ipv4Addr::new(11, 1, 9, 1));
        let cdf = PrefixDensity::from_ips(ips).cdf();
        assert_eq!(cdf.len(), 11);
        assert!((cdf.at(1.0) - 1.0 / 11.0).abs() < 1e-9);
        assert!((cdf.at(10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_safe() {
        let d = PrefixDensity::from_ips(std::iter::empty());
        assert_eq!(d.total(), 0);
        assert_eq!(d.share_in_density_at_most(25), 0.0);
        assert_eq!(d.full_prefixes(), 0);
    }

    #[test]
    fn different_prefixes_do_not_merge() {
        let ips = vec![Ipv4Addr::new(11, 1, 1, 1), Ipv4Addr::new(11, 1, 2, 1)];
        let d = PrefixDensity::from_ips(ips);
        assert_eq!(d.prefix_count(), 2);
        assert_eq!(d.share_in_density_at_most(1), 1.0);
    }
}
