//! Table 5: country rankings by ODNS components — the study's complete
//! view vs a Shadowserver-style response-only view.

use crate::aggregate::by_country;
use crate::census::Census;
use std::collections::BTreeMap;

/// One row of the Table 5 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingRow {
    /// Country code.
    pub country: &'static str,
    /// Rank by the study's method (1-based).
    pub our_rank: usize,
    /// ODNS count by the study's method.
    pub our_count: usize,
    /// Rank in the Shadowserver-style view (None if absent there).
    pub shadow_rank: Option<usize>,
    /// Count in the Shadowserver-style view.
    pub shadow_count: usize,
}

impl RankingRow {
    /// Rank difference (positive = the country rises once transparent
    /// forwarders are counted), `None` when absent from the other view.
    pub fn rank_delta(&self) -> Option<isize> {
        self.shadow_rank
            .map(|s| s as isize - self.our_rank as isize)
    }

    /// Count difference (ours − Shadowserver's).
    pub fn count_delta(&self) -> isize {
        self.our_count as isize - self.shadow_count as isize
    }
}

/// Build the Table 5 comparison: rank countries by the census (ours) and
/// by a Shadowserver-style per-country count, and join. The map is
/// country-sorted so two identical inputs always produce the identical
/// table (see [`crate::census::run_shadowserver_census`]).
pub fn table5_ranking(
    census: &Census,
    shadowserver: &BTreeMap<&'static str, usize>,
    top_n: usize,
) -> Vec<RankingRow> {
    let ours: Vec<(&'static str, usize)> = {
        let mut v: Vec<(&'static str, usize)> = by_country(census)
            .into_iter()
            .filter_map(|(c, s)| c.map(|code| (code, s.total())))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    };
    let shadow_ranks: BTreeMap<&'static str, (usize, usize)> = {
        let mut v: Vec<(&'static str, usize)> =
            shadowserver.iter().map(|(c, n)| (*c, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.into_iter()
            .enumerate()
            .map(|(i, (c, n))| (c, (i + 1, n)))
            .collect()
    };

    ours.into_iter()
        .take(top_n)
        .enumerate()
        .map(|(i, (country, our_count))| {
            let (shadow_rank, shadow_count) = match shadow_ranks.get(country) {
                Some((r, n)) => (Some(*r), *n),
                None => (None, 0),
            };
            RankingRow {
                country,
                our_rank: i + 1,
                our_count,
                shadow_rank,
                shadow_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusRow;
    use scanner::{OdnsClass, Verdict};
    use std::net::Ipv4Addr;

    fn rows(country: &'static str, n: usize, class: OdnsClass) -> Vec<CensusRow> {
        (0..n)
            .map(|_| CensusRow {
                target: Ipv4Addr::new(203, 0, 113, 1),
                verdict: Verdict::Classified {
                    class,
                    a_resolver: Ipv4Addr::new(8, 8, 8, 8),
                    response_src: Ipv4Addr::new(8, 8, 8, 8),
                },
                asn: Some(1),
                country: Some(country),
                response_src: Some(Ipv4Addr::new(8, 8, 8, 8)),
                a_resolver: Some(Ipv4Addr::new(8, 8, 8, 8)),
            })
            .collect()
    }

    #[test]
    fn ranking_join_and_deltas() {
        let mut census = Census::default();
        // BRA: 10 ODNS of which 8 transparent; DEU: 5, none transparent.
        census
            .rows
            .extend(rows("BRA", 8, OdnsClass::TransparentForwarder));
        census
            .rows
            .extend(rows("BRA", 2, OdnsClass::RecursiveForwarder));
        census
            .rows
            .extend(rows("DEU", 5, OdnsClass::RecursiveForwarder));
        // Shadowserver sees only non-transparent components.
        let mut shadow = BTreeMap::new();
        shadow.insert("BRA", 2usize);
        shadow.insert("DEU", 5usize);

        let table = table5_ranking(&census, &shadow, 20);
        assert_eq!(table.len(), 2);
        let bra = &table[0];
        assert_eq!(bra.country, "BRA");
        assert_eq!(bra.our_rank, 1);
        assert_eq!(bra.shadow_rank, Some(2), "Shadowserver underrates Brazil");
        assert_eq!(bra.rank_delta(), Some(1));
        assert_eq!(bra.count_delta(), 8);
        let deu = &table[1];
        assert_eq!(deu.our_rank, 2);
        assert_eq!(deu.shadow_rank, Some(1));
        assert_eq!(deu.rank_delta(), Some(-1));
    }

    #[test]
    fn missing_from_shadowserver() {
        let mut census = Census::default();
        census
            .rows
            .extend(rows("MUS", 3, OdnsClass::TransparentForwarder));
        let table = table5_ranking(&census, &BTreeMap::new(), 5);
        assert_eq!(table[0].shadow_rank, None);
        assert_eq!(table[0].rank_delta(), None);
        assert_eq!(table[0].count_delta(), 3);
    }

    #[test]
    fn top_n_truncation() {
        let mut census = Census::default();
        for (i, c) in ["AAA", "BBB", "CCC"].iter().enumerate() {
            census
                .rows
                .extend(rows(c, 3 - i, OdnsClass::RecursiveForwarder));
        }
        let table = table5_ranking(&census, &BTreeMap::new(), 2);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].country, "AAA");
    }
}
