//! Offline pcap ingestion: rebuild scan transactions from a raw capture.
//!
//! The paper's pipeline stores the complete scan traffic with `dumpcap`
//! and correlates offline (§A.2). This module proves our pipeline is
//! equally capture-driven: given only the scanner's pcap bytes, it
//! reconstructs probes (outgoing port-53 queries), responses (everything
//! else), and correlates them by `(port, TXID)` within the timeout —
//! independently of the in-memory records the scanner kept.
//!
//! The sharded drivers extend this to per-shard taps: every shard's
//! scanner capture alone rebuilds that shard's record streams
//! ([`shard_records_from_pcap`]), and the streams merge through the same
//! offline pass as the live sharded census ([`census_from_captures`]) —
//! so the whole sharded pipeline is reproducible from its captures, like
//! the paper's. Campaign emulations replay offline too
//! ([`campaign_report_from_pcap`]): a campaign's published report is a
//! pure function of its capture and its processing rules.

use netsim::pcap::{read_pcap, PcapError};
use netsim::wire::{decode, DecodedPacket};
use netsim::SimDuration;
use scanner::records::{ProbeRecord, ResponseRecord, ScanOutcome};
use scanner::{Campaign, CampaignReport, ClassifierConfig, ShardRecords};
// detlint::allow(unordered-iter): correlation map mirroring the live
// CampaignScanner byte for byte; keyed lookups only, never iterated.
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Errors during capture ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The pcap container was malformed.
    Pcap(PcapError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Pcap(e) => write!(f, "pcap: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Reconstruct the raw probe/response record streams from capture bytes —
/// exactly what the live scanner's `run_scan_raw` returns, but computed
/// from the tap's pcap alone.
///
/// Packets that fail IP/UDP decoding are skipped (they would be ICMP or
/// corruption — dumpcap keeps them too, the analyzer ignores them).
pub fn streams_from_pcap(
    pcap: &[u8],
) -> Result<(Vec<ProbeRecord>, Vec<ResponseRecord>), IngestError> {
    let records = read_pcap(pcap).map_err(IngestError::Pcap)?;
    let mut probes: Vec<ProbeRecord> = Vec::new();
    let mut responses: Vec<ResponseRecord> = Vec::new();
    for rec in &records {
        let Ok(DecodedPacket::Udp(d)) = decode(&rec.data) else {
            continue; // ICMP and malformed frames are not DNS transactions
        };
        if d.dst_port == dnswire::DNS_PORT {
            // Outgoing probe (the tap records the scanner's own sends).
            let Some(txid) = dnswire::peek_id(&d.payload) else {
                continue;
            };
            probes.push(ProbeRecord {
                index: probes.len(),
                target: d.dst,
                sent_at: rec.ts,
                src_port: d.src_port,
                txid,
            });
        } else {
            responses.push(ResponseRecord {
                received_at: rec.ts,
                src: d.src,
                dst_port: d.dst_port,
                payload: d.payload.clone(),
            });
        }
    }
    Ok((probes, responses))
}

/// Reconstruct a [`ScanOutcome`] from raw capture bytes.
pub fn outcome_from_pcap(pcap: &[u8], timeout: SimDuration) -> Result<ScanOutcome, IngestError> {
    let (probes, responses) = streams_from_pcap(pcap)?;
    // Same offline pass as the live scanner and the sharded merge — one
    // implementation of the matching semantics for all three paths.
    Ok(scanner::correlate_owned(probes, responses, timeout))
}

/// Rebuild one shard's [`ShardRecords`] from that shard's scanner capture
/// — the capture-driven twin of the per-shard `run_scan_raw` collection
/// step. `(port, txid)` tuples restart in every shard, so each capture
/// must be ingested separately and merged at the record-stream level
/// (never by concatenating pcaps).
pub fn shard_records_from_pcap(shard: u32, pcap: &[u8]) -> Result<ShardRecords, IngestError> {
    let (probes, responses) = streams_from_pcap(pcap)?;
    Ok(ShardRecords::new(shard, probes, responses))
}

/// The capture-driven sharded census: rebuild every shard's record
/// streams from its capture alone and run the identical merge →
/// correlate → classify tail as the live sharded census. Given the
/// captures of a [`crate::run_campaign_sharded`] (or any sharded scan
/// with per-shard scanner taps), the result equals the in-memory census
/// row for row.
pub fn census_from_captures<S: AsRef<[u8]>>(
    captures: &[(u32, S)],
    geo: &inetgen::GeoDb,
    classifier: &ClassifierConfig,
) -> Result<crate::census::Census, IngestError> {
    let mut streams = Vec::with_capacity(captures.len());
    for (shard, pcap) in captures {
        streams.push(shard_records_from_pcap(*shard, pcap.as_ref())?);
    }
    Ok(crate::census::census_from_shard_records(
        streams, geo, classifier,
    ))
}

/// Replay a campaign's processing rules over its capture, rebuilding the
/// [`CampaignReport`] it published — the offline proof that a campaign's
/// feed is a pure function of the traffic it saw plus its (stateless or
/// connected-socket) pipeline. Mirrors `CampaignScanner::on_datagram`
/// byte for byte: outgoing port-53 packets register the probe's
/// `(port, txid) → target`, anything else is processed as a response in
/// capture order.
pub fn campaign_report_from_pcap(
    campaign: Campaign,
    pcap: &[u8],
) -> Result<CampaignReport, IngestError> {
    let records = read_pcap(pcap).map_err(IngestError::Pcap)?;
    // detlint::allow(unordered-iter): probe correlation is lookup-only —
    // responses are processed in capture order, the map is never iterated.
    let mut sent: HashMap<(u16, u16), Ipv4Addr> = HashMap::new();
    let mut report = CampaignReport::default();
    for rec in &records {
        let Ok(DecodedPacket::Udp(d)) = decode(&rec.data) else {
            continue; // ICMP never reaches a campaign's response pipeline
        };
        if d.dst_port == dnswire::DNS_PORT {
            if let Some(txid) = dnswire::peek_id(&d.payload) {
                sent.insert((d.src_port, txid), d.dst);
            }
            continue;
        }
        let Ok(msg) = dnswire::Message::decode(&d.payload) else {
            report.invalid += 1;
            continue;
        };
        if !msg.is_response() || msg.answer_a_addrs().is_empty() {
            report.invalid += 1;
            continue;
        }
        if campaign.sanitizes_source() {
            match sent.get(&(d.dst_port, msg.header.id)) {
                Some(&target) if target == d.src => {
                    report.odns.insert(d.src);
                }
                _ => report.sanitized_out += 1,
            }
        } else {
            report.odns.insert(d.src);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{MessageBuilder, RrType};
    use netsim::pcap::PcapWriter;
    use netsim::wire::encode_udp;
    use netsim::{Datagram, SimTime};
    use std::net::Ipv4Addr;

    const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const TARGET: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    fn query_bytes(txid: u16) -> Vec<u8> {
        MessageBuilder::query(txid, odns::study::study_qname(), RrType::A)
            .build()
            .encode()
    }

    fn response_bytes(txid: u16) -> Vec<u8> {
        let q = MessageBuilder::query(txid, odns::study::study_qname(), RrType::A).build();
        MessageBuilder::response_to(&q)
            .answer_a(odns::study::study_qname(), 300, RESOLVER)
            .answer_a(odns::study::study_qname(), 300, odns::study::CONTROL_A)
            .build()
            .encode()
    }

    fn capture() -> Vec<u8> {
        let mut w = PcapWriter::new();
        // Probe out at t=0.
        let probe = Datagram {
            src: SCANNER,
            dst: TARGET,
            src_port: 33000,
            dst_port: 53,
            ttl: 64,
            payload: query_bytes(7).into(),
        };
        w.write(SimTime(0), &encode_udp(&probe, 1));
        // Response from the resolver (transparent forwarder!) at t=40ms.
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 33000,
            ttl: 60,
            payload: response_bytes(7).into(),
        };
        w.write(SimTime(40_000), &encode_udp(&resp, 2));
        w.finish()
    }

    #[test]
    fn transactions_rebuilt_from_capture_alone() {
        let outcome = outcome_from_pcap(&capture(), SimDuration::from_secs(20)).unwrap();
        assert_eq!(outcome.transactions.len(), 1);
        let t = &outcome.transactions[0];
        assert_eq!(t.probe.target, TARGET);
        assert_eq!(t.response_src(), Some(RESOLVER));
        assert_eq!(outcome.unmatched_responses, 0);
        // The classifier works on reconstructed transactions too.
        let v = scanner::classify(t, &scanner::ClassifierConfig::default());
        assert_eq!(v.class(), Some(scanner::OdnsClass::TransparentForwarder));
    }

    #[test]
    fn late_response_rejected_by_timeout() {
        let mut w = PcapWriter::new();
        let probe = Datagram {
            src: SCANNER,
            dst: TARGET,
            src_port: 33000,
            dst_port: 53,
            ttl: 64,
            payload: query_bytes(9).into(),
        };
        w.write(SimTime(0), &encode_udp(&probe, 1));
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 33000,
            ttl: 60,
            payload: response_bytes(9).into(),
        };
        w.write(SimTime(25_000_000), &encode_udp(&resp, 2)); // 25 s
        let outcome = outcome_from_pcap(&w.finish(), SimDuration::from_secs(20)).unwrap();
        assert!(outcome.transactions[0].response.is_none());
        assert_eq!(outcome.late_responses, 1);
    }

    #[test]
    fn unsolicited_response_counted() {
        let mut w = PcapWriter::new();
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 40000,
            ttl: 60,
            payload: response_bytes(1).into(),
        };
        w.write(SimTime(0), &encode_udp(&resp, 1));
        let outcome = outcome_from_pcap(&w.finish(), SimDuration::from_secs(20)).unwrap();
        assert!(outcome.transactions.is_empty());
        assert_eq!(outcome.unmatched_responses, 1);
    }

    #[test]
    fn bad_pcap_rejected() {
        assert!(matches!(
            outcome_from_pcap(&[0u8; 10], SimDuration::from_secs(20)),
            Err(IngestError::Pcap(_))
        ));
        assert!(matches!(
            shard_records_from_pcap(0, &[0u8; 10]),
            Err(IngestError::Pcap(_))
        ));
        assert!(matches!(
            campaign_report_from_pcap(Campaign::Censys, &[0u8; 10]),
            Err(IngestError::Pcap(_))
        ));
    }

    #[test]
    fn shard_records_rebuilt_with_shard_local_indices() {
        let records = shard_records_from_pcap(7, &capture()).unwrap();
        assert_eq!(records.shard, 7);
        assert_eq!(records.probes.len(), 1);
        assert_eq!(records.probes[0].index, 0, "indices restart per shard");
        assert_eq!(records.probes[0].target, TARGET);
        assert_eq!(records.responses.len(), 1);
        assert_eq!(records.responses[0].src, RESOLVER);
    }

    #[test]
    fn campaign_replay_applies_sanitizing_rules() {
        // The capture of `capture()` holds a probe to TARGET answered from
        // RESOLVER — a source mismatch.
        let shadow = campaign_report_from_pcap(Campaign::Shadowserver, &capture()).unwrap();
        assert!(shadow.odns.contains(&RESOLVER), "responder reported");
        assert!(!shadow.odns.contains(&TARGET));
        assert_eq!(shadow.sanitized_out, 0);

        let censys = campaign_report_from_pcap(Campaign::Censys, &capture()).unwrap();
        assert!(censys.odns.is_empty(), "mismatched source dropped");
        assert_eq!(censys.sanitized_out, 1);
    }

    #[test]
    fn campaign_replay_counts_invalid_responses() {
        let mut w = PcapWriter::new();
        let garbage = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 41_000,
            ttl: 60,
            payload: vec![0xFF, 0x01].into(),
        };
        w.write(SimTime(0), &encode_udp(&garbage, 1));
        // A well-formed response without A records is invalid too.
        let q = MessageBuilder::query(3, odns::study::study_qname(), RrType::A).build();
        let empty = q.response_skeleton();
        let no_answers = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 41_000,
            ttl: 60,
            payload: empty.encode().into(),
        };
        w.write(SimTime(10), &encode_udp(&no_answers, 2));
        let report = campaign_report_from_pcap(Campaign::Shadowserver, &w.finish()).unwrap();
        assert_eq!(report.invalid, 2);
        assert!(report.odns.is_empty());
    }
}
