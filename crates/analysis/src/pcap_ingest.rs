//! Offline pcap ingestion: rebuild scan transactions from a raw capture.
//!
//! The paper's pipeline stores the complete scan traffic with `dumpcap`
//! and correlates offline (§A.2). This module proves our pipeline is
//! equally capture-driven: given only the scanner's pcap bytes, it
//! reconstructs probes (outgoing port-53 queries), responses (everything
//! else), and correlates them by `(port, TXID)` within the timeout —
//! independently of the in-memory records the scanner kept.

use netsim::pcap::{read_pcap, PcapError};
use netsim::wire::{decode, DecodedPacket};
use netsim::SimDuration;
use scanner::records::{ProbeRecord, ResponseRecord, ScanOutcome};

/// Errors during capture ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The pcap container was malformed.
    Pcap(PcapError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Pcap(e) => write!(f, "pcap: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Reconstruct a [`ScanOutcome`] from raw capture bytes.
///
/// Packets that fail IP/UDP decoding are skipped (they would be ICMP or
/// corruption — dumpcap keeps them too, the analyzer ignores them).
pub fn outcome_from_pcap(pcap: &[u8], timeout: SimDuration) -> Result<ScanOutcome, IngestError> {
    let records = read_pcap(pcap).map_err(IngestError::Pcap)?;
    let mut probes: Vec<ProbeRecord> = Vec::new();
    let mut responses: Vec<ResponseRecord> = Vec::new();
    for rec in &records {
        let Ok(DecodedPacket::Udp(d)) = decode(&rec.data) else {
            continue; // ICMP and malformed frames are not DNS transactions
        };
        if d.dst_port == dnswire::DNS_PORT {
            // Outgoing probe (the tap records the scanner's own sends).
            let Some(txid) = dnswire::peek_id(&d.payload) else {
                continue;
            };
            probes.push(ProbeRecord {
                index: probes.len(),
                target: d.dst,
                sent_at: rec.ts,
                src_port: d.src_port,
                txid,
            });
        } else {
            responses.push(ResponseRecord {
                received_at: rec.ts,
                src: d.src,
                dst_port: d.dst_port,
                payload: d.payload.clone(),
            });
        }
    }

    // Same offline pass as the live scanner and the sharded merge — one
    // implementation of the matching semantics for all three paths.
    Ok(scanner::correlate_owned(probes, responses, timeout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{MessageBuilder, RrType};
    use netsim::pcap::PcapWriter;
    use netsim::wire::encode_udp;
    use netsim::{Datagram, SimTime};
    use std::net::Ipv4Addr;

    const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const TARGET: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    fn query_bytes(txid: u16) -> Vec<u8> {
        MessageBuilder::query(txid, odns::study::study_qname(), RrType::A)
            .build()
            .encode()
    }

    fn response_bytes(txid: u16) -> Vec<u8> {
        let q = MessageBuilder::query(txid, odns::study::study_qname(), RrType::A).build();
        MessageBuilder::response_to(&q)
            .answer_a(odns::study::study_qname(), 300, RESOLVER)
            .answer_a(odns::study::study_qname(), 300, odns::study::CONTROL_A)
            .build()
            .encode()
    }

    fn capture() -> Vec<u8> {
        let mut w = PcapWriter::new();
        // Probe out at t=0.
        let probe = Datagram {
            src: SCANNER,
            dst: TARGET,
            src_port: 33000,
            dst_port: 53,
            ttl: 64,
            payload: query_bytes(7).into(),
        };
        w.write(SimTime(0), &encode_udp(&probe, 1));
        // Response from the resolver (transparent forwarder!) at t=40ms.
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 33000,
            ttl: 60,
            payload: response_bytes(7).into(),
        };
        w.write(SimTime(40_000), &encode_udp(&resp, 2));
        w.finish()
    }

    #[test]
    fn transactions_rebuilt_from_capture_alone() {
        let outcome = outcome_from_pcap(&capture(), SimDuration::from_secs(20)).unwrap();
        assert_eq!(outcome.transactions.len(), 1);
        let t = &outcome.transactions[0];
        assert_eq!(t.probe.target, TARGET);
        assert_eq!(t.response_src(), Some(RESOLVER));
        assert_eq!(outcome.unmatched_responses, 0);
        // The classifier works on reconstructed transactions too.
        let v = scanner::classify(t, &scanner::ClassifierConfig::default());
        assert_eq!(v.class(), Some(scanner::OdnsClass::TransparentForwarder));
    }

    #[test]
    fn late_response_rejected_by_timeout() {
        let mut w = PcapWriter::new();
        let probe = Datagram {
            src: SCANNER,
            dst: TARGET,
            src_port: 33000,
            dst_port: 53,
            ttl: 64,
            payload: query_bytes(9).into(),
        };
        w.write(SimTime(0), &encode_udp(&probe, 1));
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 33000,
            ttl: 60,
            payload: response_bytes(9).into(),
        };
        w.write(SimTime(25_000_000), &encode_udp(&resp, 2)); // 25 s
        let outcome = outcome_from_pcap(&w.finish(), SimDuration::from_secs(20)).unwrap();
        assert!(outcome.transactions[0].response.is_none());
        assert_eq!(outcome.late_responses, 1);
    }

    #[test]
    fn unsolicited_response_counted() {
        let mut w = PcapWriter::new();
        let resp = Datagram {
            src: RESOLVER,
            dst: SCANNER,
            src_port: 53,
            dst_port: 40000,
            ttl: 60,
            payload: response_bytes(1).into(),
        };
        w.write(SimTime(0), &encode_udp(&resp, 1));
        let outcome = outcome_from_pcap(&w.finish(), SimDuration::from_secs(20)).unwrap();
        assert!(outcome.transactions.is_empty());
        assert_eq!(outcome.unmatched_responses, 1);
    }

    #[test]
    fn bad_pcap_rejected() {
        assert!(matches!(
            outcome_from_pcap(&[0u8; 10], SimDuration::from_secs(20)),
            Err(IngestError::Pcap(_))
        ));
    }
}
