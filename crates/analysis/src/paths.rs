//! Figure 6: path lengths from transparent forwarders to their resolvers,
//! grouped by resolver project, plus the §5 AS-relationship evaluation.

use crate::cdf::Cdf;
use dnsroute::{ForwarderPath, InferenceReport};
use inetgen::GeoDb;
use odns::ResolverProject;
use std::collections::{BTreeMap, BTreeSet};

/// Per-project path-length series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectPaths {
    /// The project.
    pub project: ResolverProject,
    /// Forwarder → resolver hop counts, sorted ascending: the series is a
    /// canonical distribution, independent of path enumeration order (a
    /// sharded sweep concatenates per-shard traces, so raw order would
    /// vary with the shard count while the distribution never does).
    pub hop_counts: Vec<u8>,
    /// Distinct forwarder ASNs covered.
    pub asn_count: usize,
}

impl ProjectPaths {
    /// Hop CDF.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_samples(self.hop_counts.iter().map(|h| f64::from(*h)))
    }

    /// Mean hops (the paper: Cloudflare 6.3, Google 7.9, OpenDNS 9.3).
    pub fn mean_hops(&self) -> f64 {
        self.cdf().mean()
    }
}

/// Group sanitized paths by resolver project (paths to non-project
/// resolvers are returned under `None`).
pub fn figure6_by_project(
    paths: &[ForwarderPath],
    geo: &GeoDb,
) -> (Vec<ProjectPaths>, Vec<ForwarderPath>) {
    let mut grouped: BTreeMap<ResolverProject, (Vec<u8>, BTreeSet<u32>)> = BTreeMap::new();
    let mut other = Vec::new();
    for p in paths {
        match ResolverProject::from_service_ip(p.resolver) {
            Some(project) => {
                let entry = grouped.entry(project).or_default();
                entry.0.push(p.hop_count);
                if let Some(asn) = geo.asn_of(p.forwarder) {
                    entry.1.insert(asn);
                }
            }
            None => other.push(p.clone()),
        }
    }
    let mut out: Vec<ProjectPaths> = grouped
        .into_iter()
        .map(|(project, (mut hop_counts, asns))| {
            hop_counts.sort_unstable();
            ProjectPaths {
                project,
                hop_counts,
                asn_count: asns.len(),
            }
        })
        .collect();
    out.sort_by_key(|p| p.project);
    (out, other)
}

/// Run the §5 relationship inference over sanitized paths using the
/// Routeviews-style mapping, and split the result against a CAIDA-like
/// baseline: `known` pairs vs newly discovered ones.
pub fn as_relationship_report(
    paths: &[ForwarderPath],
    geo: &GeoDb,
    caida_known: &BTreeSet<(u32, u32)>,
) -> (InferenceReport, usize, usize) {
    let report = dnsroute::infer_relationships(paths, |ip| geo.asn_of(ip));
    let (known, new) = report.against_baseline(caida_known);
    (report, known.len(), new.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn path(resolver: Ipv4Addr, hops: u8, fwd_last_octet: u8) -> ForwarderPath {
        ForwarderPath {
            forwarder: Ipv4Addr::new(11, 0, 0, fwd_last_octet),
            resolver,
            hop_count: hops,
            via: vec![],
            approach: vec![],
        }
    }

    #[test]
    fn grouping_by_project() {
        let mut geo = GeoDb::perfect();
        geo.add_prefix24(Ipv4Addr::new(11, 0, 0, 0), 65001);
        let google = ResolverProject::Google.service_ip();
        let cf = ResolverProject::Cloudflare.service_ip();
        let local = Ipv4Addr::new(11, 9, 9, 9);
        let paths = vec![
            path(google, 8, 1),
            path(google, 6, 2),
            path(cf, 4, 3),
            path(local, 3, 4),
        ];
        let (projects, other) = figure6_by_project(&paths, &geo);
        assert_eq!(other.len(), 1);
        let google_paths = projects
            .iter()
            .find(|p| p.project == ResolverProject::Google)
            .unwrap();
        assert_eq!(google_paths.hop_counts.len(), 2);
        assert_eq!(google_paths.mean_hops(), 7.0);
        assert_eq!(google_paths.asn_count, 1);
        let cf_paths = projects
            .iter()
            .find(|p| p.project == ResolverProject::Cloudflare)
            .unwrap();
        assert_eq!(cf_paths.mean_hops(), 4.0);
    }

    #[test]
    fn relationship_report_with_baseline() {
        let mut geo = GeoDb::perfect();
        geo.add_prefix24(Ipv4Addr::new(11, 0, 0, 0), 65005); // forwarder AS
        geo.add_prefix24(Ipv4Addr::new(10, 0, 1, 0), 64611); // provider routers
        let p = ForwarderPath {
            forwarder: Ipv4Addr::new(11, 0, 0, 1),
            resolver: ResolverProject::Google.service_ip(),
            hop_count: 5,
            via: vec![Ipv4Addr::new(10, 0, 1, 2)],
            approach: vec![Ipv4Addr::new(10, 0, 1, 1)],
        };
        let mut known = BTreeSet::new();
        let (report, known_hits, new_pairs) =
            as_relationship_report(std::slice::from_ref(&p), &geo, &known);
        assert_eq!(report.matching_paths, 1);
        assert_eq!(
            (known_hits, new_pairs),
            (0, 1),
            "unknown to CAIDA: newly discovered"
        );
        known.insert((64611, 65005));
        let (_, known_hits, new_pairs) = as_relationship_report(&[p], &geo, &known);
        assert_eq!((known_hits, new_pairs), (1, 0));
    }
}
