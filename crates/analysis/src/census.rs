//! The census pipeline: run the transactional scan over a generated
//! Internet, classify every transaction, and enrich with geo/ASN data —
//! producing the dataframe every table and figure is computed from
//! (the paper's `dns-measurement-analysis` artifact).

use inetgen::{GeoDb, Internet, ShardWorldCache};
use scanner::records::{ProbeRecord, ResponseRecord};
use scanner::{classify, ClassifierConfig, Discard, OdnsClass, ScanConfig, Transaction, Verdict};
use std::net::Ipv4Addr;

/// One classified probe, enriched with mapping data.
#[derive(Debug, Clone, PartialEq)]
pub struct CensusRow {
    /// Probed address.
    pub target: Ipv4Addr,
    /// Classification verdict.
    pub verdict: Verdict,
    /// Target's origin ASN (Routeviews-style lookup; `None` for the 0.1 %
    /// coverage gap).
    pub asn: Option<u32>,
    /// Target's country (via ASN → country).
    pub country: Option<&'static str>,
    /// Who answered (for classified rows).
    pub response_src: Option<Ipv4Addr>,
    /// The dynamic `A_resolver` record (for classified rows).
    pub a_resolver: Option<Ipv4Addr>,
}

impl CensusRow {
    /// The ODNS class, if classified.
    pub fn class(&self) -> Option<OdnsClass> {
        self.verdict.class()
    }
}

/// The census dataset. `PartialEq` row for row — what the capture-driven
/// verification asserts against the live census.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Census {
    /// One row per probe.
    pub rows: Vec<CensusRow>,
    /// Responses that matched no probe.
    pub unmatched_responses: usize,
    /// Responses that arrived past the timeout.
    pub late_responses: usize,
    /// Answers discarded because their probe was already answered — wire
    /// duplicates and answers from superseded retransmission attempts.
    pub late_answers_discarded: usize,
}

impl Census {
    /// Build from correlated transactions plus the lookup database.
    pub fn from_transactions(
        transactions: &[Transaction],
        geo: &GeoDb,
        config: &ClassifierConfig,
    ) -> Self {
        let rows = transactions
            .iter()
            .map(|t| {
                let verdict = classify(t, config);
                let (response_src, a_resolver) = match verdict {
                    Verdict::Classified {
                        response_src,
                        a_resolver,
                        ..
                    } => (Some(response_src), Some(a_resolver)),
                    Verdict::Discarded(_) => (None, None),
                };
                let asn = geo.asn_of(t.probe.target);
                CensusRow {
                    target: t.probe.target,
                    verdict,
                    asn,
                    country: asn.and_then(|a| geo.country_of_asn(a)),
                    response_src,
                    a_resolver,
                }
            })
            .collect();
        Census {
            rows,
            unmatched_responses: 0,
            late_responses: 0,
            late_answers_discarded: 0,
        }
    }

    /// Rows classified as `class`.
    pub fn of_class(&self, class: OdnsClass) -> impl Iterator<Item = &CensusRow> {
        self.rows.iter().filter(move |r| r.class() == Some(class))
    }

    /// Count per class.
    pub fn count(&self, class: OdnsClass) -> usize {
        self.of_class(class).count()
    }

    /// Total classified ODNS components.
    pub fn odns_total(&self) -> usize {
        self.rows.iter().filter(|r| r.class().is_some()).count()
    }

    /// Count of discarded probes by reason.
    pub fn discarded(&self, reason: Discard) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Discarded(reason))
            .count()
    }

    /// The transparent forwarders' addresses (DNSRoute++ targets).
    pub fn transparent_targets(&self) -> Vec<Ipv4Addr> {
        self.of_class(OdnsClass::TransparentForwarder)
            .map(|r| r.target)
            .collect()
    }

    /// Share of a class among all ODNS components, in [0, 1].
    pub fn share(&self, class: OdnsClass) -> f64 {
        let total = self.odns_total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }

    /// Export the full dataframe as CSV — the paper's
    /// `dns-measurement-analysis` artifact produces exactly such a table
    /// for downstream notebooks.
    pub fn to_csv(&self) -> String {
        let mut t = crate::table::TextTable::new([
            "target",
            "verdict",
            "class",
            "response_src",
            "a_resolver",
            "asn",
            "country",
        ]);
        for row in &self.rows {
            let (verdict, class) = match &row.verdict {
                Verdict::Classified { class, .. } => ("classified".to_string(), class.to_string()),
                Verdict::Discarded(reason) => (format!("{reason:?}"), String::new()),
            };
            t.row([
                row.target.to_string(),
                verdict,
                class,
                row.response_src.map(|i| i.to_string()).unwrap_or_default(),
                row.a_resolver.map(|i| i.to_string()).unwrap_or_default(),
                row.asn.map(|a| a.to_string()).unwrap_or_default(),
                row.country.unwrap_or("").to_string(),
            ]);
        }
        t.to_csv()
    }
}

/// Run the full transactional census against a generated Internet and
/// classify with `config`. Scanner state lives at the pre-provisioned
/// fixture node; the simulator's event loop drains completely (probe
/// pacing + 20 s timeout are simulated time, not wall time).
pub fn run_census(internet: &mut Internet, config: &ClassifierConfig) -> Census {
    let scan = census_scan_config(internet);
    let outcome = scanner::run_scan(&mut internet.sim, internet.fixtures.scanner, scan);
    let mut census = Census::from_transactions(&outcome.transactions, &internet.geo, config);
    census.unmatched_responses = outcome.unmatched_responses;
    census.late_responses = outcome.late_responses;
    census.late_answers_discarded = outcome.late_answers_discarded;
    census
}

/// Correlate one shard's raw record streams and classify them into that
/// shard's census part — the single in-worker tail every sharded driver
/// shares. Raw responses (payload-bearing, the bulk of a sweep's memory)
/// die here, on the worker thread; only classified rows cross back.
///
/// Using the shard's own [`GeoDb`] is exact, not approximate: countries
/// own disjoint address regions and a shard generates every prefix its
/// own targets can fall in, so shard-local lookups equal merged-database
/// lookups for every probed address (the `0.1 %` coverage gap is a pure
/// per-prefix hash, independent of partitioning).
pub(crate) fn census_part(
    probes: Vec<ProbeRecord>,
    responses: Vec<ResponseRecord>,
    geo: &GeoDb,
    config: &ClassifierConfig,
) -> Census {
    let outcome = scanner::correlate_owned(probes, responses, ScanConfig::DEFAULT_TIMEOUT);
    let mut part = Census::from_transactions(&outcome.transactions, geo, config);
    part.unmatched_responses = outcome.unmatched_responses;
    part.late_responses = outcome.late_responses;
    part.late_answers_discarded = outcome.late_answers_discarded;
    part
}

/// The scan configuration a census world gets: the paper's defaults on a
/// clean network; on a faulty one, target-keyed tuples — the fault
/// plane's verdicts hash each probe's flow identity, and only the
/// target-keyed identity is the same for every shard count, so lossy
/// censuses stay partition-invariant (see [`scanner::TupleScheme`]).
fn census_scan_config(world: &Internet) -> ScanConfig {
    let scan = ScanConfig::new(world.targets.clone());
    if world.sim.faults_active() {
        scan.with_target_keyed_tuples()
    } else {
        scan
    }
}

/// One shard's census experiment: transactional scan, correlated and
/// classified in-worker against the shard's own lookup database.
pub(crate) fn census_shard_pass(world: &mut Internet, config: &ClassifierConfig) -> Census {
    let scan = census_scan_config(world);
    let (probes, responses, _retry) =
        scanner::run_scan_raw(&mut world.sim, world.fixtures.scanner, scan);
    census_part(probes, responses, &world.geo, config)
}

/// Concatenate per-shard census parts (ascending shard order, which is
/// how every sharded runner returns its outputs) into the merged census —
/// row for row what one scanner over the union target list would have
/// produced, since rows carry no probe index and classification is
/// per-transaction.
pub(crate) fn merge_census_parts(parts: Vec<Census>) -> Census {
    let mut merged = Census::default();
    merged
        .rows
        .reserve(parts.iter().map(|p| p.rows.len()).sum());
    for part in parts {
        merged.rows.extend(part.rows);
        merged.unmatched_responses += part.unmatched_responses;
        merged.late_responses += part.late_responses;
        merged.late_answers_discarded += part.late_answers_discarded;
    }
    merged
}

/// Run a `shards`-way sharded census: generate one world shard per
/// partition member, drive every shard's transactional scan on a worker
/// thread pool, and correlate + classify each shard's records *on its
/// worker* — only classified census rows survive the shard, so the
/// merge is a concatenation and peak memory stays per-shard-sized.
///
/// Built on [`inetgen::run_sharded`], the shared sharded experiment
/// runner: generation *and* scanning happen on the workers — each shard's
/// simulator lives and dies on one thread — so the wall-clock cost of a
/// large census divides by the worker count. Classification counts are
/// independent of `shards`: per-country generation derives only from
/// `(seed, country)` (see [`inetgen::generate_shard`]), and rows carry
/// no cross-shard state. `shards = 1` reproduces [`run_census`] over
/// [`inetgen::generate`] exactly.
pub fn run_census_sharded(
    gen_config: &inetgen::GenConfig,
    shards: u32,
    config: &ClassifierConfig,
) -> Census {
    let run = inetgen::run_sharded(gen_config, shards, |_, world| {
        census_shard_pass(world, config)
    });
    merge_census_parts(run.outputs)
}

/// [`run_census_sharded`] over a warm [`ShardWorldCache`]: the first call
/// generates the shard worlds, every later call resets and reuses them —
/// generate once, scan many. Output is bit-identical to
/// [`run_census_sharded`] with the cache's configuration at any shard
/// count (the reset restores a world to its exact post-generation state).
pub fn run_census_cached(
    cache: &mut ShardWorldCache,
    shards: u32,
    config: &ClassifierConfig,
) -> Census {
    let run = cache.run(shards, |_, world| census_shard_pass(world, config));
    merge_census_parts(run.outputs)
}

/// The offline-ingest tail: stream per-shard record collections through
/// the bounded-memory [`scanner::StreamingMerge`] (the `(port, txid)` key
/// space restarts per shard) and classify the merged transactions. The
/// live drivers classify in-worker instead; this path serves capture
/// replay ([`crate::pcap_ingest::census_from_captures`]), where records
/// arrive shard-by-shard from pcap bytes and no worker exists.
pub(crate) fn census_from_shard_records(
    streams: Vec<scanner::ShardRecords>,
    geo: &inetgen::GeoDb,
    config: &ClassifierConfig,
) -> Census {
    let outcome = scanner::merge_shard_records(streams, ScanConfig::DEFAULT_TIMEOUT);
    let mut census = Census::from_transactions(&outcome.transactions, geo, config);
    census.unmatched_responses = outcome.unmatched_responses;
    census.late_responses = outcome.late_responses;
    census.late_answers_discarded = outcome.late_answers_discarded;
    census
}

/// Run a Shadowserver-style campaign pass over the same Internet and
/// aggregate its reported ODNS addresses per country. Returned map:
/// country → reported count (country-sorted, so downstream renderings are
/// byte-stable). Used for the Table 5 comparison.
pub fn run_shadowserver_census(
    internet: &mut Internet,
) -> std::collections::BTreeMap<&'static str, usize> {
    use scanner::{run_campaign, Campaign, CampaignConfig};
    let report = run_campaign(
        &mut internet.sim,
        internet.fixtures.campaign_scanners[0],
        CampaignConfig::new(Campaign::Shadowserver, internet.targets.clone()),
    );
    campaign_country_counts(&report, &internet.geo)
}

/// Per-country counts of a campaign's reported ODNS addresses — the raw
/// material of the paper's Table 5 comparison, shared by the unsharded
/// Shadowserver pass above and the sharded campaign sweep.
pub fn campaign_country_counts(
    report: &scanner::CampaignReport,
    geo: &GeoDb,
) -> std::collections::BTreeMap<&'static str, usize> {
    let mut per_country = std::collections::BTreeMap::new();
    for ip in &report.odns {
        if let Some(country) = geo.country_of(*ip) {
            *per_country.entry(country).or_insert(0) += 1;
        }
    }
    per_country
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanner::records::{ProbeRecord, ResponseRecord};

    fn geo() -> GeoDb {
        let mut g = GeoDb::perfect();
        g.add_prefix24(Ipv4Addr::new(203, 0, 113, 0), 65001);
        g.add_asn(65001, "BRA", netsim::AsKind::EyeballIsp);
        g
    }

    fn tx(target: Ipv4Addr, response_src: Ipv4Addr, addrs: &[Ipv4Addr]) -> Transaction {
        use dnswire::{DnsName, MessageBuilder, Record, RrType};
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let q = MessageBuilder::query(5, qname.clone(), RrType::A).build();
        let mut resp = MessageBuilder::response_to(&q).build();
        for a in addrs {
            resp.answers.push(Record::a(qname.clone(), 300, *a));
        }
        Transaction {
            probe: ProbeRecord {
                index: 0,
                target,
                sent_at: netsim::SimTime(0),
                src_port: 33000,
                txid: 5,
            },
            response: Some(ResponseRecord {
                received_at: netsim::SimTime(100),
                src: response_src,
                dst_port: 33000,
                payload: resp.encode().into(),
            }),
        }
    }

    #[test]
    fn census_rows_enriched_with_geo() {
        let target = Ipv4Addr::new(203, 0, 113, 1);
        let resolver = Ipv4Addr::new(8, 8, 8, 8);
        let t = tx(target, resolver, &[resolver, odns::study::CONTROL_A]);
        let census = Census::from_transactions(&[t], &geo(), &ClassifierConfig::default());
        assert_eq!(census.rows.len(), 1);
        let row = &census.rows[0];
        assert_eq!(row.class(), Some(OdnsClass::TransparentForwarder));
        assert_eq!(row.country, Some("BRA"));
        assert_eq!(row.asn, Some(65001));
        assert_eq!(row.a_resolver, Some(resolver));
        assert_eq!(census.transparent_targets(), vec![target]);
        assert_eq!(census.odns_total(), 1);
        assert!((census.share(OdnsClass::TransparentForwarder) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discard_counting() {
        let target = Ipv4Addr::new(203, 0, 113, 2);
        let t = tx(target, target, &[target]); // single record: strict discard
        let census = Census::from_transactions(&[t], &geo(), &ClassifierConfig::default());
        assert_eq!(census.odns_total(), 0);
        assert_eq!(census.discarded(Discard::WrongRecordCount), 1);
    }

    #[test]
    fn csv_export_contains_every_row() {
        let target = Ipv4Addr::new(203, 0, 113, 1);
        let resolver = Ipv4Addr::new(8, 8, 8, 8);
        let classified = tx(target, resolver, &[resolver, odns::study::CONTROL_A]);
        let discarded = tx(
            Ipv4Addr::new(203, 0, 113, 2),
            Ipv4Addr::new(203, 0, 113, 2),
            &[],
        );
        let census = Census::from_transactions(
            &[classified, discarded],
            &geo(),
            &ClassifierConfig::default(),
        );
        let csv = census.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows:\n{csv}");
        assert!(lines[0].starts_with("target,verdict,class"));
        assert!(lines[1].contains("Transparent Forwarder"));
        assert!(lines[1].contains("8.8.8.8"));
        assert!(lines[1].contains("BRA"));
        assert!(lines[2].contains("NoAnswer"));
    }
}
