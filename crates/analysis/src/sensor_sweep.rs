//! The sharded sensor experiment: the §3.1 controlled experiment (three
//! honeypot sensors probed by the three campaign emulations) driven over
//! shard worlds on the shared [`inetgen::run_sharded`] runner.
//!
//! The sensors are fixtures, replicated into every shard world; the
//! campaign passes probe them from the designated
//! [`crate::campaign_sweep::SENSOR_SHARD`] only, so the merged Table 3
//! [`DetectionMatrix`] and the summed [`SensorTotals`] (including the
//! 5-minute /24 limiter's shed counts) are invariant in the shard count —
//! with `K = 1` bit-identical to the unsharded deploy-sensors → three
//! epoch-spaced campaign passes composition. Every campaign node is
//! tapped, so the matrix is also reproducible from the captures alone
//! ([`SensorSweep::capture_matrix`]).

use crate::campaign_sweep::{
    collect_sensor_totals, install_sensors, sensor_targets, DetectionMatrix, SensorTotals,
};
use crate::pcap_ingest::IngestError;
use inetgen::build::scanner_addrs::SensorAddrs;
use scanner::{Campaign, CampaignReport};

/// One campaign pass's capture, labelled with its campaign.
pub type CampaignCapture = (Campaign, Vec<u8>);

/// Everything the sharded sensor experiment produces.
#[derive(Debug)]
pub struct SensorSweep {
    /// Table 3: campaign × sensor detection matrix.
    pub matrix: DetectionMatrix,
    /// Merged per-campaign reports over the sensor probes.
    pub reports: Vec<(Campaign, CampaignReport)>,
    /// Merged sensor counters (queries, limiter sheds, relays).
    pub sensors: SensorTotals,
    /// Per-shard campaign captures, ascending shard order.
    pub captures: Vec<(u32, Vec<CampaignCapture>)>,
    /// The four observable sensor addresses.
    pub sensor_addrs: SensorAddrs,
}

impl SensorSweep {
    /// Rebuild the detection matrix from the captures alone: replay every
    /// campaign's processing rules over its tap and merge. Equals
    /// [`SensorSweep::matrix`].
    pub fn capture_matrix(&self) -> Result<DetectionMatrix, IngestError> {
        let merged = crate::campaign_sweep::replay_reports(
            self.captures
                .iter()
                .flat_map(|(_, shard_campaigns)| shard_campaigns)
                .map(|(campaign, pcap)| (*campaign, pcap.as_slice())),
        )?;
        Ok(DetectionMatrix::from_reports(&merged, self.sensor_addrs))
    }
}

/// Run the §3.1 controlled experiment sharded `shards` ways: every shard
/// world deploys the study stack and the three sensors; the designated
/// shard's campaign emulations probe the four sensor addresses (tapped,
/// epoch-spaced); reports, counters, and captures merge in deterministic
/// shard order.
pub fn run_sensors_sharded(gen_config: &inetgen::GenConfig, shards: u32) -> SensorSweep {
    let run = inetgen::run_sharded(gen_config, shards, |spec, world| {
        install_sensors(world);
        let addrs = world.fixtures.sensor_addrs;
        let targets = sensor_targets(spec, addrs);
        let campaigns = crate::campaign_sweep::run_campaign_passes(world, &targets);
        (
            spec.index,
            campaigns,
            collect_sensor_totals(&world.sim, &world.fixtures),
            addrs,
        )
    });

    let mut shard_reports = Vec::new();
    let mut sensors = SensorTotals::default();
    let mut captures = Vec::with_capacity(run.outputs.len());
    let mut addrs = None;
    for (shard, campaigns, shard_sensors, shard_addrs) in run.outputs {
        let mut shard_captures = Vec::with_capacity(campaigns.len());
        for (campaign, report, capture) in campaigns {
            shard_reports.push((campaign, report));
            shard_captures.push((campaign, capture));
        }
        sensors.absorb(&shard_sensors);
        captures.push((shard, shard_captures));
        addrs.get_or_insert(shard_addrs);
    }
    let reports = crate::campaign_sweep::merge_reports(shard_reports);
    let sensor_addrs = addrs.expect("at least one shard");
    let matrix = DetectionMatrix::from_reports(&reports, sensor_addrs);
    SensorSweep {
        matrix,
        reports,
        sensors,
        captures,
        sensor_addrs,
    }
}
