//! Appendix E reproductions: device fingerprinting attribution, AS-type
//! classification of the top transparent-forwarder ASes, and the 32-bit
//! ASN observation.

use crate::census::Census;
use inetgen::GeoDb;
use netsim::AsKind;
use odns::Vendor;
use scanner::{attribute_vendor, HostEvidence, OdnsClass};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Vendor attribution summary over the transparent-forwarder population.
#[derive(Debug, Clone, Default)]
pub struct VendorSummary {
    /// Attributed counts per vendor, vendor-sorted so an iterated
    /// summary renders byte-identically on every run.
    pub counts: BTreeMap<Vendor, usize>,
    /// Hosts probed but unattributed (no identifying banner).
    pub unattributed: usize,
    /// Total hosts considered.
    pub total: usize,
}

impl VendorSummary {
    /// Share of a vendor among all considered hosts.
    pub fn share(&self, vendor: Vendor) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&vendor).unwrap_or(&0) as f64 / self.total as f64
        }
    }
}

/// Attribute vendors from fingerprint evidence for the given hosts.
pub fn vendor_summary(
    evidence: &BTreeMap<Ipv4Addr, HostEvidence>,
    hosts: &[Ipv4Addr],
) -> VendorSummary {
    let mut summary = VendorSummary {
        total: hosts.len(),
        ..VendorSummary::default()
    };
    for ip in hosts {
        match evidence.get(ip).and_then(attribute_vendor) {
            Some(v) => *summary.counts.entry(v).or_insert(0) += 1,
            None => summary.unattributed += 1,
        }
    }
    summary
}

/// One row of the top-AS classification (Appendix E: "79 of the top-100
/// ASes are Cable/DSL/ISP networks", "65 ASNs are 32-bit numbers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopAsRow {
    /// The ASN.
    pub asn: u32,
    /// Transparent forwarders hosted.
    pub transparent: usize,
    /// PeeringDB-style network kind.
    pub kind: Option<AsKind>,
    /// Whether the ASN needs 32 bits (RFC 4893 four-octet space).
    pub is_32bit: bool,
}

/// The top-`n` ASes by transparent-forwarder count.
pub fn top_ases_by_transparent(census: &Census, geo: &GeoDb, n: usize) -> Vec<TopAsRow> {
    let mut per_asn: BTreeMap<u32, usize> = BTreeMap::new();
    for row in census.of_class(OdnsClass::TransparentForwarder) {
        if let Some(asn) = row.asn {
            *per_asn.entry(asn).or_insert(0) += 1;
        }
    }
    let mut v: Vec<TopAsRow> = per_asn
        .into_iter()
        .map(|(asn, transparent)| TopAsRow {
            asn,
            transparent,
            kind: geo.kind_of_asn(asn),
            is_32bit: asn > 65_535,
        })
        .collect();
    v.sort_by(|a, b| b.transparent.cmp(&a.transparent).then(a.asn.cmp(&b.asn)));
    v.truncate(n);
    v
}

/// Summary of the top-AS classification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopAsSummary {
    /// ASes counted.
    pub total: usize,
    /// Eyeball (Cable/DSL/ISP) ASes.
    pub eyeball: usize,
    /// Other classified kinds.
    pub other_kinds: usize,
    /// Unclassified.
    pub unclassified: usize,
    /// 32-bit ASNs.
    pub four_octet: usize,
    /// Share of all transparent forwarders covered by these ASes.
    pub coverage: f64,
}

/// Summarize the top-`n` ASes (the Appendix E headline numbers).
pub fn top_as_summary(census: &Census, geo: &GeoDb, n: usize) -> TopAsSummary {
    let rows = top_ases_by_transparent(census, geo, n);
    let covered: usize = rows.iter().map(|r| r.transparent).sum();
    let total_transparent = census.count(OdnsClass::TransparentForwarder);
    let mut s = TopAsSummary {
        total: rows.len(),
        ..TopAsSummary::default()
    };
    for r in &rows {
        match r.kind {
            Some(AsKind::EyeballIsp) => s.eyeball += 1,
            Some(AsKind::Unclassified) | None => s.unclassified += 1,
            Some(_) => s.other_kinds += 1,
        }
        if r.is_32bit {
            s.four_octet += 1;
        }
    }
    s.coverage = if total_transparent == 0 {
        0.0
    } else {
        covered as f64 / total_transparent as f64
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusRow;
    use scanner::Verdict;

    fn census_with_asns(asns: &[(u32, usize)]) -> Census {
        let mut c = Census::default();
        for (asn, count) in asns {
            for _ in 0..*count {
                c.rows.push(CensusRow {
                    target: Ipv4Addr::new(11, 0, 0, 1),
                    verdict: Verdict::Classified {
                        class: OdnsClass::TransparentForwarder,
                        a_resolver: Ipv4Addr::new(8, 8, 8, 8),
                        response_src: Ipv4Addr::new(8, 8, 8, 8),
                    },
                    asn: Some(*asn),
                    country: Some("BRA"),
                    response_src: Some(Ipv4Addr::new(8, 8, 8, 8)),
                    a_resolver: Some(Ipv4Addr::new(8, 8, 8, 8)),
                });
            }
        }
        c
    }

    #[test]
    fn top_as_ranking_and_32bit_detection() {
        let census = census_with_asns(&[(4_200_000_001, 10), (20_001, 5), (20_002, 1)]);
        let mut geo = GeoDb::perfect();
        geo.add_asn(4_200_000_001, "BRA", AsKind::EyeballIsp);
        geo.add_asn(20_001, "BRA", AsKind::Content);
        geo.add_asn(20_002, "BRA", AsKind::Unclassified);
        let rows = top_ases_by_transparent(&census, &geo, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].asn, 4_200_000_001);
        assert!(rows[0].is_32bit);
        assert!(!rows[1].is_32bit);

        let summary = top_as_summary(&census, &geo, 2);
        assert_eq!(summary.eyeball, 1);
        assert_eq!(summary.other_kinds, 1);
        assert_eq!(summary.four_octet, 1);
        assert!((summary.coverage - 15.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn vendor_attribution_shares() {
        let mut evidence = BTreeMap::new();
        let a = Ipv4Addr::new(11, 0, 0, 1);
        let b = Ipv4Addr::new(11, 0, 0, 2);
        let c = Ipv4Addr::new(11, 0, 0, 3);
        let mut e = HostEvidence::default();
        e.banners.push((5678, "MikroTik RouterOS 6.45.9".into()));
        evidence.insert(a, e);
        let mut e2 = HostEvidence::default();
        e2.banners.push((7547, "Zyxel CPE".into()));
        evidence.insert(b, e2);
        // c: probed, nothing open.
        evidence.insert(c, HostEvidence::default());

        let summary = vendor_summary(&evidence, &[a, b, c]);
        assert_eq!(summary.total, 3);
        assert_eq!(summary.counts[&Vendor::MikroTik], 1);
        assert_eq!(summary.unattributed, 1);
        assert!((summary.share(Vendor::MikroTik) - 1.0 / 3.0).abs() < 1e-9);
    }
}
