//! Per-country aggregation: the data behind Figures 3 and 4.

use crate::cdf::Cdf;
use crate::census::Census;
use scanner::OdnsClass;
use std::collections::BTreeMap;

/// Per-country ODNS composition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountryStats {
    /// Recursive resolvers.
    pub resolvers: usize,
    /// Recursive forwarders.
    pub recursive_forwarders: usize,
    /// Transparent forwarders.
    pub transparent_forwarders: usize,
    /// Distinct ASNs with at least one transparent forwarder.
    pub transparent_asns: usize,
}

impl CountryStats {
    /// Total ODNS components.
    pub fn total(&self) -> usize {
        self.resolvers + self.recursive_forwarders + self.transparent_forwarders
    }

    /// Transparent share in [0, 1].
    pub fn transparent_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.transparent_forwarders as f64 / self.total() as f64
        }
    }
}

/// Aggregate a census by country. Rows without a country mapping (the
/// 0.1 % geo gap) are collected under `None`.
///
/// `BTreeMap`-backed so that report surfaces iterating it render
/// byte-identically on every run — merged sharded reports rely on this
/// (`HashMap` iteration order varies per instance within one process).
pub fn by_country(census: &Census) -> BTreeMap<Option<&'static str>, CountryStats> {
    let mut map: BTreeMap<Option<&'static str>, CountryStats> = BTreeMap::new();
    let mut transparent_asns: BTreeMap<Option<&'static str>, std::collections::BTreeSet<u32>> =
        BTreeMap::new();
    for row in &census.rows {
        let Some(class) = row.class() else { continue };
        let stats = map.entry(row.country).or_default();
        match class {
            OdnsClass::RecursiveResolver => stats.resolvers += 1,
            OdnsClass::RecursiveForwarder => stats.recursive_forwarders += 1,
            OdnsClass::TransparentForwarder => {
                stats.transparent_forwarders += 1;
                if let Some(asn) = row.asn {
                    transparent_asns.entry(row.country).or_default().insert(asn);
                }
            }
        }
    }
    for (country, asns) in transparent_asns {
        if let Some(stats) = map.get_mut(&country) {
            stats.transparent_asns = asns.len();
        }
    }
    map
}

/// Countries ranked by transparent-forwarder count, descending (the
/// Figure 3/4 x-axis). Unmapped rows excluded.
pub fn rank_by_transparent(census: &Census) -> Vec<(&'static str, CountryStats)> {
    let mut v: Vec<(&'static str, CountryStats)> = by_country(census)
        .into_iter()
        .filter_map(|(c, s)| c.map(|code| (code, s)))
        .collect();
    v.sort_by(|a, b| {
        b.1.transparent_forwarders
            .cmp(&a.1.transparent_forwarders)
            .then(a.0.cmp(b.0))
    });
    v
}

/// Figure 3: cumulative share of transparent forwarders over countries
/// ranked descending. Returns `(rank, cumulative_share)` points plus the
/// share of ODNS countries hosting no transparent forwarder at all.
pub fn figure3_cumulative(census: &Census) -> (Vec<(usize, f64)>, f64) {
    let ranked = rank_by_transparent(census);
    let total: usize = ranked.iter().map(|(_, s)| s.transparent_forwarders).sum();
    let mut points = Vec::with_capacity(ranked.len());
    let mut cum = 0usize;
    for (i, (_, stats)) in ranked.iter().enumerate() {
        cum += stats.transparent_forwarders;
        points.push((
            i + 1,
            if total == 0 {
                0.0
            } else {
                cum as f64 / total as f64
            },
        ));
    }
    let zero_countries = ranked
        .iter()
        .filter(|(_, s)| s.transparent_forwarders == 0)
        .count();
    let zero_share = if ranked.is_empty() {
        0.0
    } else {
        zero_countries as f64 / ranked.len() as f64
    };
    (points, zero_share)
}

/// CDF of per-country transparent counts (for summary statistics).
pub fn transparent_count_cdf(census: &Census) -> Cdf {
    Cdf::from_samples(
        rank_by_transparent(census)
            .into_iter()
            .map(|(_, s)| s.transparent_forwarders as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusRow;
    use scanner::Verdict;
    use std::net::Ipv4Addr;

    fn row(country: Option<&'static str>, asn: u32, class: OdnsClass) -> CensusRow {
        let target = Ipv4Addr::new(203, 0, 113, 1);
        CensusRow {
            target,
            verdict: Verdict::Classified {
                class,
                a_resolver: Ipv4Addr::new(8, 8, 8, 8),
                response_src: Ipv4Addr::new(8, 8, 8, 8),
            },
            asn: Some(asn),
            country,
            response_src: Some(Ipv4Addr::new(8, 8, 8, 8)),
            a_resolver: Some(Ipv4Addr::new(8, 8, 8, 8)),
        }
    }

    fn census() -> Census {
        let mut c = Census::default();
        for _ in 0..8 {
            c.rows
                .push(row(Some("BRA"), 650, OdnsClass::TransparentForwarder));
        }
        c.rows
            .push(row(Some("BRA"), 651, OdnsClass::TransparentForwarder));
        c.rows
            .push(row(Some("BRA"), 650, OdnsClass::RecursiveForwarder));
        for _ in 0..3 {
            c.rows
                .push(row(Some("DEU"), 700, OdnsClass::RecursiveForwarder));
        }
        c.rows
            .push(row(Some("DEU"), 700, OdnsClass::RecursiveResolver));
        c.rows.push(row(None, 999, OdnsClass::RecursiveForwarder));
        c
    }

    #[test]
    fn aggregation_by_country() {
        let m = by_country(&census());
        let bra = m[&Some("BRA")];
        assert_eq!(bra.transparent_forwarders, 9);
        assert_eq!(bra.recursive_forwarders, 1);
        assert_eq!(bra.transparent_asns, 2);
        assert_eq!(bra.total(), 10);
        assert!((bra.transparent_share() - 0.9).abs() < 1e-9);
        let deu = m[&Some("DEU")];
        assert_eq!(deu.transparent_forwarders, 0);
        assert_eq!(deu.resolvers, 1);
        assert!(m.contains_key(&None), "geo gap bucket");
    }

    #[test]
    fn ranking_descending() {
        let r = rank_by_transparent(&census());
        assert_eq!(r[0].0, "BRA");
        assert_eq!(r[1].0, "DEU");
    }

    #[test]
    fn figure3_points_reach_one_and_count_zero_countries() {
        let (points, zero_share) = figure3_cumulative(&census());
        assert_eq!(points.len(), 2);
        assert!((points[1].1 - 1.0).abs() < 1e-9);
        assert!(
            (zero_share - 0.5).abs() < 1e-9,
            "DEU has no transparent forwarders"
        );
    }
}
