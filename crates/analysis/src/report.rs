//! Rendered reproductions: one function per table/figure, producing both
//! the data and a printable text artifact. Benches and examples call these
//! to emit the same rows/series the paper reports.

use crate::aggregate::{by_country, figure3_cumulative, rank_by_transparent};
use crate::census::Census;
use crate::chart::{render_stacked_bar, Segment};
use crate::consolidation::{figure5_by_country, table4_other_share, ResolverSource};
use crate::density::PrefixDensity;
use crate::ranking::table5_ranking;
use crate::table::{pct, TextTable};
use inetgen::GeoDb;
use odns::ResolverProject;
use scanner::OdnsClass;
use std::collections::BTreeMap;

/// Table 1: the ODNS composition.
pub fn table1(census: &Census) -> TextTable {
    let mut t = TextTable::new(["Component", "Count", "Share"]);
    let total = census.odns_total();
    for class in OdnsClass::all() {
        let n = census.count(class);
        t.row([
            class.name().to_string(),
            n.to_string(),
            pct(n as f64, total as f64),
        ]);
    }
    t.row([
        "All ODNSes".to_string(),
        total.to_string(),
        "100.0%".to_string(),
    ]);
    t
}

/// Figure 3: cumulative transparent-forwarder share over ranked countries.
pub fn figure3(census: &Census) -> (TextTable, f64, f64) {
    let (points, zero_share) = figure3_cumulative(census);
    let mut t = TextTable::new(["Country rank", "Cumulative share"]);
    for (rank, share) in &points {
        if *rank <= 10 || rank % 25 == 0 || *rank == points.len() {
            t.row([rank.to_string(), format!("{:.3}", share)]);
        }
    }
    let top10 = points
        .get(9)
        .map(|(_, s)| *s)
        .unwrap_or_else(|| points.last().map(|(_, s)| *s).unwrap_or(0.0));
    (t, top10, zero_share)
}

/// Figure 4: the top-`n` countries with component shares.
pub fn figure4(census: &Census, n: usize) -> TextTable {
    let mut t = TextTable::new([
        "Country",
        "#ASes",
        "Transparent",
        "% Transp",
        "% RecFwd",
        "% Resolver",
        "Bar",
    ]);
    for (code, stats) in rank_by_transparent(census).into_iter().take(n) {
        let total = stats.total() as f64;
        let bar = render_stacked_bar(
            &[
                Segment {
                    glyph: 'T',
                    share: stats.transparent_forwarders as f64 / total,
                },
                Segment {
                    glyph: 'f',
                    share: stats.recursive_forwarders as f64 / total,
                },
                Segment {
                    glyph: 'r',
                    share: stats.resolvers as f64 / total,
                },
            ],
            24,
        );
        t.row([
            code.to_string(),
            stats.transparent_asns.to_string(),
            stats.transparent_forwarders.to_string(),
            pct(stats.transparent_forwarders as f64, total),
            pct(stats.recursive_forwarders as f64, total),
            pct(stats.resolvers as f64, total),
            bar,
        ]);
    }
    t
}

/// Figure 5: resolver-project popularity per country (top-`n` countries by
/// transparent forwarders).
pub fn figure5(census: &Census, n: usize) -> TextTable {
    let consolidation = figure5_by_country(census);
    let mut t = TextTable::new([
        "Country",
        "Google",
        "Cloudflare",
        "Quad9",
        "OpenDNS",
        "Other",
        "Bar",
    ]);
    for (code, _) in rank_by_transparent(census).into_iter().take(n) {
        let Some(c) = consolidation.get(code) else {
            continue;
        };
        let shares = [
            c.share(ResolverSource::Project(ResolverProject::Google)),
            c.share(ResolverSource::Project(ResolverProject::Cloudflare)),
            c.share(ResolverSource::Project(ResolverProject::Quad9)),
            c.share(ResolverSource::Project(ResolverProject::OpenDns)),
            c.share(ResolverSource::Other),
        ];
        let bar = render_stacked_bar(
            &[
                Segment {
                    glyph: 'G',
                    share: shares[0],
                },
                Segment {
                    glyph: 'C',
                    share: shares[1],
                },
                Segment {
                    glyph: 'q',
                    share: shares[2],
                },
                Segment {
                    glyph: 'o',
                    share: shares[3],
                },
                Segment {
                    glyph: '.',
                    share: shares[4],
                },
            ],
            24,
        );
        t.row([
            code.to_string(),
            pct(shares[0], 1.0),
            pct(shares[1], 1.0),
            pct(shares[2], 1.0),
            pct(shares[3], 1.0),
            pct(shares[4], 1.0),
            bar,
        ]);
    }
    t
}

/// Table 4: top-`n` countries by "other" share.
pub fn table4(census: &Census, geo: &GeoDb, n: usize) -> TextTable {
    let mut t = TextTable::new([
        "Country",
        "Top ASN",
        "# Transp. (other)",
        "Indirect consolidation",
        "Distinct other resolvers",
    ]);
    for row in table4_other_share(census, geo, n) {
        t.row([
            row.country.to_string(),
            row.top_asn
                .map(|a| a.to_string())
                .unwrap_or_else(|| "n/a".into()),
            row.other_transparent.to_string(),
            pct(row.indirect_share, 1.0),
            row.distinct_other_resolvers.to_string(),
        ]);
    }
    t
}

/// Table 5: top-`n` country ranking vs the Shadowserver-style view.
pub fn table5(
    census: &Census,
    shadowserver: &BTreeMap<&'static str, usize>,
    n: usize,
) -> TextTable {
    let mut t = TextTable::new([
        "Country", "Rank", "#ODNS", "SS Rank", "SS #ODNS", "ΔRank", "ΔCount",
    ]);
    for row in table5_ranking(census, shadowserver, n) {
        t.row([
            row.country.to_string(),
            row.our_rank.to_string(),
            row.our_count.to_string(),
            row.shadow_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "n/a".into()),
            row.shadow_count.to_string(),
            row.rank_delta()
                .map(|d| format!("{d:+}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:+}", row.count_delta()),
        ]);
    }
    t
}

/// Figure 8: the /24 density profile of transparent forwarders.
pub fn figure8(census: &Census) -> (TextTable, PrefixDensity) {
    let density = PrefixDensity::from_ips(census.transparent_targets());
    let mut t = TextTable::new(["Metric", "Value"]);
    t.row([
        "Transparent forwarders".to_string(),
        density.total().to_string(),
    ]);
    t.row([
        "Covering /24 prefixes".to_string(),
        density.prefix_count().to_string(),
    ]);
    t.row([
        "Share in sparse prefixes (<=25)".to_string(),
        pct(
            density.share_in_density_at_most(crate::density::SPARSE_MAX),
            1.0,
        ),
    ]);
    t.row([
        "Share in full prefixes (>=254)".to_string(),
        pct(
            density.share_in_density_at_least(crate::density::FULL_MIN),
            1.0,
        ),
    ]);
    t.row([
        "Completely populated prefixes".to_string(),
        density.full_prefixes().to_string(),
    ]);
    (t, density)
}

/// Country-level sanity summary used by examples.
pub fn country_summary(census: &Census) -> TextTable {
    let mut t = TextTable::new(["Country", "ODNS", "Transparent", "Share"]);
    let mut rows: Vec<_> = by_country(census)
        .into_iter()
        .filter_map(|(c, s)| c.map(|code| (code, s)))
        .collect();
    rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.total()));
    for (code, stats) in rows {
        t.row([
            code.to_string(),
            stats.total().to_string(),
            stats.transparent_forwarders.to_string(),
            pct(stats.transparent_share(), 1.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusRow;
    use scanner::Verdict;
    use std::net::Ipv4Addr;

    fn mini_census() -> Census {
        let mut c = Census::default();
        let mk = |country: &'static str, class: OdnsClass, src: Ipv4Addr, last: u8| CensusRow {
            target: Ipv4Addr::new(11, 0, 0, last),
            verdict: Verdict::Classified {
                class,
                a_resolver: src,
                response_src: src,
            },
            asn: Some(650),
            country: Some(country),
            response_src: Some(src),
            a_resolver: Some(src),
        };
        for i in 0..6 {
            c.rows.push(mk(
                "BRA",
                OdnsClass::TransparentForwarder,
                Ipv4Addr::new(8, 8, 8, 8),
                i,
            ));
        }
        for i in 0..3 {
            c.rows.push(mk(
                "BRA",
                OdnsClass::RecursiveForwarder,
                Ipv4Addr::new(11, 0, 0, 99),
                10 + i,
            ));
        }
        c.rows.push(mk(
            "BRA",
            OdnsClass::RecursiveResolver,
            Ipv4Addr::new(11, 0, 0, 99),
            20,
        ));
        c
    }

    #[test]
    fn table1_shares_sum_up() {
        let t = table1(&mini_census());
        let rendered = t.render();
        assert!(rendered.contains("Transparent Forwarder"));
        assert!(rendered.contains("60.0%"), "6/10 transparent:\n{rendered}");
        assert!(rendered.contains("All ODNSes"));
    }

    #[test]
    fn figure_reports_render() {
        let c = mini_census();
        let (f3, top10, zero) = figure3(&c);
        assert!(f3.row_count() >= 1);
        assert!((top10 - 1.0).abs() < 1e-9, "single country holds all");
        assert_eq!(zero, 0.0);
        assert!(figure4(&c, 10).render().contains("BRA"));
        assert!(figure5(&c, 10).render().contains("100.0%"));
        let (f8, density) = figure8(&c);
        assert_eq!(density.total(), 6);
        assert!(f8.render().contains("Covering /24 prefixes"));
        assert!(country_summary(&c).render().contains("BRA"));
    }

    #[test]
    fn table5_renders_deltas() {
        let mut shadow = BTreeMap::new();
        shadow.insert("BRA", 4usize);
        let t = table5(&mini_census(), &shadow, 5);
        let rendered = t.render();
        assert!(rendered.contains("BRA"));
        assert!(rendered.contains("+6"), "count delta 10-4:\n{rendered}");
    }

    #[test]
    fn report_surfaces_render_byte_stably() {
        // Two independently-built (identical) censuses must render the
        // identical bytes on every surface that aggregates per country —
        // the guarantee merged sharded reports rely on. Each construction
        // allocates fresh maps, so any HashMap-iteration-order dependence
        // in the aggregation surfaces would show up here.
        let render_all = || {
            let c = mini_census();
            let mut shadow = BTreeMap::new();
            shadow.insert("BRA", 4usize);
            let geo = inetgen::GeoDb::perfect();
            format!(
                "{}\n{}\n{}\n{}\n{}\n{}",
                table1(&c).render(),
                figure4(&c, 10).render(),
                figure5(&c, 10).render(),
                table4(&c, &geo, 10).render(),
                table5(&c, &shadow, 10).render(),
                country_summary(&c).render(),
            )
        };
        assert_eq!(render_all(), render_all());
    }
}
