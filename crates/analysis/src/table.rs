//! Plain-text table rendering for the regenerated tables, plus a small
//! CSV writer (no external format crates in the offline set).

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.len()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC 4180-style quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percent string with one decimal.
pub fn pct(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", numerator * 100.0 / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Country", "Transparent", "Share"]);
        t.row(["BRA", "250000", "84.0%"]);
        t.row(["IND", "82500", "80.2%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Country"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("250000"));
        // Columns align: "Transparent" position identical in all rows.
        let col = lines[0].find("Transparent").unwrap();
        assert_eq!(&lines[2][col..col + 6], "250000");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.row_count(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = TextTable::new(["name", "note"]);
        t.row(["plain", "with,comma"]);
        t.row(["q\"uote", "line"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"q\"\"uote\""));
        assert!(csv.starts_with("name,note\n"));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(26.0, 100.0), "26.0%");
        assert_eq!(pct(1.0, 3.0), "33.3%");
        assert_eq!(pct(5.0, 0.0), "0.0%");
    }
}
