//! The sharded DNSRoute++ sweep: census → trace every transparent
//! forwarder, one shard world at a time, in parallel.
//!
//! The paper's §5 sweep "scans all transparent forwarders" found by the
//! census — full coverage, not a sampled subset, which is also what
//! attack-surface mapping of forwarder misuse needs. A single simulator
//! bounds one sweep to the source-port space above `base_port` (one port
//! per target is the only Time-Exceeded correlator); sharding removes
//! that wave limit, because every shard world owns its own port space
//! *and* its own worker thread.
//!
//! Built on [`inetgen::run_sharded`]: each shard runs the transactional
//! scan, correlates and classifies its own transactions *once* in-worker
//! — yielding both that shard's census part and its transparent-forwarder
//! targets — and traces them with [`dnsroute::run_dnsroute`] in the same
//! (already warm) simulator. Census parts concatenate into exactly the
//! census [`crate::run_census_sharded`] produces; traces concatenate in
//! ascending shard order. Partition invariance of the
//! generator makes every per-target trace independent of `K`, so
//! Figure 6 ([`crate::figure6_by_project`]) and the AS-relationship
//! report are identical for any shard count — and `K = 1` reproduces the
//! classic unsharded census → trace pipeline bit for bit.

use crate::census::{census_part, merge_census_parts, Census};
use dnsroute::{DnsRouteConfig, ForwarderPath, SanitizeStats, TraceResult};
use inetgen::{GeoDb, Internet, ShardWorldCache, ShardedRun};
use scanner::{ClassifierConfig, ScanConfig};

/// Everything a sharded census → DNSRoute++ sweep produces.
#[derive(Debug)]
pub struct ShardedSweep {
    /// The merged census (identical to [`crate::run_census_sharded`] over
    /// the same configuration).
    pub census: Census,
    /// All traces, concatenated in ascending shard order; within a shard,
    /// in that shard's census target order.
    pub traces: Vec<TraceResult>,
    /// The merged lookup database for figure/report generation.
    pub geo: GeoDb,
}

impl ShardedSweep {
    /// Sanitize the sweep (§5's "after sanitization" filter).
    pub fn sanitized(&self) -> (Vec<ForwarderPath>, SanitizeStats) {
        dnsroute::sanitize(&self.traces)
    }

    /// Figure 6 input: sanitized paths grouped by resolver project.
    pub fn figure6(&self) -> (Vec<crate::ProjectPaths>, Vec<ForwarderPath>) {
        let (paths, _) = self.sanitized();
        crate::figure6_by_project(&paths, &self.geo)
    }
}

/// One shard's §5 experiment: transactional scan → one correlation +
/// classification pass (producing this shard's census part *and* its
/// transparent-forwarder targets, in probe order) → DNSRoute++ over those
/// targets in the same, already warm simulator.
///
/// The scan's records are correlated exactly once; the census part the
/// discovery pass produces is the same rows the merged census lists for
/// this shard, so nothing is classified twice either.
pub(crate) fn dnsroute_shard_pass(
    world: &mut Internet,
    classifier: &ClassifierConfig,
) -> (Census, Vec<TraceResult>) {
    let scan = ScanConfig::new(world.targets.clone());
    let (probes, responses, _retry) =
        scanner::run_scan_raw(&mut world.sim, world.fixtures.scanner, scan);
    let part = census_part(probes, responses, &world.geo, classifier);
    let traces = dnsroute::run_dnsroute(
        &mut world.sim,
        world.fixtures.scanner,
        DnsRouteConfig::new(part.transparent_targets()),
    );
    (part, traces)
}

/// The deterministic merge both sweep drivers share: census parts
/// concatenate (ascending shard order), traces concatenate in the same
/// order.
fn merge_sweep(run: ShardedRun<(Census, Vec<TraceResult>)>) -> ShardedSweep {
    let mut parts = Vec::with_capacity(run.outputs.len());
    let mut traces = Vec::new();
    for (part, shard_traces) in run.outputs {
        parts.push(part);
        traces.extend(shard_traces);
    }
    ShardedSweep {
        census: merge_census_parts(parts),
        traces,
        geo: run.geo,
    }
}

/// Run the full §5 pipeline sharded `shards` ways on a worker-thread
/// pool: per shard, transactional scan → classify → DNSRoute++ over that
/// shard's transparent forwarders — then merge census parts and traces in
/// deterministic shard order.
///
/// Classification is per-transaction, so the shard-local discovery pass
/// finds exactly the targets the merged census attributes to that shard;
/// no cross-shard state exists. Each shard's sweep runs in the simulator
/// the scan just warmed (routes resolved, resolver caches filled), which
/// is also how the real study operated: trace the forwarders right after
/// the census that found them.
pub fn run_dnsroute_sharded(
    gen_config: &inetgen::GenConfig,
    shards: u32,
    classifier: &ClassifierConfig,
) -> ShardedSweep {
    merge_sweep(inetgen::run_sharded(gen_config, shards, |_, world| {
        dnsroute_shard_pass(world, classifier)
    }))
}

/// [`run_dnsroute_sharded`] over a warm [`ShardWorldCache`]: shard worlds
/// generate on the first call and reset-reuse on every later one, so a
/// K-sweep pays world generation once per shard count instead of once per
/// sweep. Bit-identical to [`run_dnsroute_sharded`] with the cache's
/// configuration.
pub fn run_dnsroute_cached(
    cache: &mut ShardWorldCache,
    shards: u32,
    classifier: &ClassifierConfig,
) -> ShardedSweep {
    merge_sweep(cache.run(shards, |_, world| dnsroute_shard_pass(world, classifier)))
}
