//! The sharded DNSRoute++ sweep: census → trace every transparent
//! forwarder, one shard world at a time, in parallel.
//!
//! The paper's §5 sweep "scans all transparent forwarders" found by the
//! census — full coverage, not a sampled subset, which is also what
//! attack-surface mapping of forwarder misuse needs. A single simulator
//! bounds one sweep to the source-port space above `base_port` (one port
//! per target is the only Time-Exceeded correlator); sharding removes
//! that wave limit, because every shard world owns its own port space
//! *and* its own worker thread.
//!
//! Built on [`inetgen::run_sharded`]: each shard runs the transactional
//! scan, classifies its own transactions to discover that shard's
//! transparent forwarders, and traces them with [`dnsroute::run_dnsroute`]
//! in the same (already warm) simulator. Record streams merge into the
//! census exactly as [`crate::run_census_sharded`] merges them; traces
//! concatenate in ascending shard order. Partition invariance of the
//! generator makes every per-target trace independent of `K`, so
//! Figure 6 ([`crate::figure6_by_project`]) and the AS-relationship
//! report are identical for any shard count — and `K = 1` reproduces the
//! classic unsharded census → trace pipeline bit for bit.

use crate::census::Census;
use dnsroute::{DnsRouteConfig, ForwarderPath, SanitizeStats, TraceResult};
use inetgen::GeoDb;
use scanner::{classify, ClassifierConfig, OdnsClass, ScanConfig};
use std::net::Ipv4Addr;

/// Everything a sharded census → DNSRoute++ sweep produces.
#[derive(Debug)]
pub struct ShardedSweep {
    /// The merged census (identical to [`crate::run_census_sharded`] over
    /// the same configuration).
    pub census: Census,
    /// All traces, concatenated in ascending shard order; within a shard,
    /// in that shard's census target order.
    pub traces: Vec<TraceResult>,
    /// The merged lookup database for figure/report generation.
    pub geo: GeoDb,
}

impl ShardedSweep {
    /// Sanitize the sweep (§5's "after sanitization" filter).
    pub fn sanitized(&self) -> (Vec<ForwarderPath>, SanitizeStats) {
        dnsroute::sanitize(&self.traces)
    }

    /// Figure 6 input: sanitized paths grouped by resolver project.
    pub fn figure6(&self) -> (Vec<crate::ProjectPaths>, Vec<ForwarderPath>) {
        let (paths, _) = self.sanitized();
        crate::figure6_by_project(&paths, &self.geo)
    }
}

/// Run the full §5 pipeline sharded `shards` ways on a worker-thread
/// pool: per shard, transactional scan → classify → DNSRoute++ over that
/// shard's transparent forwarders — then merge records and traces in
/// deterministic shard order.
///
/// Classification is per-transaction, so the shard-local discovery pass
/// finds exactly the targets the merged census attributes to that shard;
/// no cross-shard state exists. Each shard's sweep runs in the simulator
/// the scan just warmed (routes resolved, resolver caches filled), which
/// is also how the real study operated: trace the forwarders right after
/// the census that found them.
pub fn run_dnsroute_sharded(
    gen_config: &inetgen::GenConfig,
    shards: u32,
    classifier: &ClassifierConfig,
) -> ShardedSweep {
    let run = inetgen::run_sharded(gen_config, shards, |spec, world| {
        // The shard's transactional scan, kept as raw streams for the
        // merged single-pass correlation.
        let scan = ScanConfig::new(world.targets.clone());
        let (probes, responses) =
            scanner::run_scan_raw(&mut world.sim, world.fixtures.scanner, scan);
        // Shard-local discovery: correlate and classify this shard's own
        // transactions to get its transparent-forwarder targets, in the
        // same (probe) order the merged census will list them.
        let outcome = scanner::correlate(&probes, &responses, ScanConfig::DEFAULT_TIMEOUT);
        let targets: Vec<Ipv4Addr> = outcome
            .transactions
            .iter()
            .filter(|t| classify(t, classifier).class() == Some(OdnsClass::TransparentForwarder))
            .map(|t| t.probe.target)
            .collect();
        // The TTL sweep, in the same simulator the scan ran in.
        let traces = dnsroute::run_dnsroute(
            &mut world.sim,
            world.fixtures.scanner,
            DnsRouteConfig::new(targets),
        );
        (
            scanner::ShardRecords::new(spec.index, probes, responses),
            traces,
        )
    });

    let mut records = Vec::with_capacity(run.outputs.len());
    let mut traces = Vec::new();
    for (shard_records, shard_traces) in run.outputs {
        records.push(shard_records);
        traces.extend(shard_traces);
    }
    let census = crate::census::census_from_shard_records(records, &run.geo, classifier);
    ShardedSweep {
        census,
        traces,
        geo: run.geo,
    }
}
