//! The sharded campaign sweep: the §3 scanning-campaign emulations
//! (Shadowserver, Censys, Shodan) driven over shard worlds in parallel,
//! with the transactional census riding in the same warm simulators and
//! every scanner tapped to an in-memory pcap.
//!
//! Built on [`inetgen::run_sharded`], like the census and the DNSRoute++
//! sweep. Per shard world:
//!
//! 1. the study stack is already deployed by the generator; the three
//!    §3.1 honeypot sensors are installed on the fixture sensor nodes
//!    ([`install_sensors`]);
//! 2. the transactional scan runs over the shard's own target partition
//!    with the scanner node tapped — its records correlate and classify
//!    in-worker into the shard's census part, exactly as
//!    [`crate::run_census_sharded`]'s do;
//! 3. all three campaign emulations run sequentially from their own
//!    fixture nodes (each shard and each campaign owns its own source
//!    port space), spaced [`CAMPAIGN_EPOCH`] apart in simulated time so
//!    the sensors' 5-minute answer budget refills between passes (the
//!    paper runs the campaigns over separate weeks). The designated
//!    [`SENSOR_SHARD`] appends the four sensor addresses to its campaign
//!    target lists — exactly one shard, so merged sensor counters are
//!    partition-invariant (each sensor instance keeps its own per-/24
//!    rate limiter; splitting a source /24 across shards would double its
//!    budget).
//!
//! Per-shard outputs merge deterministically into the Table 3 campaign ×
//! sensor [`DetectionMatrix`], the Table 5 per-campaign ODNS component
//! counts, and the merged [`Census`] — all invariant in the shard count,
//! with `K = 1` bit-identical (timestamps and captures included) to the
//! unsharded scan-then-campaigns composition over [`inetgen::generate`].
//!
//! Every result is also reproducible from the captures alone
//! ([`CampaignSweep::capture_census`], [`CampaignSweep::capture_reports`])
//! — the sharded pipeline is capture-driven like the paper's
//! dumpcap-based artifact (§A.2).

use crate::census::{campaign_country_counts, census_part, merge_census_parts, Census};
use crate::pcap_ingest::{campaign_report_from_pcap, census_from_captures, IngestError};
use crate::table::TextTable;
use inetgen::build::scanner_addrs::SensorAddrs;
use inetgen::{Fixtures, GeoDb, Internet, ShardSpec, ShardWorldCache, ShardedRun};
use netsim::{SimDuration, Simulator};
use scanner::{
    run_campaign_delayed, run_scan_raw, Campaign, CampaignConfig, CampaignReport, ClassifierConfig,
    HoneypotSensor, ScanConfig, SensorKind, SensorStats,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Simulated-time spacing between campaign passes over the same world.
/// Longer than the sensors' 5-minute per-/24 budget (plus the correlation
/// timeout), so one campaign's probes never eat the next one's answers —
/// the paper achieved the same by running the campaigns weeks apart.
pub const CAMPAIGN_EPOCH: SimDuration = SimDuration::from_secs(400);

/// The shard whose campaign passes probe the sensor addresses. The sensor
/// network is a fixture replicated into every shard world, but its
/// addresses must be *probed* in exactly one shard: each shard's sensor
/// instances keep their own per-source-/24 rate limiters, so probing them
/// everywhere would grant the scanner /24 one answer budget per shard and
/// make the merged sensor counters scale with `K`. Shard 0 exists in
/// every partition, so the choice is partition-invariant.
pub const SENSOR_SHARD: u32 = 0;

/// Install the three §3.1 honeypot sensors on a world's fixture nodes,
/// resolving through Google like the paper's deployment.
pub fn install_sensors(world: &mut Internet) {
    let addrs = world.fixtures.sensor_addrs;
    let upstream = odns::ResolverProject::Google.service_ip();
    world.sim.install(
        world.fixtures.sensor1,
        HoneypotSensor::new(SensorKind::RecursiveResolver, upstream),
    );
    world.sim.install(
        world.fixtures.sensor2,
        HoneypotSensor::new(
            SensorKind::InteriorForwarder {
                reply_from: addrs.ip3,
            },
            upstream,
        ),
    );
    world.sim.install(
        world.fixtures.sensor3,
        HoneypotSensor::new(SensorKind::ExteriorForwarder, upstream),
    );
}

/// The four observable sensor addresses in Table 3 column order, for the
/// shard that probes them (empty elsewhere — see [`SENSOR_SHARD`]).
pub fn sensor_targets(spec: ShardSpec, addrs: SensorAddrs) -> Vec<Ipv4Addr> {
    if spec.index == SENSOR_SHARD {
        vec![addrs.ip1, addrs.ip2, addrs.ip3, addrs.ip4]
    } else {
        Vec::new()
    }
}

/// Merged counters of the three sensors across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorTotals {
    /// Sensor 1 (recursive-resolver sensor at `IP1`).
    pub sensor1: SensorStats,
    /// Sensor 2 (interior forwarder, receives `IP2`, replies `IP3`).
    pub sensor2: SensorStats,
    /// Sensor 3 (exterior forwarder at `IP4`).
    pub sensor3: SensorStats,
    /// Spoofed relays sensor 3 performed.
    pub relayed: u64,
}

impl SensorTotals {
    /// Sum another shard's totals into this one.
    pub fn absorb(&mut self, other: &SensorTotals) {
        self.sensor1.absorb(other.sensor1);
        self.sensor2.absorb(other.sensor2);
        self.sensor3.absorb(other.sensor3);
        self.relayed += other.relayed;
    }

    /// Queries shed by the sensors' 5-minute /24 limiters, all sensors.
    pub fn rate_limited(&self) -> u64 {
        self.sensor1.rate_limited + self.sensor2.rate_limited + self.sensor3.rate_limited
    }

    /// Queries that arrived at any sensor.
    pub fn queries(&self) -> u64 {
        self.sensor1.queries + self.sensor2.queries + self.sensor3.queries
    }
}

/// Read the sensors' counters off a world after its campaign passes.
pub fn collect_sensor_totals(sim: &Simulator, fixtures: &Fixtures) -> SensorTotals {
    let sensor = |node| -> &HoneypotSensor { sim.host_as(node).expect("sensor installed") };
    let s3 = sensor(fixtures.sensor3);
    SensorTotals {
        sensor1: sensor(fixtures.sensor1).stats,
        sensor2: sensor(fixtures.sensor2).stats,
        sensor3: s3.stats,
        relayed: s3.relay_stats.relayed,
    }
}

/// Table 3: which campaign discovers which sensor address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    /// One row per campaign in [`Campaign::all`] order: detection of
    /// `IP1..IP4`.
    pub rows: Vec<(Campaign, [bool; 4])>,
}

impl DetectionMatrix {
    /// Derive the matrix from merged campaign reports.
    pub fn from_reports(reports: &[(Campaign, CampaignReport)], addrs: SensorAddrs) -> Self {
        let rows = reports
            .iter()
            .map(|(campaign, report)| {
                (
                    *campaign,
                    [
                        report.odns.contains(&addrs.ip1),
                        report.odns.contains(&addrs.ip2),
                        report.odns.contains(&addrs.ip3),
                        report.odns.contains(&addrs.ip4),
                    ],
                )
            })
            .collect();
        DetectionMatrix { rows }
    }

    /// The row for one campaign.
    pub fn row(&self, campaign: Campaign) -> Option<[bool; 4]> {
        self.rows
            .iter()
            .find(|(c, _)| *c == campaign)
            .map(|(_, r)| *r)
    }

    /// The matrix the paper reports (Table 3): every campaign finds the
    /// baseline resolver; Shadowserver additionally reports Sensor 2's
    /// *reply* address `IP3`; nobody identifies a forwarder's probed
    /// address.
    pub fn paper_expected() -> Self {
        DetectionMatrix {
            rows: vec![
                (Campaign::Shadowserver, [true, false, true, false]),
                (Campaign::Censys, [true, false, false, false]),
                (Campaign::Shodan, [true, false, false, false]),
            ],
        }
    }

    /// Render as the paper's ✓/✗ table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(["Scanner", "IP1", "IP2", "IP3", "IP4"]);
        for (campaign, row) in &self.rows {
            let mark = |found: bool| if found { "\u{2713}" } else { "\u{2717}" };
            t.row([
                campaign.name().to_string(),
                mark(row[0]).to_string(),
                mark(row[1]).to_string(),
                mark(row[2]).to_string(),
                mark(row[3]).to_string(),
            ]);
        }
        t
    }
}

/// The pcap captures one shard's taps produced.
#[derive(Debug, Clone)]
pub struct ShardCaptures {
    /// Which shard.
    pub shard: u32,
    /// The transactional scanner's capture (probes + responses).
    pub scan: Vec<u8>,
    /// One capture per campaign pass, in [`Campaign::all`] order.
    pub campaigns: Vec<(Campaign, Vec<u8>)>,
}

/// Everything the sharded campaign sweep produces.
#[derive(Debug)]
pub struct CampaignSweep {
    /// The merged transactional census (identical to
    /// [`crate::run_census_sharded`] over the same configuration).
    pub census: Census,
    /// Merged per-campaign reports (ODNS sets unioned, counters summed),
    /// in [`Campaign::all`] order.
    pub reports: Vec<(Campaign, CampaignReport)>,
    /// Table 3: campaign × sensor detection matrix.
    pub matrix: DetectionMatrix,
    /// Merged sensor counters.
    pub sensors: SensorTotals,
    /// Per-shard captures, ascending shard order — sufficient to rebuild
    /// the census, the campaign reports, and the detection matrix offline
    /// ([`CampaignSweep::capture_census`],
    /// [`CampaignSweep::capture_reports`]). The sensors' internal
    /// counters ([`CampaignSweep::sensors`]) are host-side state that
    /// never crosses the tapped wire segments, so they are not
    /// reconstructible from captures.
    pub captures: Vec<ShardCaptures>,
    /// The merged lookup database.
    pub geo: GeoDb,
    /// The four observable sensor addresses.
    pub sensor_addrs: SensorAddrs,
}

impl CampaignSweep {
    /// Table 5's left-hand side: ODNS components each campaign reports.
    pub fn component_counts(&self) -> Vec<(Campaign, usize)> {
        self.reports
            .iter()
            .map(|(c, r)| (*c, r.odns.len()))
            .collect()
    }

    /// Per-country ODNS counts of one campaign's merged report.
    pub fn country_counts(&self, campaign: Campaign) -> BTreeMap<&'static str, usize> {
        let report = self
            .reports
            .iter()
            .find(|(c, _)| *c == campaign)
            .map(|(_, r)| r)
            .expect("campaign present in sweep");
        campaign_country_counts(report, &self.geo)
    }

    /// Table 5: the census's country ranking vs the Shadowserver-style
    /// per-country counts from the sweep's own campaign pass.
    pub fn table5(&self, top_n: usize) -> TextTable {
        crate::report::table5(
            &self.census,
            &self.country_counts(Campaign::Shadowserver),
            top_n,
        )
    }

    /// Rebuild the census from the per-shard scan captures alone — the
    /// capture-driven verification path. Equals [`CampaignSweep::census`]
    /// row for row.
    pub fn capture_census(&self, classifier: &ClassifierConfig) -> Result<Census, IngestError> {
        let captures: Vec<(u32, &[u8])> = self
            .captures
            .iter()
            .map(|c| (c.shard, c.scan.as_slice()))
            .collect();
        census_from_captures(&captures, &self.geo, classifier)
    }

    /// Replay every campaign capture offline and merge, rebuilding
    /// [`CampaignSweep::reports`] from the taps alone.
    pub fn capture_reports(&self) -> Result<Vec<(Campaign, CampaignReport)>, IngestError> {
        replay_reports(
            self.captures
                .iter()
                .flat_map(|shard| &shard.campaigns)
                .map(|(campaign, pcap)| (*campaign, pcap.as_slice())),
        )
    }

    /// All captures joined into one wireshark-openable pcap stream
    /// (inspection only — analysis must ingest per shard, see
    /// [`crate::pcap_ingest::shard_records_from_pcap`]).
    pub fn merged_capture(&self) -> Result<Vec<u8>, netsim::pcap::PcapError> {
        let mut parts: Vec<&[u8]> = Vec::new();
        for c in &self.captures {
            parts.push(&c.scan);
            for (_, pcap) in &c.campaigns {
                parts.push(pcap);
            }
        }
        netsim::pcap::merge_captures(&parts)
    }
}

/// Replay labelled campaign captures through their campaigns' processing
/// rules and merge — the one implementation of capture-driven report
/// reconstruction, shared by [`CampaignSweep::capture_reports`] and
/// [`crate::sensor_sweep::SensorSweep::capture_matrix`].
pub(crate) fn replay_reports<'a>(
    items: impl IntoIterator<Item = (Campaign, &'a [u8])>,
) -> Result<Vec<(Campaign, CampaignReport)>, IngestError> {
    let replayed = items
        .into_iter()
        .map(|(campaign, pcap)| campaign_report_from_pcap(campaign, pcap).map(|r| (campaign, r)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_reports(replayed))
}

/// Fold per-shard (or per-capture) campaign reports into one merged
/// report per campaign, in [`Campaign::all`] order — the single place the
/// sharded merge semantics live, shared by the live drivers and the
/// capture-replay paths so the two can never silently diverge.
pub(crate) fn merge_reports(
    items: impl IntoIterator<Item = (Campaign, CampaignReport)>,
) -> Vec<(Campaign, CampaignReport)> {
    let mut merged: Vec<(Campaign, CampaignReport)> = Campaign::all()
        .into_iter()
        .map(|c| (c, CampaignReport::default()))
        .collect();
    for (campaign, report) in items {
        let slot = merged
            .iter_mut()
            .find(|(c, _)| *c == campaign)
            .expect("Campaign::all covers every campaign");
        slot.1.absorb(&report);
    }
    merged
}

/// One shard's contribution, before the deterministic merge.
struct ShardOutput {
    shard: u32,
    census: Census,
    campaigns: Vec<(Campaign, CampaignReport, Vec<u8>)>,
    sensors: SensorTotals,
    scan_capture: Vec<u8>,
    addrs: SensorAddrs,
}

/// Run the three campaign passes over `targets` from the world's campaign
/// fixture nodes, tapped, spaced [`CAMPAIGN_EPOCH`] apart. Shared by the
/// campaign and sensor sweeps (and, inlined, by the unsharded reference
/// path the determinism tests compare against).
pub(crate) fn run_campaign_passes(
    world: &mut Internet,
    targets: &[Ipv4Addr],
) -> Vec<(Campaign, CampaignReport, Vec<u8>)> {
    Campaign::all()
        .into_iter()
        .enumerate()
        .map(|(i, campaign)| {
            let node = world.fixtures.campaign_scanners[i];
            world.sim.tap(node);
            let delay = if i == 0 {
                SimDuration::ZERO
            } else {
                CAMPAIGN_EPOCH
            };
            let report = run_campaign_delayed(
                &mut world.sim,
                node,
                CampaignConfig::new(campaign, targets.to_vec()),
                delay,
            );
            let capture = world.sim.take_capture(node).expect("campaign tapped");
            (campaign, report, capture)
        })
        .collect()
}

fn shard_campaign_pass(
    spec: ShardSpec,
    world: &mut Internet,
    classifier: &ClassifierConfig,
) -> ShardOutput {
    install_sensors(world);
    let addrs = world.fixtures.sensor_addrs;

    // The shard's transactional scan, tapped; the records correlate and
    // classify in-worker into this shard's census part, the capture feeds
    // the offline twin.
    let scanner_node = world.fixtures.scanner;
    world.sim.tap(scanner_node);
    let scan = ScanConfig::new(world.targets.clone());
    let (probes, responses, _retry) = run_scan_raw(&mut world.sim, scanner_node, scan);
    let scan_capture = world
        .sim
        .take_capture(scanner_node)
        .expect("scanner tapped");
    let census = census_part(probes, responses, &world.geo, classifier);

    // Campaign passes over the shard partition; the designated shard also
    // probes the sensors.
    let mut targets = world.targets.clone();
    targets.extend(sensor_targets(spec, addrs));
    let campaigns = run_campaign_passes(world, &targets);

    ShardOutput {
        shard: spec.index,
        census,
        campaigns,
        sensors: collect_sensor_totals(&world.sim, &world.fixtures),
        scan_capture,
        addrs,
    }
}

/// Run the full §3 campaign experiment sharded `shards` ways on a
/// worker-thread pool: per shard, transactional scan (tapped) → three
/// campaign emulations (tapped) over that shard's target partition, the
/// [`SENSOR_SHARD`] additionally probing the sensor deployment — then
/// merge records, reports, counters, and captures in deterministic shard
/// order.
pub fn run_campaign_sharded(
    gen_config: &inetgen::GenConfig,
    shards: u32,
    classifier: &ClassifierConfig,
) -> CampaignSweep {
    merge_campaign_outputs(inetgen::run_sharded(gen_config, shards, |spec, world| {
        shard_campaign_pass(spec, world, classifier)
    }))
}

/// [`run_campaign_sharded`] over a warm [`ShardWorldCache`]: shard worlds
/// generate on the first call and reset-reuse afterwards (the reset
/// uninstalls the sensors and clears their limiter state along with all
/// other host state, so every run starts from the same fresh deployment).
/// Bit-identical to [`run_campaign_sharded`] with the cache's
/// configuration.
pub fn run_campaign_cached(
    cache: &mut ShardWorldCache,
    shards: u32,
    classifier: &ClassifierConfig,
) -> CampaignSweep {
    merge_campaign_outputs(cache.run(shards, |spec, world| {
        shard_campaign_pass(spec, world, classifier)
    }))
}

/// The deterministic merge both campaign drivers share: census parts
/// concatenate, reports fold per campaign, sensor counters sum, captures
/// keep ascending shard order.
fn merge_campaign_outputs(run: ShardedRun<ShardOutput>) -> CampaignSweep {
    let mut census_parts = Vec::with_capacity(run.outputs.len());
    let mut shard_reports = Vec::new();
    let mut sensors = SensorTotals::default();
    let mut captures = Vec::with_capacity(run.outputs.len());
    let mut addrs = None;
    for output in run.outputs {
        census_parts.push(output.census);
        let mut shard_campaigns = Vec::with_capacity(output.campaigns.len());
        for (campaign, report, capture) in output.campaigns {
            shard_reports.push((campaign, report));
            shard_campaigns.push((campaign, capture));
        }
        sensors.absorb(&output.sensors);
        captures.push(ShardCaptures {
            shard: output.shard,
            scan: output.scan_capture,
            campaigns: shard_campaigns,
        });
        addrs.get_or_insert(output.addrs);
    }
    let reports = merge_reports(shard_reports);
    let sensor_addrs = addrs.expect("at least one shard");
    let census = merge_census_parts(census_parts);
    let matrix = DetectionMatrix::from_reports(&reports, sensor_addrs);
    CampaignSweep {
        census,
        reports,
        matrix,
        sensors,
        captures,
        geo: run.geo,
        sensor_addrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> SensorAddrs {
        SensorAddrs {
            ip1: Ipv4Addr::new(203, 0, 113, 11),
            ip2: Ipv4Addr::new(203, 0, 113, 22),
            ip3: Ipv4Addr::new(203, 0, 113, 23),
            ip4: Ipv4Addr::new(203, 0, 113, 44),
        }
    }

    #[test]
    fn matrix_from_reports_checks_each_address() {
        let a = addrs();
        let mut shadow = CampaignReport::default();
        shadow.odns.insert(a.ip1);
        shadow.odns.insert(a.ip3);
        let mut censys = CampaignReport::default();
        censys.odns.insert(a.ip1);
        let matrix = DetectionMatrix::from_reports(
            &[
                (Campaign::Shadowserver, shadow),
                (Campaign::Censys, censys.clone()),
                (Campaign::Shodan, censys),
            ],
            a,
        );
        assert_eq!(matrix, DetectionMatrix::paper_expected());
        assert_eq!(
            matrix.row(Campaign::Shadowserver),
            Some([true, false, true, false])
        );
        let rendered = matrix.render().render();
        assert!(rendered.contains("Shadowserver"));
        assert!(rendered.contains('\u{2713}') && rendered.contains('\u{2717}'));
    }

    #[test]
    fn sensor_targets_only_in_designated_shard() {
        let a = addrs();
        assert_eq!(sensor_targets(ShardSpec::new(0, 4), a).len(), 4);
        assert!(sensor_targets(ShardSpec::new(1, 4), a).is_empty());
        assert_eq!(
            sensor_targets(ShardSpec::solo(), a),
            vec![a.ip1, a.ip2, a.ip3, a.ip4],
            "Table 3 column order"
        );
    }

    #[test]
    fn sensor_totals_sum() {
        let one = SensorTotals {
            sensor1: SensorStats {
                queries: 3,
                rate_limited: 0,
                upstream: 3,
                answered: 3,
            },
            sensor2: SensorStats {
                queries: 6,
                rate_limited: 3,
                upstream: 3,
                answered: 3,
            },
            sensor3: SensorStats {
                queries: 3,
                rate_limited: 0,
                upstream: 3,
                answered: 0,
            },
            relayed: 3,
        };
        let mut total = SensorTotals::default();
        total.absorb(&one);
        total.absorb(&SensorTotals::default()); // empty shards change nothing
        assert_eq!(total, one);
        assert_eq!(total.rate_limited(), 3);
        assert_eq!(total.queries(), 12);
    }
}
