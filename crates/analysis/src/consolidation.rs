//! DNS consolidation analysis: Figure 5 (resolver-project popularity per
//! country) and Table 4 (the structure of the "other" share, including
//! indirect consolidation through forwarding chains).

use crate::census::Census;
use inetgen::GeoDb;
use odns::ResolverProject;
use scanner::OdnsClass;
use std::collections::{BTreeMap, BTreeSet};

/// Which resolver answered a transparent forwarder's relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResolverSource {
    /// One of the four big projects (attributed by well-known address).
    Project(ResolverProject),
    /// Anything else — local resolvers or forwarding chains.
    Other,
}

impl ResolverSource {
    /// Attribute a response source address.
    pub fn of(ip: std::net::Ipv4Addr) -> Self {
        match ResolverProject::from_service_ip(ip) {
            Some(p) => ResolverSource::Project(p),
            None => ResolverSource::Other,
        }
    }

    /// Display label matching Figure 5's legend.
    pub fn label(&self) -> &'static str {
        match self {
            ResolverSource::Project(p) => p.name(),
            ResolverSource::Other => "Other",
        }
    }
}

/// Per-country resolver-source shares among transparent forwarders.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountryConsolidation {
    /// Counts per source, in [`ResolverSource`] order (deterministic
    /// iteration keeps Figure 5 renderings byte-stable).
    pub counts: BTreeMap<ResolverSource, usize>,
    /// Total transparent forwarders with a known response source.
    pub total: usize,
}

impl CountryConsolidation {
    /// Share of a source in [0, 1].
    pub fn share(&self, source: ResolverSource) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.counts.get(&source).unwrap_or(&0) as f64 / self.total as f64
        }
    }
}

/// Figure 5: per-country project shares behind transparent forwarders.
/// Country-sorted (`BTreeMap`) so renderings are byte-stable across runs.
pub fn figure5_by_country(census: &Census) -> BTreeMap<&'static str, CountryConsolidation> {
    let mut map: BTreeMap<&'static str, CountryConsolidation> = BTreeMap::new();
    for row in census.of_class(OdnsClass::TransparentForwarder) {
        let (Some(country), Some(src)) = (row.country, row.response_src) else {
            continue;
        };
        let entry = map.entry(country).or_default();
        *entry.counts.entry(ResolverSource::of(src)).or_insert(0) += 1;
        entry.total += 1;
    }
    map
}

/// One row of Table 4: the structure of a country's "other" share.
#[derive(Debug, Clone)]
pub struct OtherShareRow {
    /// Country code.
    pub country: &'static str,
    /// ASN from which most "other" responses arrived.
    pub top_asn: Option<u32>,
    /// Transparent forwarders whose response source was "other".
    pub other_transparent: usize,
    /// Share of "other" responses whose `A_resolver` maps to a big-4 ASN —
    /// indirect consolidation through forwarding chains.
    pub indirect_share: f64,
    /// Distinct "other" resolver addresses serving this country (the
    /// "1 to 10 local resolvers" observation).
    pub distinct_other_resolvers: usize,
}

/// Table 4: top-`n` countries by absolute "other" share, with indirect
/// consolidation computed from the `A_resolver` record's ASN.
pub fn table4_other_share(census: &Census, geo: &GeoDb, n: usize) -> Vec<OtherShareRow> {
    struct Acc {
        by_asn: BTreeMap<u32, usize>,
        other_total: usize,
        indirect: usize,
        resolvers: BTreeSet<std::net::Ipv4Addr>,
    }
    let mut per_country: BTreeMap<&'static str, Acc> = BTreeMap::new();
    for row in census.of_class(OdnsClass::TransparentForwarder) {
        let (Some(country), Some(src)) = (row.country, row.response_src) else {
            continue;
        };
        if ResolverSource::of(src) != ResolverSource::Other {
            continue;
        }
        let acc = per_country.entry(country).or_insert_with(|| Acc {
            by_asn: BTreeMap::new(),
            other_total: 0,
            indirect: 0,
            resolvers: BTreeSet::new(),
        });
        acc.other_total += 1;
        acc.resolvers.insert(src);
        if let Some(asn) = geo.asn_of(src) {
            *acc.by_asn.entry(asn).or_insert(0) += 1;
        }
        // Indirect consolidation: the forwarding chain's *last* hop (the
        // auth's immediate client, reflected in A_resolver) belongs to a
        // big-4 project even though the response came from elsewhere.
        if let Some(a_resolver) = row.a_resolver {
            if geo
                .asn_of(a_resolver)
                .and_then(ResolverProject::from_asn)
                .is_some()
            {
                acc.indirect += 1;
            }
        }
    }
    let mut rows: Vec<OtherShareRow> = per_country
        .into_iter()
        .map(|(country, acc)| OtherShareRow {
            country,
            // Ties on count resolve to the lowest ASN explicitly: the
            // rendered Table 4 must not depend on which tied ASN the
            // iterator happens to visit last.
            top_asn: acc
                .by_asn
                .iter()
                .max_by_key(|(a, c)| (**c, std::cmp::Reverse(**a)))
                .map(|(a, _)| *a),
            other_transparent: acc.other_total,
            indirect_share: if acc.other_total == 0 {
                0.0
            } else {
                acc.indirect as f64 / acc.other_total as f64
            },
            distinct_other_resolvers: acc.resolvers.len(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.other_transparent
            .cmp(&a.other_transparent)
            .then(a.country.cmp(b.country))
    });
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusRow;
    use scanner::Verdict;
    use std::net::Ipv4Addr;

    fn row(country: &'static str, response_src: Ipv4Addr, a_resolver: Ipv4Addr) -> CensusRow {
        CensusRow {
            target: Ipv4Addr::new(203, 0, 113, 1),
            verdict: Verdict::Classified {
                class: OdnsClass::TransparentForwarder,
                a_resolver,
                response_src,
            },
            asn: Some(650),
            country: Some(country),
            response_src: Some(response_src),
            a_resolver: Some(a_resolver),
        }
    }

    fn geo() -> GeoDb {
        let mut g = GeoDb::perfect();
        g.add_prefix24(Ipv4Addr::new(8, 8, 4, 0), 15169);
        g.add_anycast(Ipv4Addr::new(8, 8, 8, 8), 15169);
        g.add_prefix24(Ipv4Addr::new(11, 0, 1, 0), 65001); // local resolver
        g.add_prefix24(Ipv4Addr::new(11, 0, 2, 0), 65002); // chain head
        g.add_asn(15169, "USA", netsim::AsKind::Content);
        g.add_asn(65001, "TUR", netsim::AsKind::EyeballIsp);
        g.add_asn(65002, "TUR", netsim::AsKind::EyeballIsp);
        g
    }

    #[test]
    fn figure5_attributes_projects() {
        let google = Ipv4Addr::new(8, 8, 8, 8);
        let local = Ipv4Addr::new(11, 0, 1, 9);
        let mut c = Census::default();
        c.rows.push(row("IND", google, Ipv4Addr::new(8, 8, 4, 1)));
        c.rows.push(row("IND", google, Ipv4Addr::new(8, 8, 4, 1)));
        c.rows.push(row("IND", local, local));
        let f5 = figure5_by_country(&c);
        let ind = &f5["IND"];
        assert_eq!(ind.total, 3);
        let g = ind.share(ResolverSource::Project(ResolverProject::Google));
        assert!((g - 2.0 / 3.0).abs() < 1e-9);
        assert!((ind.share(ResolverSource::Other) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(ResolverSource::of(google).label(), "Google");
    }

    #[test]
    fn table4_separates_direct_local_from_chains() {
        let local = Ipv4Addr::new(11, 0, 1, 9); // local open resolver
        let chain_head = Ipv4Addr::new(11, 0, 2, 9); // forwards to Google
        let google_egress = Ipv4Addr::new(8, 8, 4, 1);
        let mut c = Census::default();
        // Two forwarders behind the local resolver: A_resolver = local.
        c.rows.push(row("TUR", local, local));
        c.rows.push(row("TUR", local, local));
        // One behind a chain: response from the chain head, but the auth
        // saw Google's egress.
        c.rows.push(row("TUR", chain_head, google_egress));
        let t4 = table4_other_share(&c, &geo(), 10);
        assert_eq!(t4.len(), 1);
        let r = &t4[0];
        assert_eq!(r.country, "TUR");
        assert_eq!(r.other_transparent, 3);
        assert!((r.indirect_share - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.distinct_other_resolvers, 2);
        assert_eq!(r.top_asn, Some(65001), "local resolver's AS dominates");
    }

    #[test]
    fn project_responses_not_in_other() {
        let mut c = Census::default();
        c.rows.push(row(
            "IND",
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(8, 8, 4, 1),
        ));
        let t4 = table4_other_share(&c, &geo(), 10);
        assert!(t4.is_empty());
    }
}
