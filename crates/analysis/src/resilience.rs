//! The resilience sweep: census recall under packet loss, with and
//! without scanner retransmission — the robustness companion to the
//! scaling benches.
//!
//! A single-packet census (the paper's method: one probe, one answer,
//! offline correlation) loses a target for every probe or answer the
//! network eats. The sweep quantifies that: for every `(loss rate, retry
//! budget)` grid point it injects a flow-keyed [`FaultPlan`] into each
//! shard world, runs the transactional scan with the matching
//! [`RetryPolicy`], and scores the merged census against the planted
//! ground truth.
//!
//! Cells store only integer counters and merge by summing, in
//! [`AttackMatrix`](crate::AttackMatrix) style — the matrix is `Eq` and
//! bit-identical however many shards ran. Recall, precision, and probe
//! overhead exist only in the renderer.
//!
//! Determinism: the fault plan is salted from the *generation* seed
//! before it reaches any simulator, so per-flow fault verdicts are
//! invariant under the shard count (a simulator-salted plan would key
//! faults to per-shard sim seeds and break the K-invariance contract).

use crate::census::Census;
use crate::table::TextTable;
use inetgen::{PlantedClass, ShardWorldCache};
use netsim::{FaultPlan, RetryPolicy, SimDuration};
use scanner::{ClassifierConfig, OdnsClass, ScanConfig};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// One grid point of the sweep: what the scan spent and what it found at
/// a given loss rate and retry budget. Integer counters only — ratios
/// live in the renderer, keeping the cell `Eq` and the shard merge exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceCell {
    /// Ground-truth transparent forwarders planted in the swept worlds.
    pub planted_transparent: u64,
    /// Census rows classified transparent whose target really is one.
    pub detected_true: u64,
    /// Census rows classified transparent whose target is *not* a planted
    /// transparent forwarder (must stay zero: loss may cost coverage but
    /// never fabricate a forwarder).
    pub false_positives: u64,
    /// First-attempt probes the scan sent.
    pub probes_sent: u64,
    /// Retransmissions the retry policy added on top.
    pub retransmits_sent: u64,
    /// Probes that got an answer within the correlation timeout.
    pub answered: u64,
}

impl ResilienceCell {
    /// Merge another shard's cell: counters sum.
    pub fn absorb(&mut self, other: &ResilienceCell) {
        self.planted_transparent += other.planted_transparent;
        self.detected_true += other.detected_true;
        self.false_positives += other.false_positives;
        self.probes_sent += other.probes_sent;
        self.retransmits_sent += other.retransmits_sent;
        self.answered += other.answered;
    }

    /// Detected transparent forwarders per planted one, in `[0, 1]`.
    /// Rendering only; never stored or compared.
    pub fn recall(&self) -> f64 {
        if self.planted_transparent == 0 {
            0.0
        } else {
            self.detected_true as f64 / self.planted_transparent as f64
        }
    }

    /// True detections per detection. Rendering only.
    pub fn precision(&self) -> f64 {
        let detections = self.detected_true + self.false_positives;
        if detections == 0 {
            1.0
        } else {
            self.detected_true as f64 / detections as f64
        }
    }

    /// Extra packets per first-attempt probe — what the retry budget cost
    /// on the wire. Rendering only.
    pub fn overhead(&self) -> f64 {
        if self.probes_sent == 0 {
            0.0
        } else {
            self.retransmits_sent as f64 / self.probes_sent as f64
        }
    }
}

/// The sweep result: per `(loss, retries)` cells keyed by loss rate in
/// permille (integer keys keep the map `Eq` and its order total) and
/// retransmission budget. Bit-identical for any shard count over the same
/// cache configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceMatrix {
    /// `(loss_permille, retries) → cell`; `BTreeMap` so iteration, `Eq`,
    /// and the renderer are all deterministic.
    pub cells: BTreeMap<(u32, u8), ResilienceCell>,
}

impl ResilienceMatrix {
    /// The cell at one grid point, if it was swept.
    pub fn cell(&self, loss_permille: u32, retries: u8) -> Option<&ResilienceCell> {
        self.cells.get(&(loss_permille, retries))
    }

    /// Merge another matrix (e.g. from a second sweep): cells fold per
    /// grid key.
    pub fn absorb(&mut self, other: &ResilienceMatrix) {
        for (key, cell) in &other.cells {
            self.cells.entry(*key).or_default().absorb(cell);
        }
    }

    /// Render the recall/precision/overhead table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "Loss",
            "Retries",
            "Planted",
            "Detected",
            "Recall",
            "Precision",
            "Overhead",
        ]);
        for ((loss, retries), cell) in &self.cells {
            t.row([
                format!("{:.1}%", *loss as f64 / 10.0),
                retries.to_string(),
                cell.planted_transparent.to_string(),
                cell.detected_true.to_string(),
                format!("{:.3}", cell.recall()),
                format!("{:.3}", cell.precision()),
                format!("{:.3}", cell.overhead()),
            ]);
        }
        t
    }
}

/// The retry policy a sweep grid point uses: `retries` retransmissions
/// with a 2 s initial RTO, exponential backoff, and a little deterministic
/// jitter to spread retransmission bursts.
pub fn sweep_retry_policy(retries: u8) -> RetryPolicy {
    RetryPolicy::retries(retries).with_jitter(SimDuration::from_millis(50))
}

/// The fault plan a sweep grid point injects: uniform loss at
/// `loss_permille / 1000` with proportionate duplication and corruption
/// (see [`FaultPlan::lossy`]), salted from `gen_seed` so verdicts are
/// partition-invariant.
pub fn sweep_fault_plan(loss_permille: u32, gen_seed: u64) -> FaultPlan {
    FaultPlan::lossy(f64::from(loss_permille) / 1000.0).salted(gen_seed)
}

/// Run the resilience sweep over warm shard worlds: every `(loss,
/// retries)` grid point scans the same `shards`-way partition under its
/// own fault plan and retry policy, and scores against ground truth.
///
/// Worlds generate once (first cache use) and reset-reuse for every grid
/// point after — the sweep pays `losses × retry_budgets` scans but one
/// generation. The result is invariant in `shards` and in cache warmth.
pub fn run_resilience_sweep(
    cache: &mut ShardWorldCache,
    shards: u32,
    losses_permille: &[u32],
    retry_budgets: &[u8],
) -> ResilienceMatrix {
    let gen_seed = cache.config().seed;
    let classifier = ClassifierConfig::default();
    let mut matrix = ResilienceMatrix::default();
    for &loss in losses_permille {
        for &retries in retry_budgets {
            let plan = sweep_fault_plan(loss, gen_seed);
            let retry = sweep_retry_policy(retries);
            let run = cache.run(shards, |_, world| {
                world.sim.set_faults(plan.clone());
                // Target-keyed tuples give every probe a partition-
                // invariant flow identity; without them fault verdicts
                // would hash per-shard indices and break K-invariance.
                let scan = ScanConfig::new(world.targets.clone())
                    .with_target_keyed_tuples()
                    .with_retry(retry);
                let (probes, responses, retry_stats) =
                    scanner::run_scan_raw(&mut world.sim, world.fixtures.scanner, scan);
                let outcome =
                    scanner::correlate_owned(probes, responses, ScanConfig::DEFAULT_TIMEOUT);
                let answered = outcome.answered_count() as u64;
                let probes_sent = outcome.transactions.len() as u64;
                let census =
                    Census::from_transactions(&outcome.transactions, &world.geo, &classifier);
                let planted: BTreeSet<Ipv4Addr> = world
                    .truth
                    .hosts
                    .iter()
                    .filter(|h| h.class == PlantedClass::TransparentForwarder)
                    .map(|h| h.ip)
                    .collect();
                let mut cell = ResilienceCell {
                    planted_transparent: planted.len() as u64,
                    probes_sent,
                    retransmits_sent: retry_stats.retransmits_sent,
                    answered,
                    ..ResilienceCell::default()
                };
                for row in census.of_class(OdnsClass::TransparentForwarder) {
                    if planted.contains(&row.target) {
                        cell.detected_true += 1;
                    } else {
                        cell.false_positives += 1;
                    }
                }
                cell
            });
            let merged = matrix.cells.entry((loss, retries)).or_default();
            for cell in &run.outputs {
                merged.absorb(cell);
            }
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use inetgen::{CountrySelection, GenConfig};

    fn sweep_config(seed: u64) -> GenConfig {
        GenConfig {
            countries: CountrySelection::Codes(vec!["BRA", "TUR", "MUS"]),
            scale: 3_000,
            dud_fraction: 0.0,
            seed,
            ..GenConfig::default()
        }
    }

    #[test]
    fn cell_ratios_and_absorb() {
        let mut a = ResilienceCell {
            planted_transparent: 10,
            detected_true: 8,
            false_positives: 0,
            probes_sent: 100,
            retransmits_sent: 25,
            answered: 60,
        };
        let b = ResilienceCell {
            planted_transparent: 10,
            detected_true: 9,
            false_positives: 1,
            probes_sent: 100,
            retransmits_sent: 15,
            answered: 70,
        };
        a.absorb(&b);
        assert_eq!(a.planted_transparent, 20);
        assert_eq!(a.detected_true, 17);
        assert!((a.recall() - 0.85).abs() < 1e-12);
        assert!((a.precision() - 17.0 / 18.0).abs() < 1e-12);
        assert!((a.overhead() - 0.2).abs() < 1e-12);
        assert_eq!(ResilienceCell::default().recall(), 0.0);
        assert_eq!(ResilienceCell::default().precision(), 1.0);
    }

    #[test]
    fn retries_recover_recall_lost_to_faults() {
        let mut cache = ShardWorldCache::new(sweep_config(31));
        let matrix = run_resilience_sweep(&mut cache, 2, &[0, 100], &[0, 2]);

        let clean = matrix.cell(0, 0).unwrap();
        assert!(clean.planted_transparent > 0, "world plants forwarders");
        assert_eq!(
            clean.detected_true, clean.planted_transparent,
            "lossless recall is total"
        );
        assert_eq!(clean.retransmits_sent, 0, "no faults, no retransmits");

        let lossy = matrix.cell(100, 0).unwrap();
        let retried = matrix.cell(100, 2).unwrap();
        assert!(
            lossy.detected_true < lossy.planted_transparent,
            "10% loss costs recall without retries"
        );
        assert!(
            retried.detected_true > lossy.detected_true,
            "retries recover recall: {} vs {}",
            retried.detected_true,
            lossy.detected_true
        );
        assert!(retried.retransmits_sent > 0);
        // Loss never fabricates a forwarder, with or without retries.
        for cell in matrix.cells.values() {
            assert_eq!(cell.false_positives, 0, "precision holds under loss");
        }
    }

    #[test]
    fn matrix_is_shard_count_invariant_and_warm_stable() {
        let losses = [50u32];
        let budgets = [1u8];
        let mut solo = ShardWorldCache::new(sweep_config(33));
        let baseline = run_resilience_sweep(&mut solo, 1, &losses, &budgets);
        for k in [2u32, 8] {
            let mut cache = ShardWorldCache::new(sweep_config(33));
            let cold = run_resilience_sweep(&mut cache, k, &losses, &budgets);
            assert_eq!(baseline, cold, "matrix diverged at K={k}");
            let warm = run_resilience_sweep(&mut cache, k, &losses, &budgets);
            assert_eq!(cold, warm, "warm rerun diverged at K={k}");
        }
    }

    #[test]
    fn render_includes_every_grid_point() {
        let mut m = ResilienceMatrix::default();
        m.cells.insert(
            (50, 2),
            ResilienceCell {
                planted_transparent: 100,
                detected_true: 97,
                probes_sent: 1000,
                retransmits_sent: 120,
                answered: 800,
                ..ResilienceCell::default()
            },
        );
        let rendered = m.render().render();
        assert!(rendered.contains("5.0%"));
        assert!(rendered.contains("0.970"));
        assert!(rendered.contains("0.120"));
    }
}
