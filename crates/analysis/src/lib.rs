//! # analysis — post-processing and figure/table regeneration
//!
//! The paper's `dns-measurement-analysis` artifact, in Rust: ingest scan
//! transactions (from the scanner's records or straight from a pcap
//! capture), sanitize and classify them, enrich with Routeviews/MaxMind
//! style mappings, and regenerate every table and figure of the
//! evaluation:
//!
//! | Artifact | Module |
//! |---|---|
//! | Table 1 (composition) | [`report::table1`] |
//! | Table 4 ("other" share) | [`consolidation`], [`report::table4`] |
//! | Table 5 (country ranks) | [`ranking`], [`report::table5`] |
//! | Figure 3 (country CDF) | [`aggregate`], [`report::figure3`] |
//! | Figure 4 (top-50 stacked) | [`aggregate`], [`report::figure4`] |
//! | Figure 5 (project shares) | [`consolidation`], [`report::figure5`] |
//! | Figure 6 (path lengths) | [`paths`], [`dnsroute_sweep`] |
//! | Figure 8 (/24 density) | [`density`], [`report::figure8`] |
//! | Appendix E (devices/ASes) | [`devices`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod attack_sweep;
pub mod campaign_sweep;
pub mod cdf;
pub mod census;
pub mod chart;
pub mod consolidation;
pub mod density;
pub mod devices;
pub mod dnsroute_sweep;
pub mod paths;
pub mod pcap_ingest;
pub mod ranking;
pub mod report;
pub mod resilience;
pub mod sensor_sweep;
pub mod table;

pub use aggregate::{by_country, figure3_cumulative, rank_by_transparent, CountryStats};
pub use attack_sweep::{
    run_attacks_cached, run_attacks_sharded, AmpCell, AttackMatrix, SensorEfficacy,
};
pub use campaign_sweep::{
    install_sensors, run_campaign_cached, run_campaign_sharded, CampaignSweep, DetectionMatrix,
    SensorTotals, ShardCaptures, CAMPAIGN_EPOCH, SENSOR_SHARD,
};
pub use cdf::Cdf;
pub use census::{
    campaign_country_counts, run_census, run_census_cached, run_census_sharded,
    run_shadowserver_census, Census, CensusRow,
};
pub use consolidation::{
    figure5_by_country, table4_other_share, CountryConsolidation, OtherShareRow, ResolverSource,
};
pub use density::PrefixDensity;
pub use devices::{
    top_as_summary, top_ases_by_transparent, vendor_summary, TopAsSummary, VendorSummary,
};
pub use dnsroute_sweep::{run_dnsroute_cached, run_dnsroute_sharded, ShardedSweep};
pub use paths::{as_relationship_report, figure6_by_project, ProjectPaths};
pub use pcap_ingest::{
    campaign_report_from_pcap, census_from_captures, outcome_from_pcap, shard_records_from_pcap,
    streams_from_pcap, IngestError,
};
pub use ranking::{table5_ranking, RankingRow};
pub use resilience::{
    run_resilience_sweep, sweep_fault_plan, sweep_retry_policy, ResilienceCell, ResilienceMatrix,
};
pub use sensor_sweep::{run_sensors_sharded, SensorSweep};
pub use table::{pct, TextTable};
