//! The sharded attack sweep: the §6 misuse model driven over shard
//! worlds, rolled into the Table-3-style [`AttackMatrix`] of per-component
//! amplification factors.
//!
//! Built on [`inetgen::run_sharded`] like the census and campaign sweeps.
//! Per shard world:
//!
//! 1. sensors 1 and 2 are installed on their fixture nodes and a
//!    [`VictimMeter`] on the victim fixture; the attacker rides the sensor
//!    network's third node — the one SAV-free fixture replicated
//!    identically into every shard world, so the attack plan structure is
//!    partition-invariant. (The exterior-forwarder sensor therefore sits
//!    out of this experiment: its node *is* the attacker box.)
//! 2. nine reflection passes — each [`AttackVector`] through each planted
//!    [`OdnsClass`] partition of the shard — fire spoofed-source queries
//!    with the victim's address, one pass per [`ATTACK_EPOCH`] of
//!    simulated time. Every pass owns a distinct reply port, so the bytes
//!    converging on the victim attribute themselves per pass.
//! 3. the designated [`SENSOR_SHARD`] additionally floods the sensor
//!    addresses spoofing the same victim — the [`PrefixRateLimiter`]
//!    efficacy probe (the paper's sensors answer once per 5 minutes per
//!    source /24 precisely to be useless as amplifiers).
//!
//! Cells store only integer byte/packet counters and ordered source sets,
//! merged by summing and union — so the merged matrix is `Eq` and
//! bit-identical however many shards ran, and amplification *factors*
//! exist only in the renderer.
//!
//! [`PrefixRateLimiter`]: odns::PrefixRateLimiter

use crate::campaign_sweep::SENSOR_SHARD;
use crate::table::TextTable;
use inetgen::{GenConfig, Internet, PlantedClass, ShardSpec, ShardWorldCache, ShardedRun};
use netsim::SimDuration;
use scanner::attacks::{run_reflections, AttackVector, ReflectionPlan, VictimMeter, VictimTally};
use scanner::{HoneypotSensor, OdnsClass, SensorKind};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Simulated-time spacing between attack passes over the same world, same
/// rationale (and value) as the campaign sweep's epoch: state from one
/// pass never bleeds into the next one's attribution window.
pub const ATTACK_EPOCH: SimDuration = SimDuration::from_secs(400);

/// Base reply port: reflection pass `p` spoofs source port
/// `REFLECTION_BASE_PORT + p`, so the victim's per-port ledger separates
/// the passes.
pub const REFLECTION_BASE_PORT: u16 = 40_000;

/// Reply port of the sensor-flood pass.
pub const FLOOD_PORT: u16 = 40_100;

/// How many times the flood cycles the sensor address list. All cycles
/// land inside one 5-minute limiter window, so each sensor instance
/// answers exactly once per source /24 and sheds the rest.
pub const FLOOD_REPEATS: u32 = 25;

/// The matrix row/column grid: every vector through every component
/// class, in pass order (pass index = position in this list).
pub fn matrix_grid() -> Vec<(AttackVector, OdnsClass)> {
    let mut grid = Vec::with_capacity(9);
    for vector in AttackVector::all() {
        for class in OdnsClass::all() {
            grid.push((vector, class));
        }
    }
    grid
}

/// Which matrix column a planted host feeds, if any. Manipulated
/// forwarders are excluded: the strict census discards them, so the
/// matrix reports the three classes of Table 2.
pub fn matrix_class(class: PlantedClass) -> Option<OdnsClass> {
    match class {
        PlantedClass::TransparentForwarder => Some(OdnsClass::TransparentForwarder),
        PlantedClass::RecursiveForwarder => Some(OdnsClass::RecursiveForwarder),
        PlantedClass::RecursiveResolver => Some(OdnsClass::RecursiveResolver),
        PlantedClass::ManipulatedForwarder => None,
    }
}

/// One matrix cell: what a vector spent against a component class and
/// what the victim received for it. Integers and ordered sets only — the
/// amplification *factor* is derived in the renderer, keeping the cell
/// `Eq` and the shard merge exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AmpCell {
    /// Spoofed queries the attacker sent.
    pub queries: u64,
    /// Query bytes the attacker spent.
    pub bytes_sent: u64,
    /// Response datagrams that converged on the victim.
    pub responses: u64,
    /// Response bytes that converged on the victim.
    pub bytes_at_victim: u64,
    /// Distinct addresses the victim traffic arrived from — resolver
    /// addresses for transparent-forwarder passes (the diffusers stay
    /// invisible at the victim too), the components themselves otherwise.
    pub sources: std::collections::BTreeSet<Ipv4Addr>,
}

impl AmpCell {
    /// Merge another shard's cell: counters sum, sources union.
    pub fn absorb(&mut self, other: &AmpCell) {
        self.queries += other.queries;
        self.bytes_sent += other.bytes_sent;
        self.responses += other.responses;
        self.bytes_at_victim += other.bytes_at_victim;
        self.sources.extend(other.sources.iter().copied());
    }

    /// Bytes at victim per byte spent — §6's bandwidth amplification
    /// factor. Rendering only; never stored or compared.
    pub fn amplification(&self) -> f64 {
        if self.bytes_sent == 0 {
            0.0
        } else {
            self.bytes_at_victim as f64 / self.bytes_sent as f64
        }
    }
}

/// Sensor efficacy under the flood: what arrived, what the 5-minute /24
/// limiters shed, and what leaked through to the victim.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SensorEfficacy {
    /// Flood queries that reached sensors 1 and 2.
    pub queries: u64,
    /// Queries shed by the limiters.
    pub rate_limited: u64,
    /// Answers the sensors delivered (to the spoofed victim).
    pub answered: u64,
    /// Queries the flood cost the attacker.
    pub attack_queries: u64,
    /// Bytes the flood cost the attacker.
    pub attack_bytes: u64,
    /// What the victim actually received on the flood's reply port.
    pub victim: VictimTally,
}

impl SensorEfficacy {
    /// Merge another shard's contribution (zero everywhere except the
    /// designated sensor shard).
    pub fn absorb(&mut self, other: &SensorEfficacy) {
        self.queries += other.queries;
        self.rate_limited += other.rate_limited;
        self.answered += other.answered;
        self.attack_queries += other.attack_queries;
        self.attack_bytes += other.attack_bytes;
        self.victim.absorb(&other.victim);
    }

    /// Fraction of flood queries the limiters shed. Rendering only.
    pub fn shed_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.rate_limited as f64 / self.queries as f64
        }
    }
}

/// The Table-3-style result of the attack sweep: per (vector, component
/// class) amplification cells plus the sensor-efficacy row. Bit-identical
/// for any shard count over the same configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackMatrix {
    /// One cell per grid entry; `BTreeMap` so iteration, `Eq`, and the
    /// renderer are all deterministic.
    pub cells: BTreeMap<(AttackVector, OdnsClass), AmpCell>,
    /// The rate-limiter efficacy measurement.
    pub sensors: SensorEfficacy,
}

impl AttackMatrix {
    /// The cell for one vector/class pair.
    pub fn cell(&self, vector: AttackVector, class: OdnsClass) -> Option<&AmpCell> {
        self.cells.get(&(vector, class))
    }

    /// Render the amplification table plus the sensor row.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new([
            "Vector",
            "Component",
            "Queries",
            "Bytes sent",
            "Responses",
            "Bytes at victim",
            "Amp",
        ]);
        for ((vector, class), cell) in &self.cells {
            t.row([
                vector.name().to_string(),
                class.name().to_string(),
                cell.queries.to_string(),
                cell.bytes_sent.to_string(),
                cell.responses.to_string(),
                cell.bytes_at_victim.to_string(),
                format!("{:.2}", cell.amplification()),
            ]);
        }
        let s = &self.sensors;
        t.row([
            "flood".to_string(),
            "Sensors 1+2".to_string(),
            s.attack_queries.to_string(),
            s.attack_bytes.to_string(),
            s.victim.packets.to_string(),
            s.victim.bytes.to_string(),
            format!(
                "{:.2} (shed {:.0}%)",
                {
                    if s.attack_bytes == 0 {
                        0.0
                    } else {
                        s.victim.bytes as f64 / s.attack_bytes as f64
                    }
                },
                s.shed_fraction() * 100.0
            ),
        ]);
        t
    }
}

/// One shard's contribution, before the deterministic merge.
struct ShardAttackOutput {
    cells: Vec<((AttackVector, OdnsClass), AmpCell)>,
    sensors: SensorEfficacy,
}

fn shard_attack_pass(spec: ShardSpec, world: &mut Internet) -> ShardAttackOutput {
    let addrs = world.fixtures.sensor_addrs;
    let victim_ip = world.fixtures.victim_ip;
    let upstream = odns::ResolverProject::Google.service_ip();

    // Sensors 1 and 2 on their fixture nodes; the third sensor node hosts
    // the attacker instead (see the module docs).
    world.sim.install(
        world.fixtures.sensor1,
        HoneypotSensor::new(SensorKind::RecursiveResolver, upstream),
    );
    world.sim.install(
        world.fixtures.sensor2,
        HoneypotSensor::new(
            SensorKind::InteriorForwarder {
                reply_from: addrs.ip3,
            },
            upstream,
        ),
    );
    world.sim.install(world.fixtures.victim, VictimMeter::new());

    // Per-class diffuser lists from this shard's ground truth, in address
    // order so the pass structure is a pure function of the partition.
    let mut by_class: BTreeMap<OdnsClass, Vec<Ipv4Addr>> = BTreeMap::new();
    for host in &world.truth.hosts {
        if let Some(class) = matrix_class(host.class) {
            by_class.entry(class).or_default().push(host.ip);
        }
    }
    for targets in by_class.values_mut() {
        targets.sort_unstable();
    }

    let grid = matrix_grid();
    let mut plans: Vec<ReflectionPlan> = grid
        .iter()
        .enumerate()
        .map(|(p, (vector, class))| ReflectionPlan {
            start_after: ATTACK_EPOCH.saturating_mul(p as u64),
            ..ReflectionPlan::new(
                *vector,
                by_class.get(class).cloned().unwrap_or_default(),
                victim_ip,
                REFLECTION_BASE_PORT + p as u16,
            )
        })
        .collect();

    // The limiter-efficacy flood runs in exactly one shard: each shard's
    // sensor instances keep their own per-/24 limiters, so flooding them
    // everywhere would grant the victim /24 one answer budget per shard
    // and make the merged counters scale with the shard count.
    let flood = spec.index == SENSOR_SHARD;
    if flood {
        plans.push(ReflectionPlan {
            start_after: ATTACK_EPOCH.saturating_mul(grid.len() as u64),
            ..ReflectionPlan::flood(
                AttackVector::Any,
                &[addrs.ip1, addrs.ip2, addrs.ip3],
                FLOOD_REPEATS,
                victim_ip,
                FLOOD_PORT,
            )
        });
    }

    let spends = run_reflections(&mut world.sim, world.fixtures.sensor3, plans);

    let meter: &VictimMeter = world
        .sim
        .host_as(world.fixtures.victim)
        .expect("victim meter installed");
    let cells = grid
        .into_iter()
        .enumerate()
        .map(|(p, key)| {
            let tally = meter.tally(REFLECTION_BASE_PORT + p as u16);
            let cell = AmpCell {
                queries: spends[p].queries,
                bytes_sent: spends[p].bytes,
                responses: tally.packets,
                bytes_at_victim: tally.bytes,
                sources: tally.sources,
            };
            (key, cell)
        })
        .collect();

    let sensors = if flood {
        let stats = |node| {
            world
                .sim
                .host_as::<HoneypotSensor>(node)
                .expect("sensor installed")
                .stats
        };
        let s1 = stats(world.fixtures.sensor1);
        let s2 = stats(world.fixtures.sensor2);
        let spend = spends.last().expect("flood plan ran");
        SensorEfficacy {
            queries: s1.queries + s2.queries,
            rate_limited: s1.rate_limited + s2.rate_limited,
            answered: s1.answered + s2.answered,
            attack_queries: spend.queries,
            attack_bytes: spend.bytes,
            victim: meter.tally(FLOOD_PORT),
        }
    } else {
        SensorEfficacy::default()
    };

    ShardAttackOutput { cells, sensors }
}

/// Run the §6 attack experiment sharded `shards` ways and merge into the
/// [`AttackMatrix`] — invariant in the shard count.
pub fn run_attacks_sharded(gen_config: &GenConfig, shards: u32) -> AttackMatrix {
    merge_attack_outputs(inetgen::run_sharded(gen_config, shards, shard_attack_pass))
}

/// [`run_attacks_sharded`] over a warm [`ShardWorldCache`]: worlds
/// generate once and reset-reuse afterwards (the reset uninstalls the
/// attacker, meter, and sensors along with all other host state).
/// Bit-identical to [`run_attacks_sharded`] with the cache's config.
pub fn run_attacks_cached(cache: &mut ShardWorldCache, shards: u32) -> AttackMatrix {
    merge_attack_outputs(cache.run(shards, shard_attack_pass))
}

/// The deterministic merge both drivers share: cells fold per grid key in
/// ascending shard order, the sensor row sums.
fn merge_attack_outputs(run: ShardedRun<ShardAttackOutput>) -> AttackMatrix {
    let mut matrix = AttackMatrix::default();
    for output in run.outputs {
        for (key, cell) in output.cells {
            matrix.cells.entry(key).or_default().absorb(&cell);
        }
        matrix.sensors.absorb(&output.sensors);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_vector_class_pair_in_pass_order() {
        let grid = matrix_grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0], (AttackVector::Any, OdnsClass::RecursiveResolver));
        assert_eq!(
            grid[8],
            (AttackVector::EdnsAny, OdnsClass::TransparentForwarder)
        );
        let mut uniq = grid.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 9);
    }

    #[test]
    fn manipulated_forwarders_sit_out_of_the_matrix() {
        assert_eq!(matrix_class(PlantedClass::ManipulatedForwarder), None);
        assert_eq!(
            matrix_class(PlantedClass::TransparentForwarder),
            Some(OdnsClass::TransparentForwarder)
        );
    }

    #[test]
    fn cell_absorb_sums_and_unions() {
        let a_src = Ipv4Addr::new(198, 51, 100, 1);
        let b_src = Ipv4Addr::new(198, 51, 100, 2);
        let mut a = AmpCell {
            queries: 2,
            bytes_sent: 60,
            responses: 2,
            bytes_at_victim: 200,
            sources: [a_src].into_iter().collect(),
        };
        let b = AmpCell {
            queries: 1,
            bytes_sent: 30,
            responses: 1,
            bytes_at_victim: 90,
            sources: [a_src, b_src].into_iter().collect(),
        };
        a.absorb(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.bytes_sent, 90);
        assert_eq!(a.bytes_at_victim, 290);
        assert_eq!(a.sources.len(), 2, "shared reflector collapses");
        assert!((a.amplification() - 290.0 / 90.0).abs() < 1e-12);
        assert_eq!(AmpCell::default().amplification(), 0.0);
    }

    #[test]
    fn matrix_renders_cells_and_sensor_row() {
        let mut m = AttackMatrix::default();
        m.cells.insert(
            (AttackVector::Any, OdnsClass::TransparentForwarder),
            AmpCell {
                queries: 10,
                bytes_sent: 300,
                responses: 10,
                bytes_at_victim: 1200,
                sources: Default::default(),
            },
        );
        m.sensors = SensorEfficacy {
            queries: 75,
            rate_limited: 73,
            answered: 2,
            attack_queries: 75,
            attack_bytes: 2250,
            victim: VictimTally::default(),
        };
        let rendered = m.render().render();
        assert!(rendered.contains("ANY"));
        assert!(rendered.contains("4.00"), "amplification factor rendered");
        assert!(rendered.contains("shed 97%"), "limiter efficacy rendered");
        assert!((m.sensors.shed_fraction() - 73.0 / 75.0).abs() < 1e-12);
    }
}
