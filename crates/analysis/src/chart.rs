//! ASCII chart rendering: CDF staircases and stacked bars, so benches can
//! print figure-shaped output straight to the terminal.

use crate::cdf::Cdf;

/// Render a CDF as an ASCII plot of `width`×`height` characters, with one
/// labelled series.
pub fn render_cdf(label: &str, cdf: &Cdf, width: usize, height: usize) -> String {
    let mut out = format!("CDF: {label} (n={})\n", cdf.len());
    if cdf.is_empty() || width < 8 || height < 2 {
        out.push_str("(no data)\n");
        return out;
    }
    let lo = cdf.min().expect("non-empty");
    let hi = cdf.max().expect("non-empty");
    let span = (hi - lo).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (col, x) in (0..width).map(|c| (c, lo + span * c as f64 / (width - 1) as f64)) {
        let y = cdf.at(x);
        let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col] = '*';
    }
    for (i, row) in grid.iter().enumerate() {
        let y_label = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      {:<w$.1}{:>w2$.1}\n",
        lo,
        hi,
        w = width / 2,
        w2 = width - width / 2
    ));
    out
}

/// One segment of a stacked bar.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Glyph used for this segment.
    pub glyph: char,
    /// Share in [0, 1].
    pub share: f64,
}

/// Render a horizontal stacked bar of `width` characters (Figure 4/5
/// style). Shares are clamped and the last segment absorbs rounding.
pub fn render_stacked_bar(segments: &[Segment], width: usize) -> String {
    let mut out = String::with_capacity(width);
    let mut used = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        let cells = if i + 1 == segments.len() {
            width.saturating_sub(used)
        } else {
            ((seg.share.clamp(0.0, 1.0) * width as f64).round() as usize).min(width - used)
        };
        for _ in 0..cells {
            out.push(seg.glyph);
        }
        used += cells;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_contains_axis_and_points() {
        let cdf = Cdf::from_samples((1..=20).map(f64::from));
        let s = render_cdf("hops", &cdf, 40, 10);
        assert!(s.contains("CDF: hops (n=20)"));
        assert!(s.contains('*'));
        assert!(s.lines().count() >= 10);
    }

    #[test]
    fn empty_cdf_renders_placeholder() {
        let s = render_cdf("empty", &Cdf::from_samples(std::iter::empty()), 40, 10);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn stacked_bar_has_exact_width_and_order() {
        let bar = render_stacked_bar(
            &[
                Segment {
                    glyph: 'G',
                    share: 0.5,
                },
                Segment {
                    glyph: 'C',
                    share: 0.25,
                },
                Segment {
                    glyph: '.',
                    share: 0.25,
                },
            ],
            20,
        );
        assert_eq!(bar.len(), 20);
        assert_eq!(&bar[0..10], "GGGGGGGGGG");
        assert!(bar.ends_with('.'));
    }

    #[test]
    fn stacked_bar_handles_rounding() {
        let bar = render_stacked_bar(
            &[
                Segment {
                    glyph: 'a',
                    share: 1.0 / 3.0,
                },
                Segment {
                    glyph: 'b',
                    share: 2.0 / 3.0,
                },
            ],
            10,
        );
        assert_eq!(bar.len(), 10);
    }
}
