//! Empirical CDF utilities used by Figures 3, 6, and 8.

/// An empirical cumulative distribution over `f64` sample values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    /// Sorted sample values.
    values: Vec<f64>,
}

impl Cdf {
    /// Build from samples (order irrelevant; NaNs rejected).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut values: Vec<f64> = samples.into_iter().collect();
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "CDF over NaN is meaningless"
        );
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of samples ≤ `x`, in [0, 1].
    pub fn at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let count = self.values.partition_point(|v| *v <= x);
        count as f64 / self.values.len() as f64
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// `(x, F(x))` points at each distinct sample value — the staircase
    /// the paper's figures plot.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let n = self.values.len() as f64;
        let mut i = 0;
        while i < self.values.len() {
            let x = self.values[i];
            let mut j = i;
            while j < self.values.len() && self.values[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n));
            i = j;
        }
        out
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.values.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let c = Cdf::from_samples([3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(3.0), 1.0);
        assert_eq!(c.at(99.0), 1.0);
        assert_eq!(c.mean(), 2.0);
        assert_eq!(c.median(), Some(2.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
    }

    #[test]
    fn monotone_nondecreasing() {
        let c = Cdf::from_samples((0..100).map(|i| f64::from(i % 13)));
        let mut last = 0.0;
        for x in 0..15 {
            let y = c.at(f64::from(x));
            assert!(y >= last, "CDF must be monotone");
            last = y;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn points_form_staircase_ending_at_one() {
        let c = Cdf::from_samples([1.0, 1.0, 2.0, 5.0]);
        let pts = c.points();
        assert_eq!(pts, vec![(1.0, 0.5), (2.0, 0.75), (5.0, 1.0)]);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(c.quantile(0.01), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(50.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::from_samples(std::iter::empty());
        assert!(c.is_empty());
        assert_eq!(c.at(1.0), 0.0);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.median(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }
}
