//! Merging per-shard scan record streams into one census-wide outcome.
//!
//! A sharded census runs one [`crate::TransactionalScanner`] per shard,
//! each against its own simulator. Every shard numbers its probes from
//! zero, so the `(src_port, txid)` tuple is only unique *within* a shard.
//! The merge therefore correlates per shard group and then renumbers
//! probe indices onto one global, gap-free range — producing exactly the
//! `ScanOutcome` a single scanner over the union target list would have
//! produced.
//!
//! Invariants (property-tested in `tests/proptests.rs`):
//! * every probe of every shard appears exactly once in the merged
//!   transactions — nothing dropped, nothing duplicated;
//! * merged transaction count equals the sum of per-shard probe counts;
//! * the result is independent of the order shards are supplied in and
//!   of response arrival order within each shard;
//! * unmatched/late counters are the sums of the per-shard counters.

use crate::records::{ProbeRecord, ResponseRecord, ScanOutcome};
use crate::transactional::correlate_owned;
use netsim::SimDuration;

/// The raw record streams one shard's scanner produced.
#[derive(Debug, Clone, Default)]
pub struct ShardRecords {
    /// Shard index (orders shards in the merged outcome).
    pub shard: u32,
    /// The shard's outgoing probe records, in probe order.
    pub probes: Vec<ProbeRecord>,
    /// The shard's raw responses, in arrival order.
    pub responses: Vec<ResponseRecord>,
}

impl ShardRecords {
    /// Wrap raw streams (e.g. from
    /// [`crate::transactional::run_scan_raw`]).
    pub fn new(shard: u32, probes: Vec<ProbeRecord>, responses: Vec<ResponseRecord>) -> Self {
        ShardRecords {
            shard,
            probes,
            responses,
        }
    }
}

/// Correlate and merge per-shard record streams into one outcome.
///
/// This is the single offline pass of the sharded census: correlation
/// runs per shard group (the `(port, txid)` key space restarts per
/// shard), then transactions concatenate in ascending shard order with
/// probe indices rebased onto one global range. Input order of the
/// `shards` vector does not matter.
pub fn merge_shard_records(mut shards: Vec<ShardRecords>, timeout: SimDuration) -> ScanOutcome {
    shards.sort_by_key(|s| s.shard);
    // Each id must appear once: correlation groups are per shard, so two
    // entries sharing an id would split one `(port, txid)` key space and
    // quietly mis-correlate. Batched collection must concatenate a
    // shard's streams before merging.
    for pair in shards.windows(2) {
        assert!(
            pair[0].shard != pair[1].shard,
            "duplicate shard id {} in merge",
            pair[0].shard
        );
    }
    let total_probes: usize = shards.iter().map(|s| s.probes.len()).sum();
    let mut merged = ScanOutcome {
        transactions: Vec::with_capacity(total_probes),
        unmatched_responses: 0,
        late_responses: 0,
    };
    let mut base = 0usize;
    for shard in shards {
        let shard_probes = shard.probes.len();
        let outcome = correlate_owned(shard.probes, shard.responses, timeout);
        merged.unmatched_responses += outcome.unmatched_responses;
        merged.late_responses += outcome.late_responses;
        for mut t in outcome.transactions {
            t.probe.index += base;
            merged.transactions.push(t);
        }
        base += shard_probes;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{DnsName, MessageBuilder, RrType};
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn probe(shard: u32, i: usize) -> ProbeRecord {
        ProbeRecord {
            index: i,
            target: Ipv4Addr::new(11, shard as u8, (i >> 8) as u8, (i & 0xFF) as u8),
            sent_at: SimTime(i as u64),
            src_port: 33_000,
            txid: i as u16,
        }
    }

    fn response(i: usize) -> ResponseRecord {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let resp = MessageBuilder::query(i as u16, qname, RrType::A)
            .build()
            .response_skeleton();
        ResponseRecord {
            received_at: SimTime(1_000 + i as u64),
            src: Ipv4Addr::new(8, 8, 8, 8),
            dst_port: 33_000,
            payload: resp.encode().into(),
        }
    }

    fn shard(id: u32, n: usize, answered: &[usize]) -> ShardRecords {
        ShardRecords::new(
            id,
            (0..n).map(|i| probe(id, i)).collect(),
            answered.iter().map(|&i| response(i)).collect(),
        )
    }

    #[test]
    fn merge_rebases_indices_gap_free() {
        let merged = merge_shard_records(
            vec![shard(1, 3, &[0]), shard(0, 2, &[1])],
            SimDuration::from_secs(20),
        );
        assert_eq!(merged.transactions.len(), 5);
        let indices: Vec<usize> = merged.transactions.iter().map(|t| t.probe.index).collect();
        assert_eq!(
            indices,
            vec![0, 1, 2, 3, 4],
            "shard 0 first, then shard 1, gap-free"
        );
        // Shard 0 answered probe 1 (global 1); shard 1 answered probe 0
        // (global 2).
        assert!(merged.transactions[1].response.is_some());
        assert!(merged.transactions[2].response.is_some());
        assert_eq!(merged.answered_count(), 2);
    }

    #[test]
    fn merge_is_input_order_independent() {
        let a = merge_shard_records(
            vec![shard(0, 2, &[0]), shard(1, 4, &[2]), shard(2, 1, &[])],
            SimDuration::from_secs(20),
        );
        let b = merge_shard_records(
            vec![shard(2, 1, &[]), shard(0, 2, &[0]), shard(1, 4, &[2])],
            SimDuration::from_secs(20),
        );
        assert_eq!(a.transactions.len(), b.transactions.len());
        for (ta, tb) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(ta.probe.index, tb.probe.index);
            assert_eq!(ta.probe.target, tb.probe.target);
            assert_eq!(ta.response_src(), tb.response_src());
        }
    }

    #[test]
    fn colliding_tuples_across_shards_stay_separate() {
        // Same (port, txid) in both shards — each shard's response must
        // match its own probe only.
        let merged = merge_shard_records(
            vec![shard(0, 1, &[0]), shard(1, 1, &[0])],
            SimDuration::from_secs(20),
        );
        assert_eq!(merged.answered_count(), 2);
        assert_eq!(merged.unmatched_responses, 0);
    }

    #[test]
    fn counters_are_summed() {
        let mut s0 = shard(0, 1, &[0, 0]); // duplicate → 1 unmatched
        s0.responses.push(ResponseRecord {
            received_at: SimTime(5),
            src: Ipv4Addr::new(9, 9, 9, 9),
            dst_port: 40_000,
            payload: vec![0x01].into(), // garbage → unmatched
        });
        let s1 = shard(1, 1, &[0]);
        let merged = merge_shard_records(vec![s0, s1], SimDuration::from_secs(20));
        assert_eq!(merged.unmatched_responses, 2);
        assert_eq!(merged.answered_count(), 2);
    }
}
