//! Merging per-shard scan record streams into one census-wide outcome.
//!
//! A sharded census runs one [`crate::TransactionalScanner`] per shard,
//! each against its own simulator. Every shard numbers its probes from
//! zero, so the `(src_port, txid)` tuple is only unique *within* a shard.
//! The merge therefore correlates per shard group and then renumbers
//! probe indices onto one global, gap-free range — producing exactly the
//! `ScanOutcome` a single scanner over the union target list would have
//! produced.
//!
//! Invariants (property-tested in `tests/proptests.rs`):
//! * every probe of every shard appears exactly once in the merged
//!   transactions — nothing dropped, nothing duplicated;
//! * merged transaction count equals the sum of per-shard probe counts;
//! * the result is independent of the order shards are supplied in and
//!   of response arrival order within each shard;
//! * unmatched/late counters are the sums of the per-shard counters.

use crate::records::{ProbeRecord, ResponseRecord, RetryStats, ScanOutcome};
use crate::transactional::Correlator;
use netsim::SimDuration;

/// The raw record streams one shard's scanner produced.
#[derive(Debug, Clone, Default)]
pub struct ShardRecords {
    /// Shard index (orders shards in the merged outcome).
    pub shard: u32,
    /// The shard's outgoing probe records, in probe order.
    pub probes: Vec<ProbeRecord>,
    /// The shard's raw responses, in arrival order.
    pub responses: Vec<ResponseRecord>,
    /// The shard scanner's retransmission counters (zeros when the scan
    /// ran single-shot).
    pub retry: RetryStats,
}

impl ShardRecords {
    /// Wrap raw streams (e.g. from
    /// [`crate::transactional::run_scan_raw`]).
    pub fn new(shard: u32, probes: Vec<ProbeRecord>, responses: Vec<ResponseRecord>) -> Self {
        ShardRecords {
            shard,
            probes,
            responses,
            retry: RetryStats::default(),
        }
    }

    /// Attach the shard's retransmission counters.
    pub fn with_retry(mut self, retry: RetryStats) -> Self {
        self.retry = retry;
        self
    }
}

/// Correlate and merge per-shard record streams into one outcome.
///
/// This is the single offline pass of the sharded census: correlation
/// runs per shard group (the `(port, txid)` key space restarts per
/// shard), then transactions concatenate in ascending shard order with
/// probe indices rebased onto one global range. Input order of the
/// `shards` vector does not matter.
pub fn merge_shard_records(shards: Vec<ShardRecords>, timeout: SimDuration) -> ScanOutcome {
    let mut merge = StreamingMerge::new(timeout);
    for shard in shards {
        merge.push(shard);
    }
    merge.finish().0
}

/// Memory-accounting summary of a [`StreamingMerge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Shard groups merged.
    pub shards_merged: u32,
    /// Peak resident record count (held transactions plus the records of
    /// the shard being correlated) observed across all pushes.
    pub peak_resident_records: usize,
    /// Whether the peak ever crossed the advisory budget.
    pub budget_exceeded: bool,
}

/// Incremental, bounded-memory shard merge.
///
/// [`merge_shard_records`] is its batch wrapper; the streaming form lets
/// a sharded driver hand each shard's record streams over *as the shard
/// finishes*. Every [`StreamingMerge::push`] correlates that shard's
/// streams immediately — raw responses (payload-bearing, the bulk of a
/// census's memory) die inside the push, and only correlated
/// transactions stay resident. The correlation index map is reused
/// across pushes via [`Correlator`].
///
/// The memory budget is advisory: pushes never fail, but the merge
/// tracks its peak resident record count and flags
/// [`StreamingMerge::budget_exceeded`] so drivers can see when a
/// partition is too coarse for the budget they asked for.
#[derive(Debug)]
pub struct StreamingMerge {
    timeout: SimDuration,
    budget_records: Option<usize>,
    correlator: Correlator,
    parts: Vec<(u32, ScanOutcome)>,
    retry: RetryStats,
    resident: usize,
    peak: usize,
    exceeded: bool,
}

impl StreamingMerge {
    /// An empty merge correlating within `timeout`.
    pub fn new(timeout: SimDuration) -> Self {
        StreamingMerge {
            timeout,
            budget_records: None,
            correlator: Correlator::new(),
            parts: Vec::new(),
            retry: RetryStats::default(),
            resident: 0,
            peak: 0,
            exceeded: false,
        }
    }

    /// Set an advisory resident-record budget.
    pub fn with_budget(mut self, records: usize) -> Self {
        self.budget_records = Some(records);
        self.exceeded = self.peak > records;
        self
    }

    /// Correlate one shard's record streams into the merge. Panics on a
    /// duplicate shard id — two groups sharing an id would split one
    /// `(port, txid)` key space and quietly mis-correlate, so batched
    /// collection must concatenate a shard's streams before pushing.
    pub fn push(&mut self, shard: ShardRecords) {
        assert!(
            self.parts.iter().all(|(id, _)| *id != shard.shard),
            "duplicate shard id {} in merge",
            shard.shard
        );
        let incoming = shard.probes.len() + shard.responses.len();
        self.peak = self.peak.max(self.resident + incoming);
        if let Some(budget) = self.budget_records {
            self.exceeded |= self.peak > budget;
        }
        self.retry.absorb(&shard.retry);
        let outcome = self
            .correlator
            .correlate(shard.probes, shard.responses, self.timeout);
        self.resident += outcome.transactions.len();
        self.parts.push((shard.shard, outcome));
    }

    /// Whether the advisory budget was ever crossed.
    pub fn budget_exceeded(&self) -> bool {
        self.exceeded
    }

    /// Transactions currently resident (correlated, awaiting the merge).
    pub fn resident_records(&self) -> usize {
        self.resident
    }

    /// Merge the correlated shard groups: ascending shard order, probe
    /// indices rebased onto one gap-free global range — exactly the
    /// outcome one scanner over the union target list would produce.
    pub fn finish(mut self) -> (ScanOutcome, MergeStats) {
        self.parts.sort_by_key(|(shard, _)| *shard);
        let stats = MergeStats {
            shards_merged: self.parts.len() as u32,
            peak_resident_records: self.peak,
            budget_exceeded: self.exceeded,
        };
        let mut merged = ScanOutcome {
            transactions: Vec::with_capacity(self.resident),
            unmatched_responses: 0,
            late_responses: 0,
            late_answers_discarded: 0,
            retry: self.retry,
        };
        let mut base = 0usize;
        for (_, outcome) in self.parts {
            let shard_probes = outcome.transactions.len();
            merged.unmatched_responses += outcome.unmatched_responses;
            merged.late_responses += outcome.late_responses;
            merged.late_answers_discarded += outcome.late_answers_discarded;
            for mut t in outcome.transactions {
                t.probe.index += base;
                merged.transactions.push(t);
            }
            base += shard_probes;
        }
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{DnsName, MessageBuilder, RrType};
    use netsim::SimTime;
    use std::net::Ipv4Addr;

    fn probe(shard: u32, i: usize) -> ProbeRecord {
        ProbeRecord {
            index: i,
            target: Ipv4Addr::new(11, shard as u8, (i >> 8) as u8, (i & 0xFF) as u8),
            sent_at: SimTime(i as u64),
            src_port: 33_000,
            txid: i as u16,
        }
    }

    fn response(i: usize) -> ResponseRecord {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let resp = MessageBuilder::query(i as u16, qname, RrType::A)
            .build()
            .response_skeleton();
        ResponseRecord {
            received_at: SimTime(1_000 + i as u64),
            src: Ipv4Addr::new(8, 8, 8, 8),
            dst_port: 33_000,
            payload: resp.encode().into(),
        }
    }

    fn shard(id: u32, n: usize, answered: &[usize]) -> ShardRecords {
        ShardRecords::new(
            id,
            (0..n).map(|i| probe(id, i)).collect(),
            answered.iter().map(|&i| response(i)).collect(),
        )
    }

    #[test]
    fn merge_rebases_indices_gap_free() {
        let merged = merge_shard_records(
            vec![shard(1, 3, &[0]), shard(0, 2, &[1])],
            SimDuration::from_secs(20),
        );
        assert_eq!(merged.transactions.len(), 5);
        let indices: Vec<usize> = merged.transactions.iter().map(|t| t.probe.index).collect();
        assert_eq!(
            indices,
            vec![0, 1, 2, 3, 4],
            "shard 0 first, then shard 1, gap-free"
        );
        // Shard 0 answered probe 1 (global 1); shard 1 answered probe 0
        // (global 2).
        assert!(merged.transactions[1].response.is_some());
        assert!(merged.transactions[2].response.is_some());
        assert_eq!(merged.answered_count(), 2);
    }

    #[test]
    fn merge_is_input_order_independent() {
        let a = merge_shard_records(
            vec![shard(0, 2, &[0]), shard(1, 4, &[2]), shard(2, 1, &[])],
            SimDuration::from_secs(20),
        );
        let b = merge_shard_records(
            vec![shard(2, 1, &[]), shard(0, 2, &[0]), shard(1, 4, &[2])],
            SimDuration::from_secs(20),
        );
        assert_eq!(a.transactions.len(), b.transactions.len());
        for (ta, tb) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(ta.probe.index, tb.probe.index);
            assert_eq!(ta.probe.target, tb.probe.target);
            assert_eq!(ta.response_src(), tb.response_src());
        }
    }

    #[test]
    fn colliding_tuples_across_shards_stay_separate() {
        // Same (port, txid) in both shards — each shard's response must
        // match its own probe only.
        let merged = merge_shard_records(
            vec![shard(0, 1, &[0]), shard(1, 1, &[0])],
            SimDuration::from_secs(20),
        );
        assert_eq!(merged.answered_count(), 2);
        assert_eq!(merged.unmatched_responses, 0);
    }

    #[test]
    fn streaming_merge_matches_batch_merge() {
        let shards = vec![shard(0, 3, &[1]), shard(1, 2, &[0]), shard(2, 4, &[2, 3])];
        let batch = merge_shard_records(shards.clone(), SimDuration::from_secs(20));
        let mut merge = StreamingMerge::new(SimDuration::from_secs(20));
        // Arrival order must not matter.
        for s in shards.into_iter().rev() {
            merge.push(s);
        }
        let (streamed, stats) = merge.finish();
        assert_eq!(batch.transactions.len(), streamed.transactions.len());
        for (a, b) in batch.transactions.iter().zip(&streamed.transactions) {
            assert_eq!(a.probe.index, b.probe.index);
            assert_eq!(a.probe.target, b.probe.target);
            assert_eq!(a.response_src(), b.response_src());
        }
        assert_eq!(batch.unmatched_responses, streamed.unmatched_responses);
        assert_eq!(stats.shards_merged, 3);
        assert!(!stats.budget_exceeded, "no budget set");
    }

    #[test]
    fn streaming_merge_tracks_peak_and_budget() {
        let mut merge = StreamingMerge::new(SimDuration::from_secs(20)).with_budget(4);
        merge.push(shard(0, 3, &[0, 1])); // peak 5: 3 probes + 2 responses
        assert!(merge.budget_exceeded());
        assert_eq!(merge.resident_records(), 3, "responses died in the push");
        merge.push(shard(1, 1, &[]));
        let (outcome, stats) = merge.finish();
        assert_eq!(outcome.transactions.len(), 4);
        assert_eq!(stats.peak_resident_records, 5);
        assert!(stats.budget_exceeded);
    }

    #[test]
    #[should_panic(expected = "duplicate shard id 7")]
    fn streaming_merge_rejects_duplicate_shards() {
        let mut merge = StreamingMerge::new(SimDuration::from_secs(20));
        merge.push(shard(7, 1, &[]));
        merge.push(shard(7, 1, &[]));
    }

    #[test]
    fn counters_are_summed() {
        let mut s0 = shard(0, 1, &[0, 0]); // duplicate → 1 discarded
        s0.responses.push(ResponseRecord {
            received_at: SimTime(5),
            src: Ipv4Addr::new(9, 9, 9, 9),
            dst_port: 40_000,
            payload: vec![0x01].into(), // garbage → unmatched
        });
        let s1 = shard(1, 1, &[0]);
        let merged = merge_shard_records(vec![s0, s1], SimDuration::from_secs(20));
        assert_eq!(merged.unmatched_responses, 1);
        assert_eq!(merged.late_answers_discarded, 1);
        assert_eq!(merged.answered_count(), 2);
    }

    #[test]
    fn retry_stats_are_absorbed_across_shards() {
        let mut r0 = RetryStats {
            retransmits_sent: 4,
            ..RetryStats::default()
        };
        r0.record_answered(2);
        let mut r1 = RetryStats {
            retransmits_sent: 1,
            ..RetryStats::default()
        };
        r1.record_answered(1);
        let merged = merge_shard_records(
            vec![
                shard(0, 1, &[0]).with_retry(r0),
                shard(1, 1, &[0]).with_retry(r1),
            ],
            SimDuration::from_secs(20),
        );
        assert_eq!(merged.retry.retransmits_sent, 5);
        assert_eq!(merged.retry.answered_on_attempt[0], 1);
        assert_eq!(merged.retry.answered_on_attempt[1], 1);
    }
}
