//! The three ODNS honeypot sensors of the §3.1 controlled experiment.
//!
//! * **Sensor 1** behaves like a public recursive resolver: it receives at
//!   `IP1` and answers from `IP1` (baseline — every viable campaign finds
//!   it).
//! * **Sensor 2** — *interior* transparent forwarder: receives at `IP2`,
//!   answers from `IP3` in the same /24. It mimics the key observable of a
//!   transparent forwarder (answer source ≠ probed address) without
//!   needing a SAV-free network, and guarantees the scanner actually
//!   receives a reply.
//! * **Sensor 3** — *exterior* transparent forwarder: relays the query to
//!   a public resolver with the scanner's spoofed source; the sensor never
//!   sees the answer.
//!
//! All sensors resolve through a public resolver (the paper uses Google)
//! and rate-limit to one answer per 5 minutes per source /24 to be useless
//! as amplifiers.

use dnswire::Message;
use netsim::{Ctx, Datagram, Host, UdpSend};
use odns::{PrefixRateLimiter, TransparentForwarderStats};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Which of the three §3.1 sensor behaviours to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// Sensor 1: answers from the address it was probed at.
    RecursiveResolver,
    /// Sensor 2: answers from `reply_from` (a second owned address in the
    /// same /24).
    InteriorForwarder {
        /// The sending address `IP3`.
        reply_from: Ipv4Addr,
    },
    /// Sensor 3: spoofed relay to the upstream resolver.
    ExteriorForwarder,
}

/// Counters kept by a sensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorStats {
    /// Queries that arrived.
    pub queries: u64,
    /// Queries shed by the 5-minute /24 limiter.
    pub rate_limited: u64,
    /// Queries relayed upstream (all kinds).
    pub upstream: u64,
    /// Answers delivered back by this sensor (kinds 1 and 2).
    pub answered: u64,
}

impl SensorStats {
    /// Sum another sensor instance's counters into this one — the shard
    /// merge of a sharded sensor experiment. Summing is only
    /// partition-invariant when each source /24's probes land in exactly
    /// one shard's sensor instance (every instance keeps its own
    /// [`PrefixRateLimiter`], so a split /24 would double its answer
    /// budget); the sharded drivers guarantee that by probing the sensors
    /// from a single designated shard.
    pub fn absorb(&mut self, other: SensorStats) {
        self.queries += other.queries;
        self.rate_limited += other.rate_limited;
        self.upstream += other.upstream;
        self.answered += other.answered;
    }
}

#[derive(Debug)]
struct PendingUpstream {
    client: Ipv4Addr,
    client_port: u16,
    client_txid: u16,
    probed_at: Ipv4Addr,
}

/// A honeypot sensor host.
#[derive(Debug)]
pub struct HoneypotSensor {
    kind: SensorKind,
    upstream: Ipv4Addr,
    limiter: PrefixRateLimiter,
    pending: HashMap<(u16, u16), PendingUpstream>,
    next_port: u16,
    /// Counters.
    pub stats: SensorStats,
    /// Pass-through stats when acting as an exterior forwarder.
    pub relay_stats: TransparentForwarderStats,
}

impl HoneypotSensor {
    /// Build a sensor of `kind` resolving via `upstream` (e.g. 8.8.8.8).
    pub fn new(kind: SensorKind, upstream: Ipv4Addr) -> Self {
        HoneypotSensor {
            kind,
            upstream,
            limiter: PrefixRateLimiter::sensor_default(),
            pending: HashMap::new(),
            next_port: 3000,
            stats: SensorStats::default(),
            relay_stats: TransparentForwarderStats::default(),
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 64000 {
            3000
        } else {
            self.next_port + 1
        };
        p
    }
}

impl Host for HoneypotSensor {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port != dnswire::DNS_PORT {
            // Upstream response for sensors 1/2?
            if let Ok(msg) = Message::decode(&dgram.payload) {
                if msg.is_response() {
                    if let Some(p) = self.pending.remove(&(dgram.dst_port, msg.header.id)) {
                        let mut relayed = msg;
                        relayed.header.id = p.client_txid;
                        let reply_src = match self.kind {
                            SensorKind::InteriorForwarder { reply_from } => reply_from,
                            _ => p.probed_at,
                        };
                        self.stats.answered += 1;
                        ctx.send_udp(UdpSend {
                            src: Some(reply_src),
                            src_port: dnswire::DNS_PORT,
                            dst: p.client,
                            dst_port: p.client_port,
                            ttl: None,
                            payload: relayed.encode().into(),
                        });
                        return;
                    }
                }
            }
            ctx.send_port_unreachable(&dgram);
            return;
        }

        let Ok(query) = Message::decode(&dgram.payload) else {
            return;
        };
        if query.is_response() || query.question().is_none() {
            return;
        }
        self.stats.queries += 1;

        // The paper's anti-amplification policy: 1 answer / 5 min / /24.
        if !self.limiter.allow(dgram.src, ctx.now()) {
            self.stats.rate_limited += 1;
            return;
        }

        match self.kind {
            SensorKind::ExteriorForwarder => {
                // Spoofed relay, exactly like a real transparent forwarder.
                if dgram.ttl <= 1 {
                    self.relay_stats.ttl_exceeded += 1;
                    ctx.send_time_exceeded(&dgram);
                    return;
                }
                self.relay_stats.relayed += 1;
                self.stats.upstream += 1;
                ctx.send_udp(UdpSend {
                    src: Some(dgram.src),
                    src_port: dgram.src_port,
                    dst: self.upstream,
                    dst_port: dnswire::DNS_PORT,
                    ttl: Some(dgram.ttl - 1),
                    payload: dgram.payload.clone(),
                });
            }
            SensorKind::RecursiveResolver | SensorKind::InteriorForwarder { .. } => {
                // Resolve via upstream from our own address, then answer
                // the client from IP1 (sensor 1) or IP3 (sensor 2).
                let port = self.alloc_port();
                let txid = query.header.id;
                self.pending.insert(
                    (port, txid),
                    PendingUpstream {
                        client: dgram.src,
                        client_port: dgram.src_port,
                        client_txid: query.header.id,
                        probed_at: dgram.dst,
                    },
                );
                self.stats.upstream += 1;
                ctx.send_udp(UdpSend {
                    src: None,
                    src_port: port,
                    dst: self.upstream,
                    dst_port: dnswire::DNS_PORT,
                    ttl: None,
                    payload: dgram.payload.clone(),
                });
            }
        }
    }

    netsim::impl_host_downcast!();
}

/// The sensor deployment of the controlled experiment: node handles plus
/// the four observable addresses of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct SensorAddresses {
    /// Sensor 1's address.
    pub ip1: Ipv4Addr,
    /// Sensor 2's receiving address.
    pub ip2: Ipv4Addr,
    /// Sensor 2's sending address (same /24 as `ip2`).
    pub ip3: Ipv4Addr,
    /// Sensor 3's address.
    pub ip4: Ipv4Addr,
}

impl SensorAddresses {
    /// The default lab addressing: all sensors in `203.0.113.0/24`.
    pub fn lab_default() -> Self {
        SensorAddresses {
            ip1: Ipv4Addr::new(203, 0, 113, 11),
            ip2: Ipv4Addr::new(203, 0, 113, 22),
            ip3: Ipv4Addr::new(203, 0, 113, 23),
            ip4: Ipv4Addr::new(203, 0, 113, 44),
        }
    }
}

/// Self-test helper mirroring the paper's "we confirm the correct
/// operation of all sensors by sending DNS queries and analyzing replies
/// at the scanner": returns true when a response for `probed` came back
/// from `expected_src`.
pub fn sensor_reply_matches(
    responses: &[(netsim::SimTime, Datagram)],
    expected_src: Ipv4Addr,
) -> bool {
    responses.iter().any(|(_, d)| d.src == expected_src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{MessageBuilder, RrType};
    use netsim::testkit::{install_script, playground, ScriptedClient};
    use netsim::{SimConfig, SimDuration, Simulator};
    use odns::study;

    const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const UPSTREAM: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    struct Canned;
    impl Host for Canned {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            let q = Message::decode(&dgram.payload).unwrap();
            let resp = MessageBuilder::response_to(&q)
                .recursion_available(true)
                .answer_a(q.questions[0].qname.clone(), 300, dgram.src)
                .answer_a(q.questions[0].qname.clone(), 300, study::CONTROL_A)
                .build();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: 53,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
        }
        netsim::impl_host_downcast!();
    }

    fn query(txid: u16, dst: Ipv4Addr) -> UdpSend {
        let q = MessageBuilder::query(txid, study::study_qname(), RrType::A)
            .recursion_desired(true)
            .build();
        UdpSend::new(34_000 + txid, dst, 53, q.encode())
    }

    #[test]
    fn sensor1_answers_from_probed_address() {
        let addrs = SensorAddresses::lab_default();
        let (topo, nodes) = playground(&[SCANNER, addrs.ip1, UPSTREAM]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            nodes[1],
            HoneypotSensor::new(SensorKind::RecursiveResolver, UPSTREAM),
        );
        sim.install(nodes[2], Canned);
        install_script(
            &mut sim,
            nodes[0],
            vec![(SimDuration::ZERO, query(1, addrs.ip1))],
        );
        sim.run();
        let sc: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
        assert_eq!(sc.datagrams.len(), 1);
        assert_eq!(
            sc.datagrams[0].1.src, addrs.ip1,
            "Sensor 1 answers from IP1"
        );
        assert!(sensor_reply_matches(&sc.datagrams, addrs.ip1));
    }

    #[test]
    fn sensor2_answers_from_second_address() {
        let addrs = SensorAddresses::lab_default();
        // IP2 and IP3 belong to the same host (extra_ips).
        let mut b = netsim::TopologyBuilder::new();
        let a = b.add_as(netsim::AsSpec {
            asn: 64512,
            country: netsim::CountryCode::new("ZZZ"),
            kind: netsim::AsKind::Unclassified,
            sav_outbound: true, // interior sensor needs no spoofing!
            transit_routers: vec![Ipv4Addr::new(10, 255, 0, 1)],
        });
        let scanner = b.add_host(a, netsim::HostSpec::simple(SCANNER));
        let sensor = b.add_host(
            a,
            netsim::HostSpec {
                ip: addrs.ip2,
                extra_ips: vec![addrs.ip3],
                access_routers: vec![],
                link_latency: SimDuration::from_millis(1),
            },
        );
        let upstream = b.add_host(a, netsim::HostSpec::simple(UPSTREAM));
        let mut sim = Simulator::new(b.build().unwrap(), SimConfig::default());
        sim.install(
            sensor,
            HoneypotSensor::new(
                SensorKind::InteriorForwarder {
                    reply_from: addrs.ip3,
                },
                UPSTREAM,
            ),
        );
        sim.install(upstream, Canned);
        install_script(
            &mut sim,
            scanner,
            vec![(SimDuration::ZERO, query(2, addrs.ip2))],
        );
        sim.run();
        let sc: &ScriptedClient = sim.host_as(scanner).unwrap();
        assert_eq!(sc.datagrams.len(), 1);
        assert_eq!(
            sc.datagrams[0].1.src, addrs.ip3,
            "Sensor 2 replies from IP3"
        );
        assert_eq!(
            sim.stats().spoofed_sent,
            0,
            "no spoofing needed — easy deployment"
        );
    }

    #[test]
    fn sensor3_relays_spoofed_and_stays_silent() {
        let addrs = SensorAddresses::lab_default();
        let (topo, nodes) = playground(&[SCANNER, addrs.ip4, UPSTREAM]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            nodes[1],
            HoneypotSensor::new(SensorKind::ExteriorForwarder, UPSTREAM),
        );
        sim.install(nodes[2], Canned);
        install_script(
            &mut sim,
            nodes[0],
            vec![(SimDuration::ZERO, query(3, addrs.ip4))],
        );
        sim.run();
        let sc: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
        assert_eq!(sc.datagrams.len(), 1);
        assert_eq!(
            sc.datagrams[0].1.src, UPSTREAM,
            "answer comes from the public resolver"
        );
        assert_eq!(sim.stats().spoofed_sent, 1);
        let s: &HoneypotSensor = sim.host_as(nodes[1]).unwrap();
        assert_eq!(s.relay_stats.relayed, 1);
    }

    #[test]
    fn rate_limiter_allows_one_per_5min_per_prefix() {
        let addrs = SensorAddresses::lab_default();
        let (topo, nodes) = playground(&[SCANNER, addrs.ip1, UPSTREAM]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            nodes[1],
            HoneypotSensor::new(SensorKind::RecursiveResolver, UPSTREAM),
        );
        sim.install(nodes[2], Canned);
        install_script(
            &mut sim,
            nodes[0],
            vec![
                (SimDuration::ZERO, query(1, addrs.ip1)),
                (SimDuration::from_secs(10), query(2, addrs.ip1)), // shed
                (SimDuration::from_secs(301), query(3, addrs.ip1)), // served
            ],
        );
        sim.run();
        let sc: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
        assert_eq!(sc.datagrams.len(), 2);
        let s: &HoneypotSensor = sim.host_as(nodes[1]).unwrap();
        assert_eq!(s.stats.rate_limited, 1);
        assert_eq!(s.stats.queries, 3);
    }
}
