//! Emulations of the popular scanning campaigns: Shadowserver, Censys,
//! Shodan.
//!
//! The §3 controlled experiment reverse-engineers three observable
//! behaviours, which are all this module models:
//!
//! * **Shadowserver** evaluates responses *independently of requests* (a
//!   stateless, response-based pipeline): whatever address answers with a
//!   plausible DNS response is reported as an ODNS component. It therefore
//!   reports Sensor 2's replying address `IP3` — and aggregates all
//!   responses from one resolver into a single entry, hiding every
//!   transparent forwarder behind it (Table 3, Table 5).
//! * **Censys** and **Shodan** use connected-socket semantics: a response
//!   is only accepted if its source matches the probed target (their
//!   "sanitizing step"), so mismatched responses are dropped entirely —
//!   they miss both `IP3` and all transparent forwarders.
//!
//! All three emulations probe with real DNS queries through the simulator;
//! only the *processing* differs.

use dnswire::{Message, MessageBuilder, RrType};
use netsim::{Ctx, Datagram, Host, NodeId, RetryPolicy, SimDuration, Simulator, UdpSend};
use odns::study;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// The three campaigns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Campaign {
    /// The Shadowserver Foundation's open-resolver scan.
    Shadowserver,
    /// Censys.
    Censys,
    /// Shodan.
    Shodan,
}

impl Campaign {
    /// All campaigns in the paper's order.
    pub fn all() -> [Campaign; 3] {
        [Campaign::Shadowserver, Campaign::Censys, Campaign::Shodan]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Campaign::Shadowserver => "Shadowserver",
            Campaign::Censys => "Censys",
            Campaign::Shodan => "Shodan",
        }
    }

    /// Whether this campaign sanitizes source-mismatched responses
    /// (connected-socket semantics).
    pub fn sanitizes_source(self) -> bool {
        match self {
            Campaign::Shadowserver => false,
            Campaign::Censys | Campaign::Shodan => true,
        }
    }
}

impl std::fmt::Display for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Campaign scan configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Which campaign's processing to apply.
    pub campaign: Campaign,
    /// Targets to probe.
    pub targets: Vec<Ipv4Addr>,
    /// Probe pacing.
    pub inter_probe_gap: SimDuration,
    /// Base source port.
    pub base_port: u16,
    /// Retransmission policy (default: single-shot, matching the real
    /// campaigns' observable behavior).
    pub retry: RetryPolicy,
}

impl CampaignConfig {
    /// Config with defaults.
    pub fn new(campaign: Campaign, targets: Vec<Ipv4Addr>) -> Self {
        CampaignConfig {
            campaign,
            targets,
            inter_probe_gap: SimDuration::from_micros(50),
            base_port: 41_000,
            retry: RetryPolicy::none(),
        }
    }

    /// Enable retransmissions (validated loudly).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry.assert_valid();
        self.retry = retry;
        self
    }
}

/// What a campaign publishes after its pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Addresses reported as ODNS components. A `BTreeSet` because real
    /// campaign feeds aggregate by responder — this single line is why
    /// transparent forwarders vanish from them.
    pub odns: BTreeSet<Ipv4Addr>,
    /// Responses dropped by the source-sanitizing step (Censys/Shodan).
    pub sanitized_out: u64,
    /// Responses that did not parse or carried no A record.
    pub invalid: u64,
    /// Retransmissions sent (zero unless the pass ran with a
    /// [`RetryPolicy`]).
    pub retransmits_sent: u64,
}

impl CampaignReport {
    /// Merge another pass of the *same* campaign into this report: the
    /// ODNS sets union (real feeds aggregate by responder globally, so a
    /// resolver answering for targets in two shards is still one entry)
    /// and the drop counters sum. This is the shard-merge of the sharded
    /// campaign sweep; it is associative and input-order independent.
    pub fn absorb(&mut self, other: &CampaignReport) {
        self.odns.extend(other.odns.iter().copied());
        self.sanitized_out += other.sanitized_out;
        self.invalid += other.invalid;
        self.retransmits_sent += other.retransmits_sent;
    }
}

/// A campaign scanner host.
#[derive(Debug)]
pub struct CampaignScanner {
    config: CampaignConfig,
    cursor: usize,
    /// `(port, txid)` → probed target, for the connected-socket check.
    sent: HashMap<(u16, u16), Ipv4Addr>,
    /// Per-probe "response seen" flags (retry bookkeeping only — a
    /// response stops retransmission regardless of how the campaign's
    /// pipeline judges it). Empty when retries are disabled.
    answered: Vec<bool>,
    /// Per-probe transmission counts. Empty when retries are disabled.
    attempts_sent: Vec<u8>,
    /// The report being accumulated.
    pub report: CampaignReport,
}

const PACE_TOKEN: u64 = u64::MAX;
/// Retry-check tokens: `RETRY_BASE | probe_index` (pacing is matched
/// first, so `PACE_TOKEN`'s set top bit never collides).
const RETRY_BASE: u64 = 1 << 63;
/// Probes paced per batched timer event (campaigns have no per-run burst
/// knob; the census scanner's `ScanConfig::burst` default matches).
const PROBE_BURST: u32 = 16;

impl CampaignScanner {
    /// Build from config.
    pub fn new(config: CampaignConfig) -> Self {
        config.retry.assert_valid();
        let (answered, attempts_sent) = if config.retry.enabled() {
            (
                vec![false; config.targets.len()],
                vec![0u8; config.targets.len()],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        CampaignScanner {
            config,
            cursor: 0,
            sent: HashMap::new(),
            answered,
            attempts_sent,
            report: CampaignReport::default(),
        }
    }

    fn probe_tuple(&self, index: usize) -> (u16, u16) {
        (
            (self.config.base_port as usize + (index >> 16)) as u16,
            (index & 0xFFFF) as u16,
        )
    }

    /// The campaign's wire query for probe `index` — rebuilt for every
    /// transmission, byte-identical across attempts.
    fn probe_query(txid: u16) -> netsim::Payload {
        MessageBuilder::query(txid, study::study_qname(), RrType::A)
            .recursion_desired(true)
            .build()
            .encode()
            .into()
    }

    /// Inverse of [`CampaignScanner::probe_tuple`]: mark the probe a
    /// response maps to as answered, halting its retransmissions.
    fn note_answer(&mut self, dst_port: u16, payload: &netsim::Payload) {
        let Some(txid) = dnswire::peek_id(payload) else {
            return;
        };
        let index =
            (usize::from(dst_port.wrapping_sub(self.config.base_port)) << 16) | usize::from(txid);
        if index < self.answered.len()
            && self.attempts_sent[index] > 0
            && self.probe_tuple(index) == (dst_port, txid)
        {
            self.answered[index] = true;
        }
    }

    /// Retry-check for probe `index`: retransmit if still unanswered and
    /// attempts remain, then arm the next check with backoff.
    fn on_retry_check(&mut self, ctx: &mut Ctx<'_>, index: usize) {
        let Some(&sent) = self.attempts_sent.get(index) else {
            return;
        };
        if sent == 0 || self.answered[index] || sent >= self.config.retry.max_attempts {
            return;
        }
        let target = self.config.targets[index];
        let (port, txid) = self.probe_tuple(index);
        ctx.send_udp_attempt(
            UdpSend::new(port, target, dnswire::DNS_PORT, Self::probe_query(txid)),
            sent,
        );
        let now_sent = sent + 1;
        self.attempts_sent[index] = now_sent;
        self.report.retransmits_sent += 1;
        if now_sent < self.config.retry.max_attempts {
            let delay = self.config.retry.rto_after(now_sent - 1)
                + self.config.retry.jitter_for(index as u64, now_sent);
            ctx.set_timer(delay, RETRY_BASE | index as u64);
        }
    }
}

impl Host for CampaignScanner {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
        if self.config.retry.enabled() {
            self.note_answer(dgram.dst_port, &dgram.payload);
        }
        let Ok(msg) = Message::decode(&dgram.payload) else {
            self.report.invalid += 1;
            return;
        };
        if !msg.is_response() || msg.answer_a_addrs().is_empty() {
            // Campaigns require at least one plausible A record.
            self.report.invalid += 1;
            return;
        }
        if self.config.campaign.sanitizes_source() {
            // Connected-socket semantics: find the probe this response
            // claims to belong to and require the source to match it.
            let key = (dgram.dst_port, msg.header.id);
            match self.sent.get(&key) {
                Some(&target) if target == dgram.src => {
                    self.report.odns.insert(dgram.src);
                }
                _ => {
                    self.report.sanitized_out += 1;
                }
            }
        } else {
            // Shadowserver: whoever answers is an ODNS component.
            self.report.odns.insert(dgram.src);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == PACE_TOKEN {
            if self.cursor < self.config.targets.len() {
                let i = self.cursor;
                self.cursor += 1;
                let target = self.config.targets[i];
                let (port, txid) = self.probe_tuple(i);
                self.sent.insert((port, txid), target);
                ctx.send_udp(UdpSend::new(
                    port,
                    target,
                    dnswire::DNS_PORT,
                    Self::probe_query(txid),
                ));
                if self.config.retry.enabled() {
                    self.attempts_sent[i] = 1;
                    if self.config.retry.jitter != SimDuration::ZERO {
                        let delay = self.config.retry.rto_after(0)
                            + self.config.retry.jitter_for(i as u64, 1);
                        ctx.set_timer(delay, RETRY_BASE | i as u64);
                    }
                }
                // One batched pacing event per burst of probes; send times
                // are unchanged (`index · gap` past the campaign start).
                let burst = PROBE_BURST as usize;
                let remaining = self.config.targets.len() - self.cursor;
                let gap = self.config.inter_probe_gap;
                if remaining > 0 && i.is_multiple_of(burst) {
                    ctx.set_timer_batch(gap, gap, remaining.min(burst) as u32, PACE_TOKEN, 0);
                }
                // Jitter-free retry checks ride the same batching as the
                // census scanner's: the burst leader arms one batch
                // covering itself and its burst.
                if self.config.retry.enabled()
                    && self.config.retry.jitter == SimDuration::ZERO
                    && i.is_multiple_of(burst)
                {
                    let count = 1 + remaining.min(burst);
                    ctx.set_timer_batch(
                        self.config.retry.rto_after(0),
                        gap,
                        count as u32,
                        RETRY_BASE | i as u64,
                        1,
                    );
                }
            }
            return;
        }
        if token & RETRY_BASE != 0 {
            self.on_retry_check(ctx, (token ^ RETRY_BASE) as usize);
        }
    }

    netsim::impl_host_downcast!();
}

/// Install and run a campaign pass, returning its report.
pub fn run_campaign(sim: &mut Simulator, node: NodeId, config: CampaignConfig) -> CampaignReport {
    run_campaign_delayed(sim, node, config, SimDuration::ZERO)
}

/// Like [`run_campaign`], but the first probe goes out `start_after` of
/// simulated time from now. Experiment drivers that run several campaigns
/// over the same world (the paper runs them over separate weeks) use this
/// to space the passes beyond the sensors' 5-minute rate-limit window, so
/// one campaign's probes never eat the next one's answer budget.
pub fn run_campaign_delayed(
    sim: &mut Simulator,
    node: NodeId,
    config: CampaignConfig,
    start_after: SimDuration,
) -> CampaignReport {
    sim.install(node, CampaignScanner::new(config));
    sim.schedule_timer(node, start_after, PACE_TOKEN);
    sim.run();
    sim.host_as::<CampaignScanner>(node)
        .expect("campaign installed")
        .report
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::playground;
    use netsim::SimConfig;
    use odns::{RecursiveForwarder, TransparentForwarder};

    const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const TRANSP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const RECFWD: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    /// Canned resolver answering from its own address.
    struct Canned;
    impl Host for Canned {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            let q = Message::decode(&dgram.payload).unwrap();
            let resp = MessageBuilder::response_to(&q)
                .recursion_available(true)
                .answer_a(q.questions[0].qname.clone(), 300, dgram.dst)
                .answer_a(q.questions[0].qname.clone(), 300, study::CONTROL_A)
                .build();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: 53,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
        }
        netsim::impl_host_downcast!();
    }

    fn scenario(campaign: Campaign) -> CampaignReport {
        let (topo, nodes) = playground(&[SCANNER, TRANSP, RECFWD, RESOLVER]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(nodes[1], TransparentForwarder::new(RESOLVER));
        sim.install(nodes[2], RecursiveForwarder::new(RESOLVER));
        sim.install(nodes[3], Canned);
        run_campaign(
            &mut sim,
            nodes[0],
            CampaignConfig::new(campaign, vec![TRANSP, RECFWD, RESOLVER]),
        )
    }

    #[test]
    fn shadowserver_reports_responders_missing_transparent_forwarders() {
        let report = scenario(Campaign::Shadowserver);
        // The transparent forwarder's response arrives from RESOLVER, so
        // Shadowserver reports {RECFWD, RESOLVER} — TRANSP is invisible
        // and RESOLVER's two responses collapse into one entry.
        assert!(report.odns.contains(&RECFWD));
        assert!(report.odns.contains(&RESOLVER));
        assert!(
            !report.odns.contains(&TRANSP),
            "transparent forwarder must be missed"
        );
        assert_eq!(report.odns.len(), 2);
    }

    #[test]
    fn censys_and_shodan_sanitize_mismatched_sources() {
        for campaign in [Campaign::Censys, Campaign::Shodan] {
            let report = scenario(campaign);
            assert!(report.odns.contains(&RECFWD));
            assert!(report.odns.contains(&RESOLVER));
            assert!(!report.odns.contains(&TRANSP));
            assert_eq!(
                report.sanitized_out, 1,
                "{campaign}: the relayed answer is dropped"
            );
        }
    }

    #[test]
    fn delayed_campaign_same_report_later_clock() {
        let (topo, nodes) = playground(&[SCANNER, TRANSP, RECFWD, RESOLVER]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(nodes[1], TransparentForwarder::new(RESOLVER));
        sim.install(nodes[2], RecursiveForwarder::new(RESOLVER));
        sim.install(nodes[3], Canned);
        let report = run_campaign_delayed(
            &mut sim,
            nodes[0],
            CampaignConfig::new(Campaign::Shadowserver, vec![TRANSP, RECFWD, RESOLVER]),
            SimDuration::from_secs(400),
        );
        assert_eq!(report, scenario(Campaign::Shadowserver));
        assert!(sim.now() >= netsim::SimTime::ZERO + SimDuration::from_secs(400));
    }

    #[test]
    fn absorb_unions_odns_and_sums_counters() {
        let mut a = CampaignReport {
            odns: [RESOLVER, RECFWD].into_iter().collect(),
            sanitized_out: 2,
            invalid: 1,
            retransmits_sent: 4,
        };
        let b = CampaignReport {
            odns: [RESOLVER, TRANSP].into_iter().collect(),
            sanitized_out: 3,
            invalid: 0,
            retransmits_sent: 1,
        };
        let mut ab = a.clone();
        ab.absorb(&b);
        assert_eq!(ab.odns.len(), 3, "shared responder collapses to one");
        assert_eq!((ab.sanitized_out, ab.invalid), (5, 1));
        assert_eq!(ab.retransmits_sent, 5);
        // Order independence.
        let mut ba = b.clone();
        ba.absorb(&a);
        a.absorb(&b);
        assert_eq!(ba, a);
    }

    #[test]
    fn retries_recover_lossy_campaign_responders() {
        let run = |retry: RetryPolicy, seed: u64| {
            let mut ips = vec![SCANNER];
            ips.extend((1..=30).map(|i| Ipv4Addr::new(198, 51, 100, i)));
            let (topo, nodes) = playground(&ips);
            let mut sim = Simulator::new(
                topo,
                SimConfig {
                    seed,
                    faults: netsim::FaultPlan::lossy(0.4),
                    ..SimConfig::default()
                },
            );
            for node in &nodes[1..] {
                sim.install(*node, Canned);
            }
            run_campaign(
                &mut sim,
                nodes[0],
                CampaignConfig::new(Campaign::Shadowserver, ips[1..].to_vec()).with_retry(retry),
            )
        };
        let single = run(RetryPolicy::none(), 21);
        let retried = run(RetryPolicy::retries(3), 21);
        assert_eq!(single.retransmits_sent, 0);
        assert!(single.odns.len() < 30, "losses must bite");
        assert!(retried.retransmits_sent > 0);
        assert!(
            retried.odns.len() > single.odns.len(),
            "retries recover responders: {} vs {}",
            retried.odns.len(),
            single.odns.len()
        );
        // Determinism: the retried pass replays bit-identically.
        assert_eq!(retried, run(RetryPolicy::retries(3), 21));
    }

    #[test]
    fn campaign_properties() {
        assert!(!Campaign::Shadowserver.sanitizes_source());
        assert!(Campaign::Censys.sanitizes_source());
        assert!(Campaign::Shodan.sanitizes_source());
        assert_eq!(Campaign::Shadowserver.to_string(), "Shadowserver");
    }
}
