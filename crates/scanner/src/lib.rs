//! # scanner — measurement tooling for the transparent-forwarders study
//!
//! Four instruments, mirroring the paper's artifact layout:
//!
//! * [`TransactionalScanner`] (`dns-scan-server` in the artifacts) — the
//!   paper's method: unique `(port, TXID)` per probe, full transaction
//!   recording, offline correlation with a 20 s timeout, classification
//!   into the three ODNS component classes (§4.1);
//! * [`CampaignScanner`] — emulations of Shadowserver, Censys, and Shodan
//!   with their observable response-processing behaviours (§3);
//! * [`HoneypotSensor`] (`dns-honeypot-sensors`) — the three sensors of
//!   the controlled experiment (§3.1);
//! * [`FingerprintScanner`] — Shodan-style banner grabbing for the device
//!   attribution of Appendix E;
//! * [`ReflectionAttacker`] / [`VictimMeter`] — the §6 misuse model:
//!   spoofed-source reflection campaigns with per-plan victim attribution,
//!   feeding the analysis crate's amplification matrix.
//!
//! The classification rules live in [`mod@classify`] and are shared with the
//! analysis crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod campaigns;
pub mod classify;
pub mod fingerprint;
pub mod records;
pub mod sensors;
pub mod shard;
pub mod transactional;

pub use attacks::{
    run_reflections, AttackSpend, AttackVector, ReflectionAttacker, ReflectionPlan, VictimMeter,
    VictimTally,
};
pub use campaigns::{
    run_campaign, run_campaign_delayed, Campaign, CampaignConfig, CampaignReport, CampaignScanner,
};
pub use classify::{classify, ClassifierConfig, Discard, OdnsClass, Verdict};
pub use fingerprint::{
    attribute_vendor, run_fingerprint_scan, FingerprintConfig, FingerprintScanner, HostEvidence,
};
pub use records::{ProbeRecord, ResponseRecord, RetryStats, ScanOutcome, Transaction};
pub use sensors::{sensor_reply_matches, HoneypotSensor, SensorAddresses, SensorKind, SensorStats};
pub use shard::{merge_shard_records, MergeStats, ShardRecords, StreamingMerge};
pub use transactional::{
    correlate, correlate_owned, run_scan, run_scan_raw, Correlator, ProbeNaming, ScanConfig,
    TransactionalScanner, TupleScheme,
};
