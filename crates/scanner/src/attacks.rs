//! Seeded spoofed-source reflection campaigns — the §6 misuse model as a
//! first-class instrument.
//!
//! The paper's §6 flags transparent forwarders as *invisible diffusers*
//! for reflective amplification; *Forward to Hell?* builds the full
//! attack model on top. This module drives it defensively: a
//! [`ReflectionAttacker`] host paces spoofed-source queries (the victim's
//! address in the source field) through a list of diffusers, exactly like
//! a [`crate::CampaignScanner`] paces probes, while a [`VictimMeter`]
//! installed on the victim node tallies what converges there. Each
//! [`ReflectionPlan`] carries its own *reply port* — the source port of
//! its spoofed queries — so responses arriving at the victim attribute
//! themselves to the plan that provoked them, with no time-window
//! heuristics.
//!
//! Everything is deterministic: plans fire at fixed simulated-time
//! offsets with fixed pacing, queries use one TXID per plan, and the
//! tallies are ordered maps, so per-plan amplification factors are
//! bit-identical across runs and shard counts. The `analysis` crate rolls
//! the measurements into its Table-3-style `AttackMatrix`.

use dnswire::{DnsName, Message, MessageBuilder, RData, Record, RrType};
use netsim::{Ctx, Datagram, Host, NodeId, Payload, SimDuration, Simulator, UdpSend};
use odns::study;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// The query shapes an amplification attacker chooses from (§6 and the
/// *Forward to Hell?* catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackVector {
    /// QTYPE `ANY` — the classic maximum-response vector ("Google allows
    /// ANY requests", §6).
    Any,
    /// QTYPE `TXT` — large text records without the ANY stigma.
    Txt,
    /// QTYPE `ANY` with an EDNS0 OPT record advertising a 4096-byte UDP
    /// buffer — the real-world prerequisite for oversized UDP answers.
    /// The simulated servers answer within 512 bytes either way, so this
    /// row measures the *query-side* overhead of EDNS against this zoo.
    EdnsAny,
}

impl AttackVector {
    /// All vectors, in matrix row order.
    pub fn all() -> [AttackVector; 3] {
        [AttackVector::Any, AttackVector::Txt, AttackVector::EdnsAny]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackVector::Any => "ANY",
            AttackVector::Txt => "TXT",
            AttackVector::EdnsAny => "ANY+EDNS",
        }
    }

    /// Build this vector's query for the study zone.
    pub fn build_query(self, txid: u16) -> Message {
        let builder = match self {
            AttackVector::Any | AttackVector::EdnsAny => {
                MessageBuilder::query(txid, study::study_qname(), RrType::Any)
            }
            AttackVector::Txt => MessageBuilder::query(txid, study::study_qname(), RrType::Txt),
        }
        .recursion_desired(true);
        match self {
            AttackVector::EdnsAny => builder
                .additional(Record {
                    name: DnsName::root(),
                    class: dnswire::Class::Other(4096),
                    ttl: 0,
                    rdata: RData::Opt(Vec::new()),
                })
                .build(),
            _ => builder.build(),
        }
    }
}

impl std::fmt::Display for AttackVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One spoofed-source reflection pass: a vector driven through a diffuser
/// list on behalf of a victim.
#[derive(Debug, Clone)]
pub struct ReflectionPlan {
    /// Query shape.
    pub vector: AttackVector,
    /// Diffusers to bounce off, probed in order.
    pub targets: Vec<Ipv4Addr>,
    /// The spoofed source — the victim's address.
    pub spoof_src: Ipv4Addr,
    /// Source port of the spoofed queries. Responses arrive at the victim
    /// on this port, attributing them to this plan.
    pub reply_port: u16,
    /// Pacing between queries.
    pub inter_probe_gap: SimDuration,
    /// Simulated-time offset of the plan's first query.
    pub start_after: SimDuration,
}

impl ReflectionPlan {
    /// A plan with the campaign-style defaults (50 µs pacing, immediate
    /// start).
    pub fn new(
        vector: AttackVector,
        targets: Vec<Ipv4Addr>,
        spoof_src: Ipv4Addr,
        reply_port: u16,
    ) -> Self {
        ReflectionPlan {
            vector,
            targets,
            spoof_src,
            reply_port,
            inter_probe_gap: SimDuration::from_micros(50),
            start_after: SimDuration::ZERO,
        }
    }

    /// A sensor-flood plan: the sensor addresses cycled `repeats` times,
    /// paced wide enough to look like a real flood but well inside the
    /// sensors' 5-minute answer budget — the rate-limiter efficacy probe.
    pub fn flood(
        vector: AttackVector,
        sensor_addrs: &[Ipv4Addr],
        repeats: u32,
        spoof_src: Ipv4Addr,
        reply_port: u16,
    ) -> Self {
        let mut targets = Vec::with_capacity(sensor_addrs.len() * repeats as usize);
        for _ in 0..repeats {
            targets.extend_from_slice(sensor_addrs);
        }
        ReflectionPlan {
            vector,
            targets,
            spoof_src,
            reply_port,
            inter_probe_gap: SimDuration::from_millis(10),
            start_after: SimDuration::ZERO,
        }
    }
}

/// What one plan cost the attacker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackSpend {
    /// Spoofed queries sent.
    pub queries: u64,
    /// Query payload bytes spent.
    pub bytes: u64,
}

struct PlanState {
    plan: ReflectionPlan,
    query: Payload,
    cursor: usize,
    spend: AttackSpend,
}

/// The attacker box: paces every plan's spoofed queries from one node,
/// each plan on its own timer token, batched like the campaign scanners.
#[derive(Debug)]
pub struct ReflectionAttacker {
    plans: Vec<PlanState>,
}

impl std::fmt::Debug for PlanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanState")
            .field("vector", &self.plan.vector)
            .field("cursor", &self.cursor)
            .field("spend", &self.spend)
            .finish()
    }
}

/// Queries per batched pacing event (mirrors the campaign scanners).
const PROBE_BURST: u32 = 16;

impl ReflectionAttacker {
    /// Build from plans. Timer token `i` paces plan `i`.
    pub fn new(plans: Vec<ReflectionPlan>) -> Self {
        let plans = plans
            .into_iter()
            .map(|plan| {
                // One TXID per plan — keyed to the reply port so every
                // plan's queries are distinct yet fully deterministic.
                let query = Payload::from(plan.vector.build_query(plan.reply_port).encode());
                PlanState {
                    plan,
                    query,
                    cursor: 0,
                    spend: AttackSpend::default(),
                }
            })
            .collect();
        ReflectionAttacker { plans }
    }

    /// Per-plan spends, in plan order.
    pub fn spends(&self) -> Vec<AttackSpend> {
        self.plans.iter().map(|p| p.spend).collect()
    }
}

impl Host for ReflectionAttacker {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: Datagram) {
        // Spoofed queries carry the victim's source; nothing legitimate
        // ever arrives at the attacker box.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(state) = self.plans.get_mut(token as usize) else {
            return;
        };
        if state.cursor >= state.plan.targets.len() {
            return;
        }
        let i = state.cursor;
        state.cursor += 1;
        let target = state.plan.targets[i];
        state.spend.queries += 1;
        state.spend.bytes += state.query.len() as u64;
        ctx.send_udp(UdpSend {
            src: Some(state.plan.spoof_src),
            src_port: state.plan.reply_port,
            dst: target,
            dst_port: dnswire::DNS_PORT,
            ttl: None,
            payload: state.query.clone(),
        });
        // Batched pacing, campaign-style: one timer event per burst.
        let remaining = state.plan.targets.len() - state.cursor;
        if remaining > 0 && i.is_multiple_of(PROBE_BURST as usize) {
            let gap = state.plan.inter_probe_gap;
            ctx.set_timer_batch(
                gap,
                gap,
                remaining.min(PROBE_BURST as usize) as u32,
                token,
                0,
            );
        }
    }

    netsim::impl_host_downcast!();
}

/// What converged on one victim port.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VictimTally {
    /// Datagrams received.
    pub packets: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Distinct source addresses the traffic arrived from — the
    /// attribution view: reflections through transparent forwarders show
    /// resolver addresses here, never the diffusers.
    pub sources: BTreeSet<Ipv4Addr>,
}

impl VictimTally {
    /// Merge another shard's tally for the same port.
    pub fn absorb(&mut self, other: &VictimTally) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.sources.extend(other.sources.iter().copied());
    }
}

/// The victim box: tallies arriving traffic per destination port, so each
/// reflection plan's reply port gets its own ledger.
#[derive(Debug, Default)]
pub struct VictimMeter {
    /// Per-destination-port tallies.
    pub tallies: BTreeMap<u16, VictimTally>,
}

impl VictimMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        VictimMeter::default()
    }

    /// The tally for one reply port (empty if nothing arrived).
    pub fn tally(&self, port: u16) -> VictimTally {
        self.tallies.get(&port).cloned().unwrap_or_default()
    }
}

impl Host for VictimMeter {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
        let tally = self.tallies.entry(dgram.dst_port).or_default();
        tally.packets += 1;
        tally.bytes += dgram.payload.len() as u64;
        tally.sources.insert(dgram.src);
    }

    netsim::impl_host_downcast!();
}

/// Install a [`ReflectionAttacker`] on `node`, schedule every plan's
/// start timer, run the simulation to quiescence, and return the per-plan
/// spends (in plan order).
pub fn run_reflections(
    sim: &mut Simulator,
    node: NodeId,
    plans: Vec<ReflectionPlan>,
) -> Vec<AttackSpend> {
    let starts: Vec<SimDuration> = plans.iter().map(|p| p.start_after).collect();
    sim.install(node, ReflectionAttacker::new(plans));
    for (i, start) in starts.into_iter().enumerate() {
        sim.schedule_timer(node, start, i as u64);
    }
    sim.run();
    sim.host_as::<ReflectionAttacker>(node)
        .expect("attacker installed")
        .spends()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::playground;
    use netsim::SimConfig;
    use odns::{RecursiveForwarder, TransparentForwarder};

    const VICTIM: Ipv4Addr = Ipv4Addr::new(198, 51, 99, 1);
    const ATTACKER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 66);
    const TRANSP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const RECFWD: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    /// Canned resolver: answers any query with two A records (bigger than
    /// the query — amplification on tap).
    struct Canned;
    impl Host for Canned {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            let q = Message::decode(&dgram.payload).unwrap();
            let resp = MessageBuilder::response_to(&q)
                .recursion_available(true)
                .answer_a(q.questions[0].qname.clone(), 300, dgram.dst)
                .answer_a(q.questions[0].qname.clone(), 300, study::CONTROL_A)
                .build();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: 53,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
        }
        netsim::impl_host_downcast!();
    }

    fn world() -> (Simulator, Vec<NodeId>) {
        let (topo, nodes) = playground(&[VICTIM, ATTACKER, TRANSP, RECFWD, RESOLVER]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(nodes[0], VictimMeter::new());
        sim.install(nodes[2], TransparentForwarder::new(RESOLVER));
        sim.install(nodes[3], RecursiveForwarder::new(RESOLVER));
        sim.install(nodes[4], Canned);
        (sim, nodes)
    }

    #[test]
    fn vectors_build_distinct_wire_queries() {
        let queries: Vec<Vec<u8>> = AttackVector::all()
            .into_iter()
            .map(|v| v.build_query(9).encode())
            .collect();
        assert_ne!(queries[0], queries[1]);
        assert_ne!(queries[0], queries[2]);
        // The EDNS vector really carries an OPT additional.
        let edns = Message::decode(&queries[2]).unwrap();
        assert_eq!(edns.additionals.len(), 1);
        assert_eq!(edns.additionals[0].rtype(), RrType::Opt);
        assert!(edns.is_plain_in_query(), "EDNS stays a plain IN query");
    }

    #[test]
    fn reflection_attributes_responses_to_reply_ports() {
        let (mut sim, nodes) = world();
        let plans = vec![
            ReflectionPlan::new(AttackVector::Any, vec![TRANSP], VICTIM, 40_000),
            ReflectionPlan {
                start_after: SimDuration::from_secs(1),
                ..ReflectionPlan::new(AttackVector::Any, vec![RECFWD], VICTIM, 40_001)
            },
        ];
        let spends = run_reflections(&mut sim, nodes[1], plans);
        assert_eq!(spends.len(), 2);
        assert_eq!(spends[0].queries, 1);
        assert!(spends[0].bytes > 0);

        let meter: &VictimMeter = sim.host_as(nodes[0]).unwrap();
        let through_transp = meter.tally(40_000);
        let through_recfwd = meter.tally(40_001);
        // Both paths reflect one (amplified) response onto their own port.
        assert_eq!(through_transp.packets, 1);
        assert_eq!(through_recfwd.packets, 1);
        assert!(through_transp.bytes > spends[0].bytes, "amplified");
        // Attribution: the transparent path shows the resolver, never the
        // diffuser; the recursive forwarder answers as itself.
        assert_eq!(
            through_transp.sources.iter().copied().collect::<Vec<_>>(),
            vec![RESOLVER]
        );
        assert_eq!(
            through_recfwd.sources.iter().copied().collect::<Vec<_>>(),
            vec![RECFWD]
        );
    }

    #[test]
    fn flood_plan_cycles_sensor_addresses() {
        let plan = ReflectionPlan::flood(AttackVector::Any, &[TRANSP, RECFWD], 3, VICTIM, 41_000);
        assert_eq!(plan.targets.len(), 6);
        assert_eq!(plan.targets[0], TRANSP);
        assert_eq!(plan.targets[1], RECFWD);
        assert_eq!(plan.targets[4], TRANSP);
    }

    #[test]
    fn victim_tally_absorb_unions_sources() {
        let mut a = VictimTally {
            packets: 2,
            bytes: 100,
            sources: [RESOLVER].into_iter().collect(),
        };
        let b = VictimTally {
            packets: 1,
            bytes: 50,
            sources: [RESOLVER, RECFWD].into_iter().collect(),
        };
        a.absorb(&b);
        assert_eq!(a.packets, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.sources.len(), 2);
    }
}
