//! Probe and transaction records — the scanner's raw material.
//!
//! The paper's method (§4.1) records the *complete DNS transaction*:
//! source/destination addresses, client port, and DNS header ID at send
//! time, then correlates responses offline. These types are that record.

use dnswire::Message;
use netsim::{Payload, SimTime};
use std::net::Ipv4Addr;

/// One probe as sent by the transactional scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Index in the target list.
    pub index: usize,
    /// The probed address (`IP_target` of the classification rules).
    pub target: Ipv4Addr,
    /// Send timestamp.
    pub sent_at: SimTime,
    /// Scanner-side source port — unique per in-flight probe.
    pub src_port: u16,
    /// DNS transaction ID — the second half of the unique tuple.
    pub txid: u16,
}

/// One response as received by the scanner (pre-correlation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseRecord {
    /// Arrival timestamp.
    pub received_at: SimTime,
    /// IP source of the response (`IP_response`).
    pub src: Ipv4Addr,
    /// Port it arrived on (matches the probe's `src_port` if genuine).
    pub dst_port: u16,
    /// Raw payload (parsed lazily; middlebox distortions must survive).
    /// Shares the delivered datagram's bytes — recording a response does
    /// not copy it, which matters when record streams are the bulk of a
    /// shard's memory.
    pub payload: Payload,
}

impl ResponseRecord {
    /// Decode the DNS payload, if well-formed.
    pub fn message(&self) -> Option<Message> {
        Message::decode(&self.payload).ok()
    }
}

/// A correlated transaction: a probe and the response matched to it by
/// `(port, txid)` within the timeout window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The probe.
    pub probe: ProbeRecord,
    /// The matched response, if any arrived in time.
    pub response: Option<ResponseRecord>,
}

impl Transaction {
    /// `IP_response`, if answered.
    pub fn response_src(&self) -> Option<Ipv4Addr> {
        self.response.as_ref().map(|r| r.src)
    }

    /// Round-trip time, if answered.
    pub fn rtt(&self) -> Option<netsim::SimDuration> {
        self.response
            .as_ref()
            .map(|r| r.received_at - self.probe.sent_at)
    }

    /// Answer-section A record addresses, if answered and well-formed.
    pub fn answer_addrs(&self) -> Vec<Ipv4Addr> {
        self.response
            .as_ref()
            .and_then(|r| r.message())
            .map(|m| m.answer_a_addrs())
            .unwrap_or_default()
    }
}

/// Retransmission accounting from a scan run under a
/// [`netsim::RetryPolicy`]. All zeros for single-shot scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retransmissions the scanner put on the wire (transmissions beyond
    /// each probe's first).
    pub retransmits_sent: u64,
    /// `answered_on_attempt[k]` = probes whose first answer arrived after
    /// `k + 1` transmissions. Attempts beyond the histogram's width land
    /// in the last bucket.
    pub answered_on_attempt: [u64; RetryStats::MAX_TRACKED_ATTEMPTS],
}

impl RetryStats {
    /// Histogram width: attempts 1..=8 tracked individually.
    pub const MAX_TRACKED_ATTEMPTS: usize = 8;

    /// Record a probe first answered after `attempts` transmissions.
    pub fn record_answered(&mut self, attempts: u8) {
        let slot = usize::from(attempts.max(1) - 1).min(Self::MAX_TRACKED_ATTEMPTS - 1);
        self.answered_on_attempt[slot] += 1;
    }

    /// Fold another scan's counters into this one (shard merge).
    pub fn absorb(&mut self, other: &RetryStats) {
        self.retransmits_sent += other.retransmits_sent;
        for (a, b) in self
            .answered_on_attempt
            .iter_mut()
            .zip(other.answered_on_attempt)
        {
            *a += b;
        }
    }

    /// Probes answered only thanks to a retransmission (attempt ≥ 2).
    pub fn answered_by_retry(&self) -> u64 {
        self.answered_on_attempt[1..].iter().sum()
    }
}

/// Outcome of a whole scan run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// All correlated transactions, in probe order.
    pub transactions: Vec<Transaction>,
    /// Responses that matched no outstanding probe (unsolicited or
    /// garbage).
    pub unmatched_responses: usize,
    /// Responses that arrived after the per-probe timeout.
    pub late_responses: usize,
    /// Responses for an already-answered `(port, txid)` tuple — answers
    /// from superseded retransmission attempts (or wire duplicates),
    /// deduplicated away by the correlator.
    pub late_answers_discarded: usize,
    /// Retransmission accounting (zeros for single-shot scans).
    pub retry: RetryStats,
}

impl ScanOutcome {
    /// Transactions that received a response.
    pub fn answered(&self) -> impl Iterator<Item = &Transaction> {
        self.transactions.iter().filter(|t| t.response.is_some())
    }

    /// Number of answered probes.
    pub fn answered_count(&self) -> usize {
        self.answered().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{DnsName, MessageBuilder, RrType};
    use netsim::SimDuration;

    fn probe(i: usize) -> ProbeRecord {
        ProbeRecord {
            index: i,
            target: Ipv4Addr::new(203, 0, 113, i as u8),
            sent_at: SimTime(1_000),
            src_port: 34000,
            txid: i as u16,
        }
    }

    #[test]
    fn transaction_accessors() {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let resp = MessageBuilder::query(0, qname.clone(), RrType::A)
            .build()
            .response_skeleton();
        let resp = {
            let mut m = resp;
            m.answers
                .push(dnswire::Record::a(qname, 300, Ipv4Addr::new(8, 8, 8, 8)));
            m
        };
        let t = Transaction {
            probe: probe(0),
            response: Some(ResponseRecord {
                received_at: SimTime(41_000),
                src: Ipv4Addr::new(8, 8, 8, 8),
                dst_port: 34000,
                payload: resp.encode().into(),
            }),
        };
        assert_eq!(t.response_src(), Some(Ipv4Addr::new(8, 8, 8, 8)));
        assert_eq!(t.rtt(), Some(SimDuration::from_micros(40_000)));
        assert_eq!(t.answer_addrs(), vec![Ipv4Addr::new(8, 8, 8, 8)]);
    }

    #[test]
    fn unanswered_transaction() {
        let t = Transaction {
            probe: probe(1),
            response: None,
        };
        assert_eq!(t.response_src(), None);
        assert_eq!(t.rtt(), None);
        assert!(t.answer_addrs().is_empty());
    }

    #[test]
    fn malformed_payload_yields_no_addrs() {
        let t = Transaction {
            probe: probe(2),
            response: Some(ResponseRecord {
                received_at: SimTime(2_000),
                src: Ipv4Addr::new(1, 1, 1, 1),
                dst_port: 34000,
                payload: vec![0xDE, 0xAD].into(),
            }),
        };
        assert!(t.answer_addrs().is_empty());
        assert!(t.response.as_ref().unwrap().message().is_none());
    }

    #[test]
    fn outcome_counting() {
        let mut o = ScanOutcome::default();
        o.transactions.push(Transaction {
            probe: probe(0),
            response: None,
        });
        o.transactions.push(Transaction {
            probe: probe(1),
            response: Some(ResponseRecord {
                received_at: SimTime(5),
                src: Ipv4Addr::new(9, 9, 9, 9),
                dst_port: 1,
                payload: vec![].into(),
            }),
        });
        assert_eq!(o.answered_count(), 1);
    }

    #[test]
    fn retry_stats_histogram_and_merge() {
        let mut a = RetryStats::default();
        a.record_answered(1);
        a.record_answered(2);
        a.record_answered(2);
        a.record_answered(200); // clamps into the last bucket
        a.retransmits_sent = 3;
        assert_eq!(a.answered_on_attempt[0], 1);
        assert_eq!(a.answered_on_attempt[1], 2);
        assert_eq!(
            a.answered_on_attempt[RetryStats::MAX_TRACKED_ATTEMPTS - 1],
            1
        );
        assert_eq!(a.answered_by_retry(), 3);
        let mut b = RetryStats::default();
        b.record_answered(1);
        b.retransmits_sent = 2;
        b.absorb(&a);
        assert_eq!(b.retransmits_sent, 5);
        assert_eq!(b.answered_on_attempt[0], 2);
        assert_eq!(b.answered_by_retry(), 3);
    }
}
