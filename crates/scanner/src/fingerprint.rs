//! Banner-grabbing scanner: the Shodan/Censys-style device fingerprinting
//! of Appendix E.
//!
//! For each target it probes a list of UDP ports; open ports answer with a
//! vendor banner (see `odns::device`), closed ports return ICMP port
//! unreachable. The analysis crate turns `(open ports, banner)` evidence
//! into vendor attributions — reproducing the "23 % of transparent
//! forwarders are MikroTik" finding.

use netsim::{Ctx, Datagram, Host, IcmpMessage, NodeId, SimDuration, Simulator, UdpSend};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Fingerprint scan configuration.
#[derive(Debug, Clone)]
pub struct FingerprintConfig {
    /// Hosts to probe.
    pub targets: Vec<Ipv4Addr>,
    /// UDP ports to try on each host (e.g. the MikroTik MNDP/btest ports).
    pub ports: Vec<u16>,
    /// Probe pacing.
    pub gap: SimDuration,
    /// Scanner-side base source port.
    pub base_port: u16,
}

impl FingerprintConfig {
    /// Defaults probing the device-profile ports.
    pub fn new(targets: Vec<Ipv4Addr>) -> Self {
        FingerprintConfig {
            targets,
            ports: vec![
                odns::device::MIKROTIK_MNDP_PORT,
                odns::device::MIKROTIK_BTEST_PORT,
                odns::device::CPE_MGMT_PORT,
            ],
            gap: SimDuration::from_micros(50),
            base_port: 50_000,
        }
    }
}

/// Evidence gathered about one host.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostEvidence {
    /// `(port, banner)` pairs from open ports.
    pub banners: Vec<(u16, String)>,
    /// Ports that answered with ICMP port unreachable.
    pub closed: Vec<u16>,
}

/// The fingerprint scanner host.
#[derive(Debug)]
pub struct FingerprintScanner {
    config: FingerprintConfig,
    cursor: usize,
    /// The one-byte wake-up payload every probe sends, shared like the
    /// census probe template: each send is a refcount bump, not a fresh
    /// allocation.
    probe_payload: netsim::Payload,
    /// Evidence per probed host — address-sorted (`BTreeMap`) so any
    /// report surface iterating it renders byte-identically every run.
    pub evidence: BTreeMap<Ipv4Addr, HostEvidence>,
}

const PACE_TOKEN: u64 = u64::MAX;
/// Probes paced per batched timer event.
const PROBE_BURST: u32 = 16;

impl FingerprintScanner {
    /// Build from config.
    pub fn new(config: FingerprintConfig) -> Self {
        FingerprintScanner {
            config,
            cursor: 0,
            probe_payload: vec![0x00].into(),
            evidence: BTreeMap::new(),
        }
    }

    fn total_probes(&self) -> usize {
        self.config.targets.len() * self.config.ports.len()
    }
}

impl Host for FingerprintScanner {
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, dgram: Datagram) {
        // A UDP reply from (src, src_port) is a banner from that port.
        let banner = String::from_utf8_lossy(&dgram.payload).into_owned();
        self.evidence
            .entry(dgram.src)
            .or_default()
            .banners
            .push((dgram.src_port, banner));
    }

    fn on_icmp(&mut self, _ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
        if icmp.kind == netsim::IcmpKind::PortUnreachable {
            if let Some(q) = icmp.quote {
                self.evidence
                    .entry(q.dst)
                    .or_default()
                    .closed
                    .push(q.dst_port);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != PACE_TOKEN {
            return;
        }
        if self.cursor < self.total_probes() {
            let i = self.cursor;
            self.cursor += 1;
            let target = self.config.targets[i / self.config.ports.len()];
            let port = self.config.ports[i % self.config.ports.len()];
            let src_port = self.config.base_port.wrapping_add((i & 0x3FFF) as u16);
            ctx.send_udp(UdpSend::new(
                src_port,
                target,
                port,
                self.probe_payload.clone(),
            ));
            let burst = PROBE_BURST as usize;
            let remaining = self.total_probes() - self.cursor;
            if remaining > 0 && i.is_multiple_of(burst) {
                let gap = self.config.gap;
                ctx.set_timer_batch(gap, gap, remaining.min(burst) as u32, PACE_TOKEN, 0);
            }
        }
    }

    netsim::impl_host_downcast!();
}

/// Run a fingerprint pass and return the evidence map.
pub fn run_fingerprint_scan(
    sim: &mut Simulator,
    node: NodeId,
    config: FingerprintConfig,
) -> BTreeMap<Ipv4Addr, HostEvidence> {
    sim.install(node, FingerprintScanner::new(config));
    sim.schedule_timer(node, SimDuration::ZERO, PACE_TOKEN);
    sim.run();
    sim.host_as::<FingerprintScanner>(node)
        .expect("scanner installed")
        .evidence
        .clone()
}

/// Attribute a vendor from gathered evidence: a banner containing the
/// vendor name wins; otherwise `None` (the paper leaves such hosts
/// unattributed too).
pub fn attribute_vendor(evidence: &HostEvidence) -> Option<odns::Vendor> {
    for (_, banner) in &evidence.banners {
        for vendor in odns::Vendor::all() {
            if banner.contains(vendor.name()) {
                return Some(vendor);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::playground;
    use netsim::SimConfig;
    use odns::{DeviceProfile, TransparentForwarder};

    const SCANNER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const MIKROTIK_DEV: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const QUIET_DEV: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    #[test]
    fn mikrotik_identified_quiet_cpe_not() {
        let (topo, nodes) = playground(&[SCANNER, MIKROTIK_DEV, QUIET_DEV, RESOLVER]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            nodes[1],
            TransparentForwarder::new(RESOLVER).with_device(DeviceProfile::mikrotik()),
        );
        sim.install(
            nodes[2],
            TransparentForwarder::new(RESOLVER).with_device(DeviceProfile::generic()),
        );
        let evidence = run_fingerprint_scan(
            &mut sim,
            nodes[0],
            FingerprintConfig::new(vec![MIKROTIK_DEV, QUIET_DEV]),
        );

        let mk = &evidence[&MIKROTIK_DEV];
        assert_eq!(mk.banners.len(), 2, "MNDP + btest answer");
        assert_eq!(attribute_vendor(mk), Some(odns::Vendor::MikroTik));

        let quiet = &evidence[&QUIET_DEV];
        assert!(quiet.banners.is_empty());
        assert_eq!(quiet.closed.len(), 3, "all probed ports closed");
        assert_eq!(attribute_vendor(quiet), None);
    }

    #[test]
    fn attribution_requires_vendor_string() {
        let mut e = HostEvidence::default();
        e.banners.push((7547, "Zyxel CPE".to_string()));
        assert_eq!(attribute_vendor(&e), Some(odns::Vendor::Zyxel));
        let mut e2 = HostEvidence::default();
        e2.banners.push((7547, "some unknown device".to_string()));
        assert_eq!(attribute_vendor(&e2), None);
    }
}
