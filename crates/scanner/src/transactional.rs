//! The transactional scanner — the paper's measurement contribution.
//!
//! A zmap-style asynchronous scanner that (1) assigns every probe a unique
//! `(source port, DNS transaction ID)` tuple, (2) records all outgoing
//! probes, (3) collects every response, and (4) correlates them offline
//! within a conservative 20-second timeout (§4.1). The correlation is what
//! stateless campaigns lack, and it is exactly what makes transparent
//! forwarders visible: their responses arrive from a *different* address
//! than the probed one, which only a recorded transaction can reveal.

use crate::records::{ProbeRecord, ResponseRecord, RetryStats, ScanOutcome, Transaction};
use dnswire::{MessageBuilder, RrType};
use netsim::{Ctx, Datagram, Host, NodeId, RetryPolicy, SimDuration, Simulator, UdpSend};
use odns::study;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// The static-naming probe query is one fixed byte string (the txid is
/// patched per block); encode it once per process instead of once per
/// scanner — warm sweeps build thousands of scanners.
fn static_probe_template() -> &'static [u8] {
    static TEMPLATE: OnceLock<Vec<u8>> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        MessageBuilder::query(0, study::study_qname(), RrType::A)
            .recursion_desired(true)
            .build()
            .encode()
    })
}

/// How probe query names are chosen — the two methods of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeNaming {
    /// Response-based method: every probe queries the same static name, so
    /// resolver caches absorb repeats (the paper's choice).
    Static,
    /// Query-based method: the target's address is encoded in the name
    /// (`203-0-113-1.scan.<zone>`), defeating caches and loading the
    /// authoritative server — implemented for the Table 2 comparison.
    EncodeTarget,
}

/// How probe `(src_port, txid)` tuples are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TupleScheme {
    /// Port-walk (the default): the port varies per probe *index* and the
    /// txid advances once per 65 k block, so a whole block shares one wire
    /// payload (see [`ScanConfig::probe_tuple`]).
    #[default]
    PortWalk,
    /// Target-keyed: the tuple is a pure function of the *target address*
    /// (txid = the address's high 16 bits, port = base port + low 16
    /// bits). Unique because targets are, and — unlike the index-based
    /// walk — invariant under probe order and partitioning: a probe's
    /// flow identity is the same whichever shard probes it, which is what
    /// lets the fault plane's flow-keyed verdicts commute with sharding.
    /// Costs the per-block payload cache (txids no longer arrive in
    /// blocks), so lossless scans keep the walk.
    TargetKeyed,
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Addresses to probe, in order.
    pub targets: Vec<Ipv4Addr>,
    /// Name construction method.
    pub naming: ProbeNaming,
    /// `(src_port, txid)` assignment scheme.
    pub tuples: TupleScheme,
    /// Gap between consecutive probes (sets the scan rate; the paper scans
    /// the full IPv4 space in 18 hours — "moderate").
    pub inter_probe_gap: SimDuration,
    /// Correlation timeout (paper: a conservative 20 s).
    pub timeout: SimDuration,
    /// First source port; probes walk `base_port + (index & 0xFFFF)` with
    /// the txid advancing once per 65 k block, so the `(port, txid)` tuple
    /// is unique for every in-flight probe.
    pub base_port: u16,
    /// Probes paced per batched timer event (see `Ctx::set_timer_batch`).
    /// Send times are exactly `index · inter_probe_gap` regardless of this
    /// value — it only sets how many queue events the pacing costs.
    pub burst: u32,
    /// Retransmission policy. The default ([`RetryPolicy::none`]) keeps
    /// the paper's single-shot behavior: no retry state is allocated and
    /// no retry timers are armed.
    pub retry: RetryPolicy,
}

impl ScanConfig {
    /// The paper's conservative 20 s correlation window. Merging code
    /// that correlates recorded streams without a `ScanConfig` at hand
    /// uses this same constant, keeping scan and merge windows aligned.
    pub const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_secs(20);

    /// Default pacing burst: one queue event per 16 probes.
    pub const DEFAULT_BURST: u32 = 16;

    /// Defaults matching the paper: static naming, 20 s timeout.
    pub fn new(targets: Vec<Ipv4Addr>) -> Self {
        ScanConfig {
            targets,
            naming: ProbeNaming::Static,
            tuples: TupleScheme::PortWalk,
            inter_probe_gap: SimDuration::from_micros(50),
            timeout: Self::DEFAULT_TIMEOUT,
            base_port: 33_000,
            burst: Self::DEFAULT_BURST,
            retry: RetryPolicy::none(),
        }
    }

    /// Switch to the query-encoding method (Table 2 comparison).
    pub fn with_query_encoding(mut self) -> Self {
        self.naming = ProbeNaming::EncodeTarget;
        self
    }

    /// Switch to target-keyed tuples ([`TupleScheme::TargetKeyed`]) — the
    /// scheme lossy-world experiments need for shard-count-invariant
    /// fault verdicts.
    pub fn with_target_keyed_tuples(mut self) -> Self {
        self.tuples = TupleScheme::TargetKeyed;
        self
    }

    /// Enable retransmissions. Panics on a degenerate policy — a scan
    /// that silently never retries is worse than one that refuses to
    /// start.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry.assert_valid();
        self.retry = retry;
        self
    }

    /// The `(src_port, txid)` tuple for probe `index`.
    ///
    /// The *port* varies per probe and the *txid* per 65 k block — not the
    /// other way round — so all probes of a block share one wire payload
    /// (the txid is the only byte pair that differs between static-naming
    /// probes), letting the scanner send a block from a single shared
    /// buffer instead of patching a fresh copy per probe.
    pub fn probe_tuple(&self, index: usize) -> (u16, u16) {
        let port = self.base_port.wrapping_add((index & 0xFFFF) as u16);
        let txid = (index >> 16) as u16;
        (port, txid)
    }

    /// The `(src_port, txid)` tuple for the probe at `index` targeting
    /// `target`, under the configured [`TupleScheme`]. `PortWalk` uses the
    /// index ([`ScanConfig::probe_tuple`]); `TargetKeyed` uses the address
    /// alone.
    pub fn tuple_for(&self, index: usize, target: Ipv4Addr) -> (u16, u16) {
        match self.tuples {
            TupleScheme::PortWalk => self.probe_tuple(index),
            TupleScheme::TargetKeyed => {
                let ip = u32::from(target);
                let port = self.base_port.wrapping_add((ip & 0xFFFF) as u16);
                let txid = (ip >> 16) as u16;
                (port, txid)
            }
        }
    }
}

/// The scanner host. Drives itself with a pacing timer; all analysis is
/// post-processing over the recorded probes and responses.
#[derive(Debug)]
pub struct TransactionalScanner {
    config: ScanConfig,
    cursor: usize,
    /// Pre-encoded probe query for static naming: every probe differs only
    /// in its transaction ID, so the hot send path shares one patched
    /// buffer per txid block instead of building and encoding a fresh
    /// message (name parse, builder, compression walk) per target. Points
    /// at the process-wide template — scanners don't even pay the encode.
    probe_template: Option<&'static [u8]>,
    /// The shared payload of the current txid block. With the port-fast
    /// tuple scheme the txid changes once per 65 536 probes, so the send
    /// path is one `Arc` bump per probe and one 2-byte patch per block —
    /// zero per-probe payload allocation.
    cached_block: Option<(u16, netsim::Payload)>,
    /// Outgoing probe records.
    pub probes: Vec<ProbeRecord>,
    /// Raw response records in arrival order.
    pub responses: Vec<ResponseRecord>,
    /// Per-probe "first answer seen" flags — retransmission stops the
    /// moment any response for the probe's `(port, txid)` arrives. Empty
    /// when retries are disabled (single-shot scans pay nothing).
    answered: Vec<bool>,
    /// Per-probe transmission counts (1 after the original send). Empty
    /// when retries are disabled.
    attempts_sent: Vec<u8>,
    /// `(port, txid) → probe index`, the inverse the answer path needs
    /// when tuples are target-keyed (the port-walk inverse is arithmetic).
    /// Empty unless retries are enabled under [`TupleScheme::TargetKeyed`].
    tuple_index: HashMap<(u16, u16), usize>,
    /// Live retransmission counters, copied into the outcome.
    pub retry_stats: RetryStats,
}

/// Timer token used for probe pacing.
const PACE_TOKEN: u64 = u64::MAX;

/// Retry-check tokens occupy the top-bit half of the token space:
/// `RETRY_BASE | probe_index`. `PACE_TOKEN` (`u64::MAX`) also has the top
/// bit set, so pacing is matched first and probe indices stay well below
/// the ambiguous range.
const RETRY_BASE: u64 = 1 << 63;

impl TransactionalScanner {
    /// Build from config.
    pub fn new(config: ScanConfig) -> Self {
        config.retry.assert_valid();
        let probes = Vec::with_capacity(config.targets.len());
        let probe_template = match config.naming {
            ProbeNaming::Static => Some(static_probe_template()),
            ProbeNaming::EncodeTarget => None,
        };
        let (answered, attempts_sent) = if config.retry.enabled() {
            (
                vec![false; config.targets.len()],
                vec![0u8; config.targets.len()],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let tuple_index = if config.retry.enabled() && config.tuples == TupleScheme::TargetKeyed {
            config
                .targets
                .iter()
                .enumerate()
                .map(|(i, t)| (config.tuple_for(i, *t), i))
                .collect()
        } else {
            HashMap::new()
        };
        TransactionalScanner {
            config,
            cursor: 0,
            probe_template,
            cached_block: None,
            probes,
            responses: Vec::new(),
            answered,
            attempts_sent,
            tuple_index,
            retry_stats: RetryStats::default(),
        }
    }

    /// The shared wire payload for a static-naming probe with `txid`:
    /// cached per 65 k block, patched from the template only when the
    /// block changes.
    fn block_payload(&mut self, txid: u16) -> netsim::Payload {
        if let Some((id, payload)) = &self.cached_block {
            if *id == txid {
                return payload.clone();
            }
        }
        let template = self.probe_template.expect("static template");
        let mut bytes = template.to_vec();
        bytes[0..2].copy_from_slice(&txid.to_be_bytes());
        let payload: netsim::Payload = bytes.into();
        self.cached_block = Some((txid, payload.clone()));
        payload
    }

    /// Correlate responses to probes by `(port, txid)` within the timeout.
    ///
    /// This mirrors the paper's post-processing: it never influences the
    /// scan itself. The first matching response within the window wins;
    /// later matches count as duplicates/late.
    pub fn outcome(&self) -> ScanOutcome {
        let mut outcome = correlate(&self.probes, &self.responses, self.config.timeout);
        outcome.retry = self.retry_stats;
        outcome
    }

    /// The wire payload of probe `index` — shared block buffer under
    /// static naming, a fresh encode under query encoding. Used by both
    /// the original send and every retransmission, so a retransmitted
    /// probe is byte-identical to its original.
    fn probe_payload(&mut self, target: Ipv4Addr, txid: u16) -> netsim::Payload {
        if self.probe_template.is_some() {
            self.block_payload(txid)
        } else {
            let qname = study::encode_target_name(target);
            MessageBuilder::query(txid, qname, RrType::A)
                .recursion_desired(true)
                .build()
                .encode()
                .into()
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_>, index: usize) {
        let target = self.config.targets[index];
        let (port, txid) = self.config.tuple_for(index, target);
        let payload = self.probe_payload(target, txid);
        self.probes.push(ProbeRecord {
            index,
            target,
            sent_at: ctx.now(),
            src_port: port,
            txid,
        });
        ctx.send_udp(UdpSend::new(port, target, dnswire::DNS_PORT, payload));
        if self.config.retry.enabled() {
            self.attempts_sent[index] = 1;
            // With jitter every probe's retry check lands at its own
            // hashed offset, so arm individually; the jitter-free case is
            // armed in batches by the burst leader (see `on_timer`).
            if self.config.retry.jitter != SimDuration::ZERO {
                let delay =
                    self.config.retry.rto_after(0) + self.config.retry.jitter_for(index as u64, 1);
                ctx.set_timer(delay, RETRY_BASE | index as u64);
            }
        }
    }

    /// A retry-check timer fired for probe `index`: if it is still
    /// unanswered and attempts remain, retransmit the *same* `(port,
    /// txid)` wire bytes (no new [`ProbeRecord`] — correlation sees one
    /// transaction per probe) and arm the next check with backoff.
    fn on_retry_check(&mut self, ctx: &mut Ctx<'_>, index: usize) {
        let Some(&sent) = self.attempts_sent.get(index) else {
            return;
        };
        if sent == 0 || self.answered[index] || sent >= self.config.retry.max_attempts {
            return;
        }
        let target = self.config.targets[index];
        let (port, txid) = self.config.tuple_for(index, target);
        let payload = self.probe_payload(target, txid);
        ctx.send_udp_attempt(UdpSend::new(port, target, dnswire::DNS_PORT, payload), sent);
        let now_sent = sent + 1;
        self.attempts_sent[index] = now_sent;
        self.retry_stats.retransmits_sent += 1;
        if now_sent < self.config.retry.max_attempts {
            let delay = self.config.retry.rto_after(now_sent - 1)
                + self.config.retry.jitter_for(index as u64, now_sent);
            ctx.set_timer(delay, RETRY_BASE | index as u64);
        }
    }

    /// Mark the probe a response maps to (the inverse of the configured
    /// tuple scheme — arithmetic for the port walk, the prebuilt map for
    /// target-keyed tuples) as answered, stopping further retransmissions
    /// and recording the attempt histogram. Only the *first* response
    /// counts; anything later is the correlator's business.
    fn note_answer(&mut self, dst_port: u16, payload: &netsim::Payload) {
        let Some(txid) = dnswire::peek_id(payload) else {
            return;
        };
        let index = match self.config.tuples {
            TupleScheme::PortWalk => {
                (usize::from(txid) << 16)
                    | usize::from(dst_port.wrapping_sub(self.config.base_port))
            }
            TupleScheme::TargetKeyed => {
                let Some(&i) = self.tuple_index.get(&(dst_port, txid)) else {
                    return;
                };
                i
            }
        };
        if index < self.answered.len()
            && self.attempts_sent[index] > 0
            && !self.answered[index]
            && self.config.tuple_for(index, self.config.targets[index]) == (dst_port, txid)
        {
            self.answered[index] = true;
            self.retry_stats.record_answered(self.attempts_sent[index]);
        }
    }
}

impl Host for TransactionalScanner {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if self.config.retry.enabled() {
            self.note_answer(dgram.dst_port, &dgram.payload);
        }
        self.responses.push(ResponseRecord {
            received_at: ctx.now(),
            src: dgram.src,
            dst_port: dgram.dst_port,
            payload: dgram.payload,
        });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == PACE_TOKEN {
            if self.cursor < self.config.targets.len() {
                let i = self.cursor;
                self.cursor += 1;
                self.send_probe(ctx, i);
                // Batched pacing: a single bootstrap timer fires probe 0;
                // the first probe of each burst arms one timer batch
                // covering the rest of the burst. Send times stay exactly
                // `index · gap`, and any legacy single-timer bootstrap
                // still drives a full scan.
                let burst = self.config.burst.max(1) as usize;
                let remaining = self.config.targets.len() - self.cursor;
                let gap = self.config.inter_probe_gap;
                if remaining > 0 && i.is_multiple_of(burst) {
                    ctx.set_timer_batch(gap, gap, remaining.min(burst) as u32, PACE_TOKEN, 0);
                }
                // Jitter-free retries ride the same batching: the burst
                // leader arms one retry-check batch covering itself and
                // its burst, each check landing exactly `initial_rto`
                // after the probe it guards (send times are `index·gap`,
                // so a stride of `gap` keeps the offsets aligned).
                if self.config.retry.enabled()
                    && self.config.retry.jitter == SimDuration::ZERO
                    && i.is_multiple_of(burst)
                {
                    let count = 1 + remaining.min(burst);
                    ctx.set_timer_batch(
                        self.config.retry.rto_after(0),
                        gap,
                        count as u32,
                        RETRY_BASE | i as u64,
                        1,
                    );
                }
            }
            return;
        }
        if token & RETRY_BASE != 0 {
            self.on_retry_check(ctx, (token ^ RETRY_BASE) as usize);
        }
    }

    netsim::impl_host_downcast!();
}

/// The offline correlation pass over recorded probe/response streams —
/// the paper's post-processing, as a pure function so sharded censuses
/// can run it over merged record streams (see [`crate::shard`]).
///
/// Matching is by `(dst_port, txid)`; the first response inside the
/// timeout window wins, later matches count as duplicates, and responses
/// past the window count as late. Borrowing wrapper over
/// [`correlate_owned`] for callers that keep their records (the live
/// scanner's [`TransactionalScanner::outcome`]).
pub fn correlate(
    probes: &[ProbeRecord],
    responses: &[ResponseRecord],
    timeout: SimDuration,
) -> ScanOutcome {
    correlate_owned(probes.to_vec(), responses.to_vec(), timeout)
}

/// [`correlate`] taking ownership: probes and matched response payloads
/// move into the resulting transactions with no copying. The variant the
/// sharded merge and pcap ingestion use — record streams are the bulk of
/// a census's memory.
pub fn correlate_owned(
    probes: Vec<ProbeRecord>,
    responses: Vec<ResponseRecord>,
    timeout: SimDuration,
) -> ScanOutcome {
    Correlator::new().correlate(probes, responses, timeout)
}

/// Reusable correlation scratch. Correlation's only side allocation is
/// the `(port, txid) → probe` index map; a `Correlator` keeps that map's
/// capacity across calls, so a sharded merge correlating K shard groups
/// back to back allocates the map once instead of K times. One-shot
/// callers use [`correlate_owned`], which wraps a fresh instance.
#[derive(Debug, Default)]
pub struct Correlator {
    index: HashMap<(u16, u16), usize>,
}

impl Correlator {
    /// An empty scratch; capacity grows on first use.
    pub fn new() -> Self {
        Correlator::default()
    }

    /// Below this many probes, matching walks the probe list instead of
    /// building the hash index: for the small per-scan batches of a warm
    /// steady-state world, a handful of `(u16, u16)` compares beats
    /// hashing every tuple twice.
    const LINEAR_SCAN_MAX: usize = 32;

    /// One correlation pass, identical to [`correlate_owned`].
    pub fn correlate(
        &mut self,
        probes: Vec<ProbeRecord>,
        responses: Vec<ResponseRecord>,
        timeout: SimDuration,
    ) -> ScanOutcome {
        let linear = probes.len() <= Self::LINEAR_SCAN_MAX;
        if !linear {
            self.index.clear();
            self.index.reserve(probes.len());
            for (i, p) in probes.iter().enumerate() {
                self.index.insert((p.src_port, p.txid), i);
            }
        }
        let mut transactions: Vec<Transaction> = probes
            .into_iter()
            .map(|p| Transaction {
                probe: p,
                response: None,
            })
            .collect();
        let mut unmatched = 0usize;
        let mut late = 0usize;
        let mut superseded = 0usize;
        for r in responses {
            let Some(txid) = dnswire::peek_id(&r.payload) else {
                unmatched += 1;
                continue;
            };
            // Like the index (whose inserts overwrite), a duplicate
            // `(port, txid)` tuple resolves to the *last* matching probe.
            let found = if linear {
                transactions
                    .iter()
                    .rposition(|t| t.probe.src_port == r.dst_port && t.probe.txid == txid)
            } else {
                self.index.get(&(r.dst_port, txid)).copied()
            };
            let Some(probe_idx) = found else {
                unmatched += 1;
                continue;
            };
            let t = &mut transactions[probe_idx];
            if r.received_at - t.probe.sent_at > timeout {
                late += 1;
                continue;
            }
            if t.response.is_some() {
                // A second answer for an already-answered tuple: a wire
                // duplicate, or the answer to a superseded retransmission
                // attempt. Deduplicated — the first response stands.
                superseded += 1;
                continue;
            }
            t.response = Some(r);
        }
        ScanOutcome {
            transactions,
            unmatched_responses: unmatched,
            late_responses: late,
            late_answers_discarded: superseded,
            retry: RetryStats::default(),
        }
    }
}

/// Install a scanner at `node`, run the whole scan to quiescence, and
/// return the correlated outcome. Convenience wrapper used by benches,
/// examples, and the census pipeline.
pub fn run_scan(sim: &mut Simulator, node: NodeId, config: ScanConfig) -> ScanOutcome {
    let timeout = config.timeout;
    let (probes, responses, retry) = run_scan_raw(sim, node, config);
    let mut outcome = correlate_owned(probes, responses, timeout);
    outcome.retry = retry;
    outcome
}

/// Run the scan like [`run_scan`] but return the *raw* probe/response
/// streams (plus retransmission counters) instead of correlating — the
/// per-shard collection step of a sharded census, whose correlation
/// happens once over the merged streams.
pub fn run_scan_raw(
    sim: &mut Simulator,
    node: NodeId,
    config: ScanConfig,
) -> (Vec<ProbeRecord>, Vec<ResponseRecord>, RetryStats) {
    sim.install(node, TransactionalScanner::new(config));
    sim.schedule_timer(node, SimDuration::ZERO, PACE_TOKEN);
    sim.run();
    // The scanner is done; move the streams out rather than copying
    // every payload (these vectors are the bulk of a shard's memory).
    let scanner = sim
        .host_as_mut::<TransactionalScanner>(node)
        .expect("scanner installed");
    (
        std::mem::take(&mut scanner.probes),
        std::mem::take(&mut scanner.responses),
        scanner.retry_stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::playground;
    use netsim::{SimConfig, SimTime};

    #[test]
    fn probe_tuples_are_unique() {
        let cfg = ScanConfig::new(Vec::new());
        let mut seen = std::collections::HashSet::new();
        for i in 0..200_000usize {
            assert!(seen.insert(cfg.probe_tuple(i)), "tuple collision at {i}");
        }
    }

    #[test]
    fn scanner_paces_probes() {
        let ips: Vec<Ipv4Addr> = (1..=5).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
        let mut all = vec![Ipv4Addr::new(192, 0, 2, 1)];
        all.extend(&ips);
        let (topo, nodes) = playground(&all);
        let mut sim = Simulator::new(topo, SimConfig::default());
        let mut cfg = ScanConfig::new(ips);
        cfg.inter_probe_gap = SimDuration::from_millis(10);
        let outcome = run_scan(&mut sim, nodes[0], cfg);
        assert_eq!(outcome.transactions.len(), 5);
        // Hostless sinks never answer: all unanswered.
        assert_eq!(outcome.answered_count(), 0);
        // Pacing: probes 10 ms apart.
        let times: Vec<SimTime> = outcome
            .transactions
            .iter()
            .map(|t| t.probe.sent_at)
            .collect();
        for w in times.windows(2) {
            assert_eq!((w[1] - w[0]).as_millis(), 10);
        }
    }

    #[test]
    fn correlation_matches_by_port_and_txid() {
        // Handcraft a scanner state with two probes and a response for the
        // second only.
        let cfg = ScanConfig::new(vec![
            Ipv4Addr::new(203, 0, 113, 1),
            Ipv4Addr::new(203, 0, 113, 2),
        ]);
        let mut s = TransactionalScanner::new(cfg);
        for (i, target) in s.config.targets.clone().iter().enumerate() {
            let (port, txid) = s.config.probe_tuple(i);
            s.probes.push(ProbeRecord {
                index: i,
                target: *target,
                sent_at: SimTime(0),
                src_port: port,
                txid,
            });
        }
        let (port1, txid1) = s.config.probe_tuple(1);
        let resp = MessageBuilder::query(txid1, study::study_qname(), RrType::A)
            .build()
            .response_skeleton();
        s.responses.push(ResponseRecord {
            received_at: SimTime(1_000_000),
            src: Ipv4Addr::new(8, 8, 8, 8),
            dst_port: port1,
            payload: resp.encode().into(),
        });
        let o = s.outcome();
        assert!(o.transactions[0].response.is_none());
        assert_eq!(
            o.transactions[1].response_src(),
            Some(Ipv4Addr::new(8, 8, 8, 8))
        );
        assert_eq!(o.unmatched_responses, 0);
    }

    #[test]
    fn late_responses_counted_not_matched() {
        let cfg = ScanConfig::new(vec![Ipv4Addr::new(203, 0, 113, 1)]);
        let timeout = cfg.timeout;
        let mut s = TransactionalScanner::new(cfg);
        let (port, txid) = s.config.probe_tuple(0);
        s.probes.push(ProbeRecord {
            index: 0,
            target: Ipv4Addr::new(203, 0, 113, 1),
            sent_at: SimTime(0),
            src_port: port,
            txid,
        });
        let resp = MessageBuilder::query(txid, study::study_qname(), RrType::A)
            .build()
            .response_skeleton();
        s.responses.push(ResponseRecord {
            received_at: SimTime::ZERO + timeout + SimDuration::from_micros(1),
            src: Ipv4Addr::new(8, 8, 8, 8),
            dst_port: port,
            payload: resp.encode().into(),
        });
        let o = s.outcome();
        assert!(o.transactions[0].response.is_none());
        assert_eq!(o.late_responses, 1);
    }

    #[test]
    fn duplicates_and_garbage_counted_unmatched() {
        let cfg = ScanConfig::new(vec![Ipv4Addr::new(203, 0, 113, 1)]);
        let mut s = TransactionalScanner::new(cfg);
        let (port, txid) = s.config.probe_tuple(0);
        s.probes.push(ProbeRecord {
            index: 0,
            target: Ipv4Addr::new(203, 0, 113, 1),
            sent_at: SimTime(0),
            src_port: port,
            txid,
        });
        let resp = MessageBuilder::query(txid, study::study_qname(), RrType::A)
            .build()
            .response_skeleton()
            .encode();
        for _ in 0..2 {
            s.responses.push(ResponseRecord {
                received_at: SimTime(1),
                src: Ipv4Addr::new(8, 8, 8, 8),
                dst_port: port,
                payload: resp.clone().into(),
            });
        }
        s.responses.push(ResponseRecord {
            received_at: SimTime(2),
            src: Ipv4Addr::new(9, 9, 9, 9),
            dst_port: port,
            payload: vec![0x01].into(), // too short for a txid
        });
        let o = s.outcome();
        assert!(o.transactions[0].response.is_some());
        assert_eq!(o.unmatched_responses, 1, "garbage");
        assert_eq!(o.late_answers_discarded, 1, "duplicate deduplicated");
    }

    /// A minimal DNS-ish responder: answers every query with a response
    /// skeleton echoing the query's transaction id.
    struct Responder;
    impl Host for Responder {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            let Some(txid) = dnswire::peek_id(&dgram.payload) else {
                return;
            };
            let resp = MessageBuilder::query(txid, study::study_qname(), RrType::A)
                .build()
                .response_skeleton()
                .encode();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dgram.dst_port,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.into(),
            });
        }
        netsim::impl_host_downcast!();
    }

    /// Build a lossy playground world with `n` responding targets and run
    /// one scan under `retry`, returning the outcome.
    fn lossy_scan(n: u8, loss: f64, seed: u64, retry: RetryPolicy) -> ScanOutcome {
        let ips: Vec<Ipv4Addr> = (1..=n).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
        let mut all = vec![Ipv4Addr::new(192, 0, 2, 1)];
        all.extend(&ips);
        let (topo, nodes) = playground(&all);
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                seed,
                faults: netsim::FaultPlan::lossy(loss),
                ..SimConfig::default()
            },
        );
        for node in &nodes[1..] {
            sim.install(*node, Responder);
        }
        let cfg = ScanConfig::new(ips).with_retry(retry);
        run_scan(&mut sim, nodes[0], cfg)
    }

    #[test]
    fn retransmissions_recover_answers_lost_to_faults() {
        let single = lossy_scan(40, 0.4, 11, RetryPolicy::none());
        let retried = lossy_scan(40, 0.4, 11, RetryPolicy::retries(3));
        assert!(
            single.answered_count() < 40,
            "the lossy world must actually lose probes (got {}/40)",
            single.answered_count()
        );
        assert!(
            retried.answered_count() > single.answered_count(),
            "retries recover answers: {} vs {}",
            retried.answered_count(),
            single.answered_count()
        );
        assert!(retried.retry.retransmits_sent > 0);
        assert!(
            retried.retry.answered_by_retry() > 0,
            "some probe must be answered on attempt >= 2"
        );
        // Attempt-1 answers + retry answers = all answers.
        let histogram_total: u64 = retried.retry.answered_on_attempt.iter().sum();
        assert_eq!(histogram_total, retried.answered_count() as u64);
        // Single-shot runs carry zero retry accounting.
        assert_eq!(single.retry, crate::records::RetryStats::default());
    }

    #[test]
    fn retried_scans_are_deterministic() {
        let policy = RetryPolicy::retries(2).with_jitter(SimDuration::from_millis(3));
        let a = lossy_scan(25, 0.3, 77, policy);
        let b = lossy_scan(25, 0.3, 77, policy);
        assert_eq!(a, b, "same seed, same policy => bit-identical outcome");
        let c = lossy_scan(25, 0.3, 78, policy);
        assert_ne!(a, c, "a different seed redraws the fault pattern");
    }

    #[test]
    fn retry_on_lossless_world_sends_nothing_extra() {
        let o = lossy_scan(10, 0.0, 5, RetryPolicy::retries(3));
        assert_eq!(o.answered_count(), 10);
        assert_eq!(
            o.retry.retransmits_sent, 0,
            "every probe answered first try"
        );
        assert_eq!(o.retry.answered_on_attempt[0], 10);
        assert_eq!(o.retry.answered_by_retry(), 0);
    }

    #[test]
    fn duplicate_faults_do_not_double_count_answers() {
        // A duplicating (but lossless) wire: every probe and answer may be
        // cloned. Each probe must still end up with exactly one response,
        // clones landing in `late_answers_discarded`.
        let ips: Vec<Ipv4Addr> = (1..=10).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
        let mut all = vec![Ipv4Addr::new(192, 0, 2, 1)];
        all.extend(&ips);
        let (topo, nodes) = playground(&all);
        let faults = netsim::FaultPlan::uniform(netsim::FaultConfig {
            duplicate_probability: 1.0,
            ..netsim::FaultConfig::none()
        });
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                seed: 3,
                faults,
                ..SimConfig::default()
            },
        );
        for node in &nodes[1..] {
            sim.install(*node, Responder);
        }
        let o = run_scan(&mut sim, nodes[0], ScanConfig::new(ips));
        assert_eq!(o.answered_count(), 10, "one answer per probe, no more");
        assert!(o.late_answers_discarded > 0, "clones were deduplicated");
        assert_eq!(o.unmatched_responses, 0);
    }

    #[test]
    fn target_keyed_tuples_are_order_invariant_and_unique() {
        let targets: Vec<Ipv4Addr> = (0..2000u32)
            .map(|i| Ipv4Addr::from(0xCB00_0000 + i))
            .collect();
        let forward = ScanConfig::new(targets.clone()).with_target_keyed_tuples();
        let mut reversed_targets = targets.clone();
        reversed_targets.reverse();
        let reversed = ScanConfig::new(reversed_targets).with_target_keyed_tuples();
        let mut seen = std::collections::HashSet::new();
        for (i, t) in targets.iter().enumerate() {
            let tuple = forward.tuple_for(i, *t);
            assert!(seen.insert(tuple), "tuple collision at {t}");
            // The tuple depends only on the target: probing the same
            // address at a different index (any order, any partition)
            // yields the same flow identity.
            assert_eq!(tuple, reversed.tuple_for(targets.len() - 1 - i, *t));
        }
    }

    #[test]
    fn target_keyed_retries_answer_and_correlate() {
        // End-to-end under the target-keyed scheme: lossy world, retries
        // enabled — the answer path's map-based inverse must stop
        // retransmissions just like the arithmetic one.
        let ips: Vec<Ipv4Addr> = (1..=30).map(|i| Ipv4Addr::new(203, 0, 113, i)).collect();
        let mut all = vec![Ipv4Addr::new(192, 0, 2, 1)];
        all.extend(&ips);
        let (topo, nodes) = playground(&all);
        let mut sim = Simulator::new(
            topo,
            SimConfig {
                seed: 19,
                faults: netsim::FaultPlan::lossy(0.3),
                ..SimConfig::default()
            },
        );
        for node in &nodes[1..] {
            sim.install(*node, Responder);
        }
        let cfg = ScanConfig::new(ips.clone())
            .with_target_keyed_tuples()
            .with_retry(RetryPolicy::retries(3));
        let o = run_scan(&mut sim, nodes[0], cfg);
        assert!(o.answered_count() > 0);
        assert!(o.retry.retransmits_sent > 0);
        let histogram_total: u64 = o.retry.answered_on_attempt.iter().sum();
        assert_eq!(histogram_total, o.answered_count() as u64);
        for t in o.transactions.iter().filter(|t| t.response.is_some()) {
            // Correlation matched the probe's own tuple, i.e. the response
            // really belongs to this target.
            let ip = u32::from(t.probe.target);
            assert_eq!(t.probe.txid, (ip >> 16) as u16);
        }
    }

    #[test]
    fn query_encoding_uses_target_names() {
        let ips = vec![Ipv4Addr::new(203, 0, 113, 7)];
        let mut all = vec![Ipv4Addr::new(192, 0, 2, 1)];
        all.extend(&ips);
        let (topo, nodes) = playground(&all);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.tap(nodes[0]);
        let cfg = ScanConfig::new(ips).with_query_encoding();
        let _ = run_scan(&mut sim, nodes[0], cfg);
        let pcap = sim.take_capture(nodes[0]).unwrap();
        let recs = netsim::pcap::read_pcap(&pcap).unwrap();
        assert_eq!(recs.len(), 1);
        match netsim::wire::decode(&recs[0].data).unwrap() {
            netsim::wire::DecodedPacket::Udp(d) => {
                let m = dnswire::Message::decode(&d.payload).unwrap();
                assert_eq!(
                    m.questions[0].qname.to_string(),
                    "203-0-113-7.scan.odns-study.example."
                );
            }
            other => panic!("expected UDP, got {other:?}"),
        }
    }
}
