//! ODNS component classification — the §4.1 rules.
//!
//! Given a correlated transaction, the classifier applies:
//!
//! ```text
//! Transparent Forwarder  if IP_target ≠ IP_response
//! Recursive Forwarder    if IP_target = IP_response ∧ IP_response ≠ A_resolver
//! Recursive Resolver     if IP_target = IP_response ∧ IP_response = A_resolver
//! ```
//!
//! where `A_resolver` is the dynamic A record (the authoritative server's
//! reflection of its immediate client) and the static control record must
//! be present and unaltered for the response to count at all (strict
//! sanitization, §4.2).

use crate::records::Transaction;
use std::fmt;
use std::net::Ipv4Addr;

/// The three ODNS component classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OdnsClass {
    /// Relays with spoofed (preserved) client source; resolver answers the
    /// client directly.
    TransparentForwarder,
    /// Rewrites the source; answers come back from the probed address but
    /// resolution happened elsewhere.
    RecursiveForwarder,
    /// Resolves itself; the probed address *is* the resolver.
    RecursiveResolver,
}

impl OdnsClass {
    /// All classes, in the paper's table order.
    pub fn all() -> [OdnsClass; 3] {
        [
            OdnsClass::RecursiveResolver,
            OdnsClass::RecursiveForwarder,
            OdnsClass::TransparentForwarder,
        ]
    }

    /// Display label matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            OdnsClass::TransparentForwarder => "Transparent Forwarder",
            OdnsClass::RecursiveForwarder => "Recursive Forwarder",
            OdnsClass::RecursiveResolver => "Recursive Resolver",
        }
    }
}

impl fmt::Display for OdnsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Why a response was discarded instead of classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discard {
    /// No response within the timeout.
    NoResponse,
    /// Payload did not parse as DNS.
    Malformed,
    /// Non-zero RCODE or empty answer section.
    NoAnswer,
    /// Strict sanitization: expected exactly two A records.
    WrongRecordCount,
    /// Strict sanitization: the static control record was missing or
    /// altered — a manipulated response (§4.2).
    ControlRecordViolated,
}

/// Result of classifying one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A valid ODNS component, with the resolver address it exposed.
    Classified {
        /// The component class.
        class: OdnsClass,
        /// `A_resolver` — the dynamic record (the resolver's egress as the
        /// authoritative server saw it).
        a_resolver: Ipv4Addr,
        /// `IP_response` — who answered the scanner.
        response_src: Ipv4Addr,
    },
    /// Discarded, with the reason.
    Discarded(Discard),
}

impl Verdict {
    /// The class, if classified.
    pub fn class(&self) -> Option<OdnsClass> {
        match self {
            Verdict::Classified { class, .. } => Some(*class),
            Verdict::Discarded(_) => None,
        }
    }
}

/// Classifier configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// The static control record's expected value.
    pub control_a: Ipv4Addr,
    /// Strict mode requires both A records with the control intact (the
    /// paper's default). Non-strict accepts any answer with ≥1 A record —
    /// the Shadowserver-compatible ablation that "leads to similar numbers
    /// than Shadowserver" (§4.2).
    pub strict: bool,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            control_a: odns::study::CONTROL_A,
            strict: true,
        }
    }
}

impl ClassifierConfig {
    /// The Shadowserver-compatible relaxed configuration.
    pub fn relaxed() -> Self {
        ClassifierConfig {
            strict: false,
            ..Self::default()
        }
    }
}

/// Classify one correlated transaction.
pub fn classify(t: &Transaction, config: &ClassifierConfig) -> Verdict {
    let Some(response) = &t.response else {
        return Verdict::Discarded(Discard::NoResponse);
    };
    let Some(msg) = response.message() else {
        return Verdict::Discarded(Discard::Malformed);
    };
    let addrs = msg.answer_a_addrs();
    if addrs.is_empty() || msg.header.flags.rcode != dnswire::Rcode::NoError {
        return Verdict::Discarded(Discard::NoAnswer);
    }

    let a_resolver = if config.strict {
        if addrs.len() != 2 {
            return Verdict::Discarded(Discard::WrongRecordCount);
        }
        // Dynamic record first, control second (the study zone's layout);
        // accept either order but the control value must appear exactly
        // once and unaltered.
        match (addrs[0] == config.control_a, addrs[1] == config.control_a) {
            (false, true) => addrs[0],
            (true, false) => addrs[1],
            _ => return Verdict::Discarded(Discard::ControlRecordViolated),
        }
    } else {
        // Relaxed: first A record wins, no control check.
        addrs[0]
    };

    let class = if t.probe.target != response.src {
        OdnsClass::TransparentForwarder
    } else if response.src != a_resolver {
        OdnsClass::RecursiveForwarder
    } else {
        OdnsClass::RecursiveResolver
    };
    Verdict::Classified {
        class,
        a_resolver,
        response_src: response.src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{ProbeRecord, ResponseRecord};
    use dnswire::{DnsName, MessageBuilder, Record, RrType};
    use netsim::SimTime;

    const TARGET: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 50);
    const CONTROL: Ipv4Addr = odns::study::CONTROL_A;

    fn tx(response_src: Ipv4Addr, addrs: &[Ipv4Addr]) -> Transaction {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let query = MessageBuilder::query(7, qname.clone(), RrType::A).build();
        let mut resp = MessageBuilder::response_to(&query)
            .recursion_available(true)
            .build();
        for a in addrs {
            resp.answers.push(Record::a(qname.clone(), 300, *a));
        }
        Transaction {
            probe: ProbeRecord {
                index: 0,
                target: TARGET,
                sent_at: SimTime(0),
                src_port: 34000,
                txid: 7,
            },
            response: Some(ResponseRecord {
                received_at: SimTime(1_000),
                src: response_src,
                dst_port: 34000,
                payload: resp.encode().into(),
            }),
        }
    }

    fn cfg() -> ClassifierConfig {
        ClassifierConfig::default()
    }

    #[test]
    fn transparent_forwarder_rule() {
        // Response arrives from the resolver, not the probed IP.
        let v = classify(&tx(RESOLVER, &[RESOLVER, CONTROL]), &cfg());
        assert_eq!(v.class(), Some(OdnsClass::TransparentForwarder));
        match v {
            Verdict::Classified {
                a_resolver,
                response_src,
                ..
            } => {
                assert_eq!(a_resolver, RESOLVER);
                assert_eq!(response_src, RESOLVER);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn recursive_forwarder_rule() {
        // Probed IP answers, but the auth saw a different client.
        let v = classify(&tx(TARGET, &[RESOLVER, CONTROL]), &cfg());
        assert_eq!(v.class(), Some(OdnsClass::RecursiveForwarder));
    }

    #[test]
    fn recursive_resolver_rule() {
        // Probed IP answers and is itself the auth's client.
        let v = classify(&tx(TARGET, &[TARGET, CONTROL]), &cfg());
        assert_eq!(v.class(), Some(OdnsClass::RecursiveResolver));
    }

    #[test]
    fn control_record_order_tolerated() {
        let v = classify(&tx(TARGET, &[CONTROL, TARGET]), &cfg());
        assert_eq!(v.class(), Some(OdnsClass::RecursiveResolver));
    }

    #[test]
    fn manipulation_discarded_in_strict_mode() {
        // Control record replaced by an ad server: manipulated.
        let bad_control = Ipv4Addr::new(10, 66, 66, 66);
        let v = classify(&tx(TARGET, &[TARGET, bad_control]), &cfg());
        assert_eq!(v, Verdict::Discarded(Discard::ControlRecordViolated));
        // Single record: wrong count.
        let v = classify(&tx(TARGET, &[TARGET]), &cfg());
        assert_eq!(v, Verdict::Discarded(Discard::WrongRecordCount));
        // Both records claiming control value: ambiguous, discard.
        let v = classify(&tx(TARGET, &[CONTROL, CONTROL]), &cfg());
        assert_eq!(v, Verdict::Discarded(Discard::ControlRecordViolated));
    }

    #[test]
    fn relaxed_mode_accepts_single_record() {
        // The §4.2 ablation: without the strict check we count like
        // Shadowserver.
        let v = classify(&tx(TARGET, &[TARGET]), &ClassifierConfig::relaxed());
        assert_eq!(v.class(), Some(OdnsClass::RecursiveResolver));
        let v = classify(&tx(TARGET, &[RESOLVER]), &ClassifierConfig::relaxed());
        assert_eq!(v.class(), Some(OdnsClass::RecursiveForwarder));
    }

    #[test]
    fn no_response_and_malformed_discards() {
        let t = Transaction {
            probe: ProbeRecord {
                index: 0,
                target: TARGET,
                sent_at: SimTime(0),
                src_port: 1,
                txid: 1,
            },
            response: None,
        };
        assert_eq!(
            classify(&t, &cfg()),
            Verdict::Discarded(Discard::NoResponse)
        );

        let mut t2 = tx(TARGET, &[TARGET, CONTROL]);
        t2.response.as_mut().unwrap().payload = vec![1, 2, 3].into();
        assert_eq!(
            classify(&t2, &cfg()),
            Verdict::Discarded(Discard::Malformed)
        );
    }

    #[test]
    fn empty_answer_discarded() {
        let v = classify(&tx(TARGET, &[]), &cfg());
        assert_eq!(v, Verdict::Discarded(Discard::NoAnswer));
    }

    #[test]
    fn classification_is_total_over_answered_shapes() {
        // Every two-record response with intact control maps to exactly one
        // class (the rules partition the space).
        let others = [TARGET, RESOLVER, Ipv4Addr::new(7, 7, 7, 7)];
        for response_src in others {
            for a_resolver in others {
                let v = classify(&tx(response_src, &[a_resolver, CONTROL]), &cfg());
                assert!(v.class().is_some(), "src={response_src} a={a_resolver}");
            }
        }
    }
}
