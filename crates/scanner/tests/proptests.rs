//! Property tests for the scanner's correlation and classification.
//!
//! Invariants:
//! * probe `(port, TXID)` tuples are unique over any index range;
//! * correlation is insensitive to response arrival order;
//! * each probe matches at most one response; extras count as unmatched;
//! * the classifier is total over answered transactions and never panics;
//! * merging shuffled per-shard record streams never drops or duplicates
//!   a transaction, and never mixes shards up.

use dnswire::{DnsName, MessageBuilder, Record, RrType};
use netsim::{SimDuration, SimTime};
use proptest::prelude::*;
use scanner::records::{ProbeRecord, ResponseRecord};
use scanner::{
    classify, merge_shard_records, ClassifierConfig, ScanConfig, ShardRecords, TransactionalScanner,
};
use std::net::Ipv4Addr;

fn response_payload(txid: u16, addrs: &[Ipv4Addr]) -> Vec<u8> {
    let qname = DnsName::parse("odns-study.example.").unwrap();
    let q = MessageBuilder::query(txid, qname.clone(), RrType::A).build();
    let mut m = MessageBuilder::response_to(&q)
        .recursion_available(true)
        .build();
    for a in addrs {
        m.answers.push(Record::a(qname.clone(), 300, *a));
    }
    m.encode()
}

/// Build a scanner state with `n` probes and responses for a subset, then
/// shuffle responses by the given permutation seed.
fn scanner_with(n: usize, answered: &[usize], shuffle_seed: u64) -> TransactionalScanner {
    let targets: Vec<Ipv4Addr> = (0..n)
        .map(|i| Ipv4Addr::new(203, 0, (i >> 8) as u8, (i & 0xFF) as u8))
        .collect();
    let cfg = ScanConfig::new(targets.clone());
    let mut s = TransactionalScanner::new(cfg);
    for (i, t) in targets.iter().enumerate() {
        let (port, txid) = probe_tuple(i);
        s.probes.push(ProbeRecord {
            index: i,
            target: *t,
            sent_at: SimTime(i as u64),
            src_port: port,
            txid,
        });
    }
    let mut responses = Vec::new();
    for &i in answered {
        if i >= n {
            continue;
        }
        let (port, txid) = probe_tuple(i);
        responses.push(ResponseRecord {
            received_at: SimTime(1000 + i as u64),
            src: Ipv4Addr::new(8, 8, 8, 8),
            dst_port: port,
            payload: response_payload(txid, &[Ipv4Addr::new(8, 8, 8, 8), odns::study::CONTROL_A])
                .into(),
        });
    }
    // Deterministic shuffle.
    let mut state = shuffle_seed | 1;
    for i in (1..responses.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        responses.swap(i, j);
    }
    s.responses = responses;
    s
}

/// `probe_tuple` is a pure function of the default config.
fn probe_tuple(i: usize) -> (u16, u16) {
    ScanConfig::new(vec![]).probe_tuple(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn correlation_order_independent(
        n in 1usize..80,
        answered in proptest::collection::btree_set(0usize..80, 0..40),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let answered: Vec<usize> = answered.into_iter().filter(|i| *i < n).collect();
        let a = scanner_with(n, &answered, seed_a).outcome();
        let b = scanner_with(n, &answered, seed_b).outcome();
        prop_assert_eq!(a.answered_count(), answered.len());
        prop_assert_eq!(b.answered_count(), answered.len());
        for (ta, tb) in a.transactions.iter().zip(&b.transactions) {
            prop_assert_eq!(ta.response_src(), tb.response_src());
        }
    }

    #[test]
    fn duplicates_counted_never_double_matched(
        n in 1usize..40,
        dup_of in 0usize..40,
        copies in 2usize..5,
    ) {
        let idx = dup_of % n;
        let mut s = scanner_with(n, &[idx], 1);
        // Add extra copies of the same response.
        let original = s.responses[0].clone();
        for _ in 1..copies {
            s.responses.push(original.clone());
        }
        let o = s.outcome();
        prop_assert_eq!(o.answered_count(), 1);
        prop_assert_eq!(o.unmatched_responses, 0);
        prop_assert_eq!(o.late_answers_discarded, copies - 1);
    }

    #[test]
    fn classifier_total_and_panic_free(
        target in any::<[u8; 4]>(),
        src in any::<[u8; 4]>(),
        addrs in proptest::collection::vec(any::<[u8; 4]>(), 0..4),
        strict in any::<bool>(),
    ) {
        let target = Ipv4Addr::from(target);
        let src = Ipv4Addr::from(src);
        let addr_list: Vec<Ipv4Addr> = addrs.into_iter().map(Ipv4Addr::from).collect();
        let (port, txid) = ScanConfig::new(vec![]).probe_tuple(0);
        let t = scanner::Transaction {
            probe: ProbeRecord { index: 0, target, sent_at: SimTime(0), src_port: port, txid },
            response: Some(ResponseRecord {
                received_at: SimTime(1),
                src,
                dst_port: port,
                payload: response_payload(txid, &addr_list).into(),
            }),
        };
        let cfg = ClassifierConfig { strict, ..ClassifierConfig::default() };
        let v = classify(&t, &cfg); // must not panic
        if let Some(class) = v.class() {
            // Classified ⇒ the class is consistent with the rules.
            match class {
                scanner::OdnsClass::TransparentForwarder => prop_assert_ne!(target, src),
                _ => prop_assert_eq!(target, src),
            }
        }
    }

    #[test]
    fn probe_tuple_uniqueness_over_ranges(start in 0usize..500_000, len in 1usize..5_000) {
        let cfg = ScanConfig::new(vec![]);
        let mut seen = std::collections::HashSet::with_capacity(len);
        for i in start..start + len {
            prop_assert!(seen.insert(cfg.probe_tuple(i)), "collision at {i}");
        }
    }

    #[test]
    fn shard_merge_never_drops_or_duplicates(
        shard_sizes in proptest::collection::vec(1usize..40, 1..6),
        answered_bits in proptest::collection::vec(any::<u64>(), 1..6),
        shard_order_seed in any::<u64>(),
        response_seeds in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        // Build one ShardRecords per shard from a fully simulated scanner
        // state, shuffle each shard's responses and the shard list itself,
        // and verify the merge reconstructs every transaction exactly once.
        let mut shards = Vec::new();
        let mut expected_answered = 0usize;
        let mut expected_probes = 0usize;
        let mut expected_targets: Vec<(u32, Ipv4Addr, bool)> = Vec::new();
        for (s, &n) in shard_sizes.iter().enumerate() {
            let bits = answered_bits[s % answered_bits.len()];
            let answered: Vec<usize> = (0..n).filter(|i| bits >> (i % 64) & 1 == 1).collect();
            let seed = response_seeds[s % response_seeds.len()];
            let state = scanner_with(n, &answered, seed);
            expected_answered += answered.len();
            expected_probes += n;
            for (i, p) in state.probes.iter().enumerate() {
                expected_targets.push((s as u32, p.target, answered.contains(&i)));
            }
            shards.push(ShardRecords::new(s as u32, state.probes.clone(), state.responses.clone()));
        }
        // Shuffle the shard list deterministically.
        let mut state = shard_order_seed | 1;
        for i in (1..shards.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shards.swap(i, j);
        }

        let merged = merge_shard_records(shards, SimDuration::from_secs(20));

        // Nothing dropped, nothing duplicated: one transaction per probe,
        // global indices gap-free, answered set preserved per shard+target.
        prop_assert_eq!(merged.transactions.len(), expected_probes);
        prop_assert_eq!(merged.answered_count(), expected_answered);
        prop_assert_eq!(merged.unmatched_responses, 0);
        prop_assert_eq!(merged.late_responses, 0);
        for (global, t) in merged.transactions.iter().enumerate() {
            prop_assert_eq!(t.probe.index, global, "indices must be gap-free after rebase");
        }
        // Shards concatenate in ascending shard order, so the expected
        // (shard, target, answered) triples line up positionally.
        for (t, (shard, target, was_answered)) in
            merged.transactions.iter().zip(&expected_targets)
        {
            prop_assert_eq!(t.probe.target, *target, "shard {} misplaced", shard);
            prop_assert_eq!(t.response.is_some(), *was_answered);
        }
    }
}
