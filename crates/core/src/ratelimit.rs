//! Per-source-prefix rate limiting.
//!
//! The paper's honeypot sensors answer at most one request every five
//! minutes *per source /24* — prefix-keyed rather than host-keyed so that
//! DoS "carpet bombs" (attacks sweeping a whole prefix of spoofed victims)
//! cannot multiply the sensor's output (§3.1).

use netsim::{SimDuration, SimTime, TokenBucket};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The covering /24 of an address, as a 24-bit-aligned u32.
pub fn prefix24(ip: Ipv4Addr) -> u32 {
    u32::from(ip) & 0xFFFF_FF00
}

/// Render a /24 key back to dotted form, e.g. `203.0.113.0/24`.
pub fn prefix24_to_string(prefix: u32) -> String {
    let ip = Ipv4Addr::from(prefix);
    format!("{ip}/24")
}

/// Bucket parameters for a prefix limiter.
#[derive(Debug, Clone, Copy)]
pub struct LimiterPolicy {
    /// Bucket capacity (burst size).
    pub capacity: u64,
    /// Tokens restored per period.
    pub refill: u64,
    /// Refill period.
    pub period: SimDuration,
}

impl LimiterPolicy {
    /// The paper's sensor policy: 1 answer / 5 min / source /24.
    pub fn one_per_5min() -> Self {
        LimiterPolicy {
            capacity: 1,
            refill: 1,
            period: SimDuration::from_secs(300),
        }
    }
}

/// A map of token buckets keyed by source /24.
#[derive(Debug)]
pub struct PrefixRateLimiter {
    policy: LimiterPolicy,
    buckets: HashMap<u32, TokenBucket>,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
}

impl PrefixRateLimiter {
    /// New limiter with the given per-prefix policy.
    pub fn new(policy: LimiterPolicy) -> Self {
        PrefixRateLimiter {
            policy,
            buckets: HashMap::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The sensor default (1 per 5 minutes per /24).
    pub fn sensor_default() -> Self {
        Self::new(LimiterPolicy::one_per_5min())
    }

    /// Admit or reject a request from `src` at `now`.
    ///
    /// A prefix's bucket is created on first sighting and anchored there
    /// ([`TokenBucket::new_at`]): refill periods are measured from the
    /// prefix's own first request, so the admit/shed sequence depends only
    /// on the inter-arrival times within the /24 — never on where those
    /// arrivals fall on the absolute simulated clock. A zero-anchored
    /// bucket would refill on absolute period boundaries and admit two
    /// requests seconds apart whenever they straddle one, which made shed
    /// counts depend on experiment scheduling (and, in sharded sweeps, on
    /// the shard partition that determines it).
    pub fn allow(&mut self, src: Ipv4Addr, now: SimTime) -> bool {
        let key = prefix24(src);
        let policy = self.policy;
        let bucket = self.buckets.entry(key).or_insert_with(|| {
            TokenBucket::new_at(policy.capacity, policy.refill, policy.period, now)
        });
        if bucket.try_take(now) {
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Number of distinct source prefixes seen.
    pub fn prefixes_seen(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_key_math() {
        assert_eq!(
            prefix24(Ipv4Addr::new(203, 0, 113, 77)),
            u32::from(Ipv4Addr::new(203, 0, 113, 0))
        );
        assert_eq!(
            prefix24_to_string(prefix24(Ipv4Addr::new(10, 1, 2, 3))),
            "10.1.2.0/24"
        );
    }

    #[test]
    fn same_prefix_shares_budget() {
        let mut l = PrefixRateLimiter::sensor_default();
        let t = SimTime::ZERO;
        assert!(l.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        // A different host in the same /24 is rejected — carpet-bomb guard.
        assert!(!l.allow(Ipv4Addr::new(203, 0, 113, 200), t));
        assert_eq!(l.prefixes_seen(), 1);
        assert_eq!((l.admitted, l.rejected), (1, 1));
    }

    #[test]
    fn different_prefixes_are_independent() {
        let mut l = PrefixRateLimiter::sensor_default();
        let t = SimTime::ZERO;
        assert!(l.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        assert!(l.allow(Ipv4Addr::new(203, 0, 114, 1), t));
        assert_eq!(l.prefixes_seen(), 2);
    }

    #[test]
    fn budget_recovers_after_period() {
        let mut l = PrefixRateLimiter::sensor_default();
        let src = Ipv4Addr::new(203, 0, 113, 1);
        assert!(l.allow(src, SimTime::ZERO));
        assert!(!l.allow(src, SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(l.allow(src, SimTime::ZERO + SimDuration::from_secs(300)));
    }

    #[test]
    fn shed_sequence_independent_of_absolute_arrival_time() {
        // Regression for the shard-invariance contract: the same probe
        // train (0 s, +2 s, +301 s within one /24) must produce the same
        // admitted/shed sequence wherever it starts on the simulated
        // clock. Before buckets were anchored at first sighting, a train
        // starting at 299 s had its +2 s probe admitted (absolute 300 s
        // refill boundary) while a train starting at 0 s shed it.
        let src = Ipv4Addr::new(203, 0, 113, 9);
        for start_secs in [0u64, 123, 299, 300, 1799, 86_400] {
            let t0 = SimTime::ZERO + SimDuration::from_secs(start_secs);
            let mut l = PrefixRateLimiter::sensor_default();
            assert!(l.allow(src, t0), "start {start_secs}s: first admitted");
            assert!(
                !l.allow(src, t0 + SimDuration::from_secs(2)),
                "start {start_secs}s: +2 s shed"
            );
            assert!(
                l.allow(src, t0 + SimDuration::from_secs(301)),
                "start {start_secs}s: +301 s admitted"
            );
            assert_eq!((l.admitted, l.rejected), (2, 1), "start {start_secs}s");
        }
    }

    #[test]
    fn splitting_a_prefix_across_limiters_double_admits() {
        // Documents why a /24's probes must land in exactly one shard:
        // every limiter instance grants the prefix its own budget, so a
        // shard-split source would double its admitted quota and the
        // merged shed counts would depend on the partition.
        let t = SimTime::ZERO;
        let mut whole = PrefixRateLimiter::sensor_default();
        assert!(whole.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        assert!(!whole.allow(Ipv4Addr::new(203, 0, 113, 2), t));

        let mut shard_a = PrefixRateLimiter::sensor_default();
        let mut shard_b = PrefixRateLimiter::sensor_default();
        assert!(shard_a.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        assert!(shard_b.allow(Ipv4Addr::new(203, 0, 113, 2), t));
        assert_eq!(shard_a.rejected + shard_b.rejected, 0, "budget doubled");
    }
}
