//! Per-source-prefix rate limiting.
//!
//! The paper's honeypot sensors answer at most one request every five
//! minutes *per source /24* — prefix-keyed rather than host-keyed so that
//! DoS "carpet bombs" (attacks sweeping a whole prefix of spoofed victims)
//! cannot multiply the sensor's output (§3.1).

use netsim::{SimDuration, SimTime, TokenBucket};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The covering /24 of an address, as a 24-bit-aligned u32.
pub fn prefix24(ip: Ipv4Addr) -> u32 {
    u32::from(ip) & 0xFFFF_FF00
}

/// Render a /24 key back to dotted form, e.g. `203.0.113.0/24`.
pub fn prefix24_to_string(prefix: u32) -> String {
    let ip = Ipv4Addr::from(prefix);
    format!("{ip}/24")
}

/// Bucket parameters for a prefix limiter.
#[derive(Debug, Clone, Copy)]
pub struct LimiterPolicy {
    /// Bucket capacity (burst size).
    pub capacity: u64,
    /// Tokens restored per period.
    pub refill: u64,
    /// Refill period.
    pub period: SimDuration,
}

impl LimiterPolicy {
    /// The paper's sensor policy: 1 answer / 5 min / source /24.
    pub fn one_per_5min() -> Self {
        LimiterPolicy {
            capacity: 1,
            refill: 1,
            period: SimDuration::from_secs(300),
        }
    }
}

/// A map of token buckets keyed by source /24.
#[derive(Debug)]
pub struct PrefixRateLimiter {
    policy: LimiterPolicy,
    buckets: HashMap<u32, TokenBucket>,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
}

impl PrefixRateLimiter {
    /// New limiter with the given per-prefix policy.
    pub fn new(policy: LimiterPolicy) -> Self {
        PrefixRateLimiter {
            policy,
            buckets: HashMap::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The sensor default (1 per 5 minutes per /24).
    pub fn sensor_default() -> Self {
        Self::new(LimiterPolicy::one_per_5min())
    }

    /// Admit or reject a request from `src` at `now`.
    pub fn allow(&mut self, src: Ipv4Addr, now: SimTime) -> bool {
        let key = prefix24(src);
        let policy = self.policy;
        let bucket = self
            .buckets
            .entry(key)
            .or_insert_with(|| TokenBucket::new(policy.capacity, policy.refill, policy.period));
        if bucket.try_take(now) {
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Number of distinct source prefixes seen.
    pub fn prefixes_seen(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_key_math() {
        assert_eq!(
            prefix24(Ipv4Addr::new(203, 0, 113, 77)),
            u32::from(Ipv4Addr::new(203, 0, 113, 0))
        );
        assert_eq!(
            prefix24_to_string(prefix24(Ipv4Addr::new(10, 1, 2, 3))),
            "10.1.2.0/24"
        );
    }

    #[test]
    fn same_prefix_shares_budget() {
        let mut l = PrefixRateLimiter::sensor_default();
        let t = SimTime::ZERO;
        assert!(l.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        // A different host in the same /24 is rejected — carpet-bomb guard.
        assert!(!l.allow(Ipv4Addr::new(203, 0, 113, 200), t));
        assert_eq!(l.prefixes_seen(), 1);
        assert_eq!((l.admitted, l.rejected), (1, 1));
    }

    #[test]
    fn different_prefixes_are_independent() {
        let mut l = PrefixRateLimiter::sensor_default();
        let t = SimTime::ZERO;
        assert!(l.allow(Ipv4Addr::new(203, 0, 113, 1), t));
        assert!(l.allow(Ipv4Addr::new(203, 0, 114, 1), t));
        assert_eq!(l.prefixes_seen(), 2);
    }

    #[test]
    fn budget_recovers_after_period() {
        let mut l = PrefixRateLimiter::sensor_default();
        let src = Ipv4Addr::new(203, 0, 113, 1);
        assert!(l.allow(src, SimTime::ZERO));
        assert!(!l.allow(src, SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(l.allow(src, SimTime::ZERO + SimDuration::from_secs(300)));
    }
}
