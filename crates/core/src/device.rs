//! Device profiles: the fingerprinting surface of CPE hardware.
//!
//! Appendix E of the paper attributes ~23 % of transparent forwarders to
//! MikroTik devices via Shodan/Censys port scans and banners ("we find a
//! strong correlation for 10 MikroTik ports"). The simulation gives every
//! forwarder an optional [`DeviceProfile`]; a banner-grabbing scanner (in
//! the `scanner` crate) probes the profile's ports exactly like Shodan
//! does, and the analysis crate reproduces the vendor attribution.

use netsim::{Ctx, Datagram, UdpSend};

/// CPE vendor families used by the population model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// MikroTik RouterOS devices — cheap, popular in emerging markets, and
    /// the paper's dominant fingerprint (§6).
    MikroTik,
    /// Generic Linux-based home gateways.
    GenericCpe,
    /// D-Link style consumer routers.
    DLink,
    /// Zyxel style carrier-supplied gateways.
    Zyxel,
    /// Huawei carrier CPE.
    Huawei,
}

impl Vendor {
    /// Human-readable vendor name (appears in banners).
    pub fn name(self) -> &'static str {
        match self {
            Vendor::MikroTik => "MikroTik",
            Vendor::GenericCpe => "GenericCPE",
            Vendor::DLink => "D-Link",
            Vendor::Zyxel => "Zyxel",
            Vendor::Huawei => "Huawei",
        }
    }

    /// All vendors, for iteration in generators and reports.
    pub fn all() -> [Vendor; 5] {
        [
            Vendor::MikroTik,
            Vendor::GenericCpe,
            Vendor::DLink,
            Vendor::Zyxel,
            Vendor::Huawei,
        ]
    }
}

/// The UDP port our banner probes target on MikroTik devices: 5678 is the
/// MikroTik Neighbor Discovery Protocol port, one of the vendor's
/// characteristic open ports.
pub const MIKROTIK_MNDP_PORT: u16 = 5678;
/// MikroTik bandwidth-test server port (also characteristic).
pub const MIKROTIK_BTEST_PORT: u16 = 2000;
/// Generic CPE management port used by several vendors.
pub const CPE_MGMT_PORT: u16 = 7547;

/// What a device exposes to port scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Vendor family.
    pub vendor: Vendor,
    /// UDP ports that answer probes with a banner.
    pub open_ports: Vec<u16>,
    /// Banner string returned from open ports.
    pub banner: String,
}

impl DeviceProfile {
    /// The MikroTik profile (MNDP + btest open, RouterOS banner).
    pub fn mikrotik() -> Self {
        DeviceProfile {
            vendor: Vendor::MikroTik,
            open_ports: vec![MIKROTIK_MNDP_PORT, MIKROTIK_BTEST_PORT],
            banner: "MikroTik RouterOS 6.45.9".to_string(),
        }
    }

    /// A quiet generic CPE: no banner ports at all.
    pub fn generic() -> Self {
        DeviceProfile {
            vendor: Vendor::GenericCpe,
            open_ports: vec![],
            banner: String::new(),
        }
    }

    /// A vendor profile exposing the shared management port.
    pub fn with_mgmt(vendor: Vendor) -> Self {
        DeviceProfile {
            vendor,
            open_ports: vec![CPE_MGMT_PORT],
            banner: format!("{} CPE", vendor.name()),
        }
    }

    /// Does this profile answer on `port`?
    pub fn answers_on(&self, port: u16) -> bool {
        self.open_ports.contains(&port)
    }
}

/// Shared handler for non-DNS probes hitting a forwarder/CPE: answer with
/// the banner when the port is open, ICMP port-unreachable otherwise
/// (closed ports are informative to scanners too).
pub fn handle_probe(ctx: &mut Ctx<'_>, dgram: &Datagram, profile: Option<&DeviceProfile>) {
    match profile {
        Some(p) if p.answers_on(dgram.dst_port) => {
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dgram.dst_port,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: p.banner.as_bytes().into(),
            });
        }
        _ => ctx.send_port_unreachable(dgram),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::Exchange;
    use netsim::{Host, IcmpKind, SimDuration};
    use std::net::Ipv4Addr;

    const DEV_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 99);
    const SCANNER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    struct Probeable(Option<DeviceProfile>);
    impl Host for Probeable {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            handle_probe(ctx, &dgram, self.0.as_ref());
        }
        netsim::impl_host_downcast!();
    }

    #[test]
    fn mikrotik_banner_on_open_port() {
        let mut ex = Exchange::new(
            DEV_IP,
            SCANNER_IP,
            Probeable(Some(DeviceProfile::mikrotik())),
        );
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(40000, DEV_IP, MIKROTIK_MNDP_PORT, vec![0]),
        );
        ex.run();
        assert_eq!(ex.received().len(), 1);
        let banner = String::from_utf8_lossy(&ex.received()[0].1.payload).to_string();
        assert!(banner.contains("MikroTik"), "banner was {banner:?}");
    }

    #[test]
    fn closed_port_unreachable() {
        let mut ex = Exchange::new(
            DEV_IP,
            SCANNER_IP,
            Probeable(Some(DeviceProfile::mikrotik())),
        );
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(40000, DEV_IP, 9999, vec![0]),
        );
        ex.run();
        assert!(ex.received().is_empty());
        assert_eq!(ex.icmp().len(), 1);
        assert_eq!(ex.icmp()[0].1.kind, IcmpKind::PortUnreachable);
    }

    #[test]
    fn no_profile_is_all_closed() {
        let mut ex = Exchange::new(DEV_IP, SCANNER_IP, Probeable(None));
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(40000, DEV_IP, MIKROTIK_MNDP_PORT, vec![0]),
        );
        ex.run();
        assert!(ex.received().is_empty());
        assert_eq!(ex.icmp().len(), 1);
    }

    #[test]
    fn profiles_have_distinct_ports() {
        assert!(DeviceProfile::mikrotik().answers_on(MIKROTIK_BTEST_PORT));
        assert!(!DeviceProfile::mikrotik().answers_on(CPE_MGMT_PORT));
        assert!(DeviceProfile::with_mgmt(Vendor::Zyxel).answers_on(CPE_MGMT_PORT));
        assert!(!DeviceProfile::generic().answers_on(CPE_MGMT_PORT));
    }

    #[test]
    fn vendor_names() {
        for v in Vendor::all() {
            assert!(!v.name().is_empty());
        }
        assert_eq!(Vendor::MikroTik.name(), "MikroTik");
    }
}
