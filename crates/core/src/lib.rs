//! # odns — the Open DNS infrastructure component zoo
//!
//! Every DNS speaker of the paper's Figure 1, implemented as [`netsim`]
//! hosts:
//!
//! * [`StudyAuthServer`] — the study's authoritative server answering with
//!   a dynamic client-reflecting A record plus a static control record
//!   (the *source-specific response* detection method, §2/§4.1);
//! * [`DelegatingServer`] — root/TLD layers so recursive resolution is
//!   genuinely iterative;
//! * [`RecursiveResolver`] — open, restricted, or anycast-PoP recursive
//!   resolver with positive/negative caching;
//! * [`RecursiveForwarder`] — the address-rewriting forwarder (the ODNS
//!   majority, 72 % in Table 1);
//! * [`TransparentForwarder`] — the paper's subject: a stateless, spoofing
//!   relay that decrement-forwards TTLs and never sees responses;
//! * [`ResolverProject`] and anycast deployment helpers for
//!   Google/Cloudflare/Quad9/OpenDNS (Figures 5 and 6);
//! * [`DeviceProfile`] — CPE fingerprinting surface (MikroTik et al., §6);
//! * [`PrefixRateLimiter`] — the sensors' 1-per-5-min-per-/24 policy;
//! * [`StubClient`] — an ordinary DNS consumer.
//!
//! All components speak real DNS wire format via [`dnswire`] and interact
//! only through the simulator, so measurement tools in the `scanner` crate
//! observe them exactly as a real scanner would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod cache;
pub mod device;
pub mod forwarder;
pub mod memo;
pub mod public;
pub mod ratelimit;
pub mod recursive;
pub mod stub;
pub mod study;
pub mod zone;

pub use auth::{AuthConfig, AuthLogEntry, AuthStats, StudyAuthServer};
pub use cache::{CacheKey, CacheStats, CachedAnswer, CachedWire, DnsCache};
pub use device::{DeviceProfile, Vendor};
pub use forwarder::{
    Manipulation, RecursiveForwarder, RecursiveForwarderStats, TransparentForwarder,
    TransparentForwarderStats,
};
pub use memo::QueryMemo;
pub use public::{
    deploy_public_resolver, install_resolver_instances, PublicDeployment, ResolverProject,
};
pub use ratelimit::{prefix24, prefix24_to_string, LimiterPolicy, PrefixRateLimiter};
pub use recursive::{in_prefix, AccessPolicy, RecursiveResolver, ResolverConfig, ResolverStats};
pub use stub::{StubClient, StubResult};
pub use study::{install_study_stack, StudyNodes};
pub use zone::{extract_referral, DelegatingServer, Delegation, Referral};
