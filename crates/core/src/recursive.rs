//! The recursive resolver: iterative resolution with caching and ACLs.
//!
//! This single implementation plays three roles in the study (Figure 1):
//!
//! * **open recursive resolver** — `AccessPolicy::Open`, the classic ODNS
//!   component and the only resolver type a transparent forwarder can use;
//! * **restricted recursive resolver** — `AccessPolicy::RestrictedTo`, which
//!   REFUSES off-net clients (and thereby *rejects* queries relayed by a
//!   transparent forwarder, since those arrive with the scanner's address);
//! * **public anycast resolver PoP** — an open instance registered under an
//!   anycast service address (see `crate::public`), answering from that
//!   address.
//!
//! Resolution is genuinely iterative: root referral → TLD referral →
//! authoritative answer, all through the simulated network, with positive
//! and negative caching.

use crate::cache::{CachedAnswer, CachedWire, DnsCache};
use crate::memo::QueryMemo;
use dnswire::{DnsName, Message, MessageBuilder, Rcode, RrType};
use netsim::{Ctx, Datagram, Host, SimDuration, UdpSend};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Who may use this resolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPolicy {
    /// Anyone — an ODNS component.
    Open,
    /// Only clients inside one of these `(network, prefix_len)` blocks;
    /// everyone else gets REFUSED.
    RestrictedTo(Vec<(Ipv4Addr, u8)>),
}

impl AccessPolicy {
    /// Does `client` pass this policy?
    pub fn allows(&self, client: Ipv4Addr) -> bool {
        match self {
            AccessPolicy::Open => true,
            AccessPolicy::RestrictedTo(nets) => {
                nets.iter().any(|(net, len)| in_prefix(client, *net, *len))
            }
        }
    }
}

/// Is `ip` inside `net/len`?
pub fn in_prefix(ip: Ipv4Addr, net: Ipv4Addr, len: u8) -> bool {
    if len == 0 {
        return true;
    }
    if len > 32 {
        return false;
    }
    let mask = u32::MAX << (32 - u32::from(len));
    (u32::from(ip) & mask) == (u32::from(net) & mask)
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Root server addresses (tried in order).
    pub roots: Vec<Ipv4Addr>,
    /// Client access policy.
    pub acl: AccessPolicy,
    /// Cache capacity in entries.
    pub cache_capacity: usize,
    /// Timeout per upstream query before retry/SERVFAIL.
    pub upstream_timeout: SimDuration,
    /// Maximum referral depth (loop guard).
    pub max_referrals: u8,
    /// Total upstream retries per resolution before SERVFAIL. Real
    /// resolvers persist through several lost legs; a single-retry budget
    /// makes every coalesced client hostage to two unlucky packets.
    pub max_retries: u8,
}

impl ResolverConfig {
    /// An open resolver with the given roots and sane defaults.
    pub fn open(roots: Vec<Ipv4Addr>) -> Self {
        ResolverConfig {
            roots,
            acl: AccessPolicy::Open,
            cache_capacity: 512,
            upstream_timeout: SimDuration::from_secs(2),
            max_referrals: 8,
            max_retries: 4,
        }
    }

    /// A restricted resolver serving only `nets`.
    pub fn restricted(roots: Vec<Ipv4Addr>, nets: Vec<(Ipv4Addr, u8)>) -> Self {
        ResolverConfig {
            acl: AccessPolicy::RestrictedTo(nets),
            ..Self::open(roots)
        }
    }
}

/// Counters kept by the resolver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Client queries received.
    pub client_queries: u64,
    /// Client queries answered from cache.
    pub cache_answers: u64,
    /// Client queries coalesced onto an in-flight resolution for the same
    /// name (real resolvers do this; without it a fast scanner's identical
    /// queries stampede the authoritative server before the first answer
    /// can populate the cache).
    pub coalesced: u64,
    /// Client queries REFUSED by the ACL.
    pub refused: u64,
    /// Upstream queries emitted (root + TLD + auth).
    pub upstream_queries: u64,
    /// SERVFAIL responses sent.
    pub servfail: u64,
    /// Upstream timeouts observed.
    pub timeouts: u64,
}

/// How a resolution ended, delivered to the leader and all coalesced
/// waiters.
#[derive(Debug, Clone)]
enum TaskOutcome {
    Records(Vec<dnswire::Record>),
    Rcode(Rcode),
    NoData,
}

#[derive(Debug)]
struct Task {
    client: Ipv4Addr,
    client_port: u16,
    client_txid: u16,
    /// The address the client queried (unicast or anycast service IP);
    /// responses are sourced from it.
    service_addr: Ipv4Addr,
    qname: DnsName,
    qtype: RrType,
    current_ns: Ipv4Addr,
    referrals: u8,
    retries: u8,
    done: bool,
}

/// The recursive resolver host.
#[derive(Debug)]
pub struct RecursiveResolver {
    config: ResolverConfig,
    cache: DnsCache,
    tasks: Vec<Task>,
    /// Pending upstream transactions: `(our_port, txid)` → task index.
    pending: HashMap<(u16, u16), usize>,
    /// Tasks waiting on another task's in-flight resolution of the same
    /// `(qname, qtype)`: leader task index → waiter task indices.
    waiters: HashMap<usize, Vec<usize>>,
    /// Reverse lookup: `(qname, qtype)` → leader task index.
    inflight: HashMap<(DnsName, RrType), usize>,
    next_port: u16,
    next_txid: u16,
    /// Memo of the last plain `IN` client query decoded: identical
    /// probes (modulo txid) skip the decode on the cache-hit path.
    memo: Option<QueryMemo>,
    /// The last wire answer served through the memo path, replayed as a
    /// refcount bump while byte-valid; dropped on any cache insert.
    hot: Option<crate::memo::HotWire>,
    /// Counters.
    pub stats: ResolverStats,
}

impl RecursiveResolver {
    /// Build from config.
    pub fn new(config: ResolverConfig) -> Self {
        let cache = DnsCache::new(config.cache_capacity);
        RecursiveResolver {
            config,
            cache,
            tasks: Vec::new(),
            pending: HashMap::new(),
            waiters: HashMap::new(),
            inflight: HashMap::new(),
            next_port: 1024,
            next_txid: 1,
            memo: None,
            hot: None,
            stats: ResolverStats::default(),
        }
    }

    /// Answer a memo-matched query without decoding it. Handles only the
    /// fully-cached happy case — ACL-allowed client, positive wire cache
    /// hit — and reports whether it did; every other case (refusal,
    /// negative entry, miss, exotic query) belongs to the decode path.
    fn try_memo_answer(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram, txid: u16) -> bool {
        if !self.config.acl.allows(dgram.src) {
            return false;
        }
        // Replay the previous answer while its bytes are still exact — the
        // steady state of a census burst, one refcount bump per probe.
        if let Some(payload) = self.hot.as_ref().and_then(|h| h.serve(txid, ctx.now())) {
            self.cache.record_hot_hit();
            self.stats.client_queries += 1;
            self.stats.cache_answers += 1;
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dnswire::DNS_PORT,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload,
            });
            return true;
        }
        let (qname, qtype, rd) = {
            let memo = self.memo.as_ref().expect("caller matched the memo");
            (memo.qname().clone(), memo.qtype(), memo.rd())
        };
        match self.cache.get_wire(&qname, qtype, ctx.now(), txid, rd) {
            Some(CachedWire::Positive(bytes)) => {
                self.stats.client_queries += 1;
                self.stats.cache_answers += 1;
                let payload: netsim::Payload = bytes.into();
                if let Some(vb) = self.cache.wire_valid_before(&qname, qtype, ctx.now()) {
                    self.hot = Some(crate::memo::HotWire::new(txid, vb, payload.clone()));
                }
                ctx.send_udp(UdpSend {
                    src: Some(dgram.dst),
                    src_port: dnswire::DNS_PORT,
                    dst: dgram.src,
                    dst_port: dgram.src_port,
                    ttl: None,
                    payload,
                });
                true
            }
            _ => false,
        }
    }

    /// Access to the cache (for pollution experiments).
    pub fn cache(&self) -> &DnsCache {
        &self.cache
    }

    /// Mutable access to the cache (tests pre-seed entries).
    pub fn cache_mut(&mut self) -> &mut DnsCache {
        &mut self.cache
    }

    fn alloc_ids(&mut self) -> (u16, u16) {
        let port = self.next_port;
        self.next_port = if self.next_port >= 65000 {
            1024
        } else {
            self.next_port + 1
        };
        let txid = self.next_txid;
        self.next_txid = self.next_txid.wrapping_add(1).max(1);
        (port, txid)
    }

    fn respond_to_client(
        &mut self,
        ctx: &mut Ctx<'_>,
        task_idx: usize,
        build: impl FnOnce(MessageBuilder) -> MessageBuilder,
    ) {
        let task = &mut self.tasks[task_idx];
        if task.done {
            return;
        }
        task.done = true;
        let skeleton = MessageBuilder::query(task.client_txid, task.qname.clone(), task.qtype)
            .recursion_desired(true)
            .build();
        let builder = MessageBuilder::response_to(&skeleton).recursion_available(true);
        let response = build(builder).build();
        ctx.send_udp(UdpSend {
            src: Some(task.service_addr),
            src_port: dnswire::DNS_PORT,
            dst: task.client,
            dst_port: task.client_port,
            ttl: None,
            payload: response.encode().into(),
        });
    }

    /// Deliver a final outcome to a leader task and every coalesced waiter.
    fn finish(&mut self, ctx: &mut Ctx<'_>, leader_idx: usize, outcome: TaskOutcome) {
        let key = {
            let t = &self.tasks[leader_idx];
            (t.qname.clone(), t.qtype)
        };
        if self.inflight.get(&key) == Some(&leader_idx) {
            self.inflight.remove(&key);
        }
        let mut recipients = vec![leader_idx];
        recipients.extend(self.waiters.remove(&leader_idx).unwrap_or_default());
        for idx in recipients {
            match &outcome {
                TaskOutcome::Records(records) => {
                    let records = records.clone();
                    self.respond_to_client(ctx, idx, move |mut b| {
                        for r in records {
                            b = b.answer(r);
                        }
                        b
                    });
                }
                TaskOutcome::Rcode(rcode) => {
                    let rcode = *rcode;
                    self.respond_to_client(ctx, idx, move |b| b.rcode(rcode));
                }
                TaskOutcome::NoData => self.respond_to_client(ctx, idx, |b| b),
            }
        }
    }

    fn send_upstream(&mut self, ctx: &mut Ctx<'_>, task_idx: usize) {
        let (port, txid) = self.alloc_ids();
        let task = &self.tasks[task_idx];
        let query = MessageBuilder::query(txid, task.qname.clone(), task.qtype).build();
        let ns = task.current_ns;
        self.pending.insert((port, txid), task_idx);
        self.stats.upstream_queries += 1;
        ctx.send_udp(UdpSend {
            src: None, // egress uses the node's unicast address, even on anycast PoPs
            src_port: port,
            dst: ns,
            dst_port: dnswire::DNS_PORT,
            ttl: None,
            payload: query.encode().into(),
        });
        let token = encode_timer(port, txid);
        ctx.set_timer(self.config.upstream_timeout, token);
    }

    fn handle_client_query(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram, query: Message) {
        self.stats.client_queries += 1;
        let q = query.question().expect("caller checked").clone();

        if !self.config.acl.allows(dgram.src) {
            self.stats.refused += 1;
            let resp = MessageBuilder::response_to(&query)
                .rcode(Rcode::Refused)
                .build();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dnswire::DNS_PORT,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
            return;
        }

        // Cache lookup. Standard `IN` queries (the only kind the study's
        // probes and stubs emit) are served straight from pre-encoded
        // bytes; anything exotic falls back to the builder path.
        if query.is_plain_in_query() {
            if let Some(wire) = self.cache.get_wire(
                &q.qname,
                q.qtype,
                ctx.now(),
                query.header.id,
                query.header.flags.recursion_desired,
            ) {
                self.stats.cache_answers += 1;
                let payload = match wire {
                    CachedWire::Positive(bytes) => bytes.into(),
                    CachedWire::Negative(rcode) => MessageBuilder::response_to(&query)
                        .recursion_available(true)
                        .rcode(rcode)
                        .build()
                        .encode()
                        .into(),
                };
                ctx.send_udp(UdpSend {
                    src: Some(dgram.dst),
                    src_port: dnswire::DNS_PORT,
                    dst: dgram.src,
                    dst_port: dgram.src_port,
                    ttl: None,
                    payload,
                });
                return;
            }
        } else if let Some(answer) = self.cache.get(&q.qname, q.qtype, ctx.now()) {
            self.stats.cache_answers += 1;
            let builder = MessageBuilder::response_to(&query).recursion_available(true);
            let resp = match answer {
                CachedAnswer::Positive(records) => {
                    let mut b = builder;
                    for r in records {
                        b = b.answer(r);
                    }
                    b.build()
                }
                CachedAnswer::Negative(rcode) => builder.rcode(rcode).build(),
            };
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dnswire::DNS_PORT,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
            return;
        }

        let Some(&root) = self.config.roots.first() else {
            let resp = MessageBuilder::response_to(&query)
                .rcode(Rcode::ServFail)
                .build();
            self.stats.servfail += 1;
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dnswire::DNS_PORT,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
            return;
        };

        self.tasks.push(Task {
            client: dgram.src,
            client_port: dgram.src_port,
            client_txid: query.header.id,
            service_addr: dgram.dst,
            qname: q.qname.clone(),
            qtype: q.qtype,
            current_ns: root,
            referrals: 0,
            retries: 0,
            done: false,
        });
        let idx = self.tasks.len() - 1;
        // Coalesce onto an in-flight resolution for the same name.
        let key = (q.qname.clone(), q.qtype);
        if let Some(&leader) = self.inflight.get(&key) {
            if !self.tasks[leader].done {
                self.stats.coalesced += 1;
                self.waiters.entry(leader).or_default().push(idx);
                return;
            }
        }
        self.inflight.insert(key, idx);
        self.send_upstream(ctx, idx);
    }

    fn handle_upstream_response(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram, resp: Message) {
        let key = (dgram.dst_port, resp.header.id);
        let Some(task_idx) = self.pending.remove(&key) else {
            return; // late or unsolicited; drop
        };
        if self.tasks[task_idx].done {
            return;
        }

        if !resp.answers.is_empty() {
            // Final answer: cache and relay (to the leader and everyone
            // coalesced behind it).
            let min_ttl = resp.answers.iter().map(|r| r.ttl).min().unwrap_or(0);
            let records = resp.answers.clone();
            let (qname, qtype) = {
                let t = &self.tasks[task_idx];
                (t.qname.clone(), t.qtype)
            };
            self.cache.insert(
                qname,
                qtype,
                CachedAnswer::Positive(records.clone()),
                min_ttl,
                ctx.now(),
            );
            // The cache changed (insert, possibly an eviction): any
            // replayable answer may now be stale.
            self.hot = None;
            self.finish(ctx, task_idx, TaskOutcome::Records(records));
            return;
        }

        if let Some(referral) = crate::zone::extract_referral(&resp) {
            let task = &mut self.tasks[task_idx];
            task.referrals += 1;
            if task.referrals > self.config.max_referrals {
                self.stats.servfail += 1;
                self.finish(ctx, task_idx, TaskOutcome::Rcode(Rcode::ServFail));
                return;
            }
            task.current_ns = referral.ns_ip;
            self.send_upstream(ctx, task_idx);
            return;
        }

        match resp.header.flags.rcode {
            Rcode::NxDomain => {
                // Negative caching per the SOA MINIMUM if present.
                let ttl = resp
                    .authorities
                    .iter()
                    .find_map(|r| match &r.rdata {
                        dnswire::RData::Soa(soa) => Some(soa.minimum.min(r.ttl)),
                        _ => None,
                    })
                    .unwrap_or(60);
                let (qname, qtype) = {
                    let t = &self.tasks[task_idx];
                    (t.qname.clone(), t.qtype)
                };
                self.cache.insert(
                    qname,
                    qtype,
                    CachedAnswer::Negative(Rcode::NxDomain),
                    ttl,
                    ctx.now(),
                );
                self.hot = None;
                self.finish(ctx, task_idx, TaskOutcome::Rcode(Rcode::NxDomain));
            }
            Rcode::NoError => {
                self.finish(ctx, task_idx, TaskOutcome::NoData);
            }
            _ => {
                self.stats.servfail += 1;
                self.finish(ctx, task_idx, TaskOutcome::Rcode(Rcode::ServFail));
            }
        }
    }
}

fn encode_timer(port: u16, txid: u16) -> u64 {
    (u64::from(port) << 16) | u64::from(txid)
}

fn decode_timer(token: u64) -> (u16, u16) {
    ((token >> 16) as u16, token as u16)
}

impl Host for RecursiveResolver {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port == dnswire::DNS_PORT {
            // Steady-state fast path: a probe byte-identical to the
            // memoized query (modulo txid) skips the decode entirely
            // when its answer is a positive wire-cache hit.
            if let Some(txid) = self
                .memo
                .as_ref()
                .and_then(|m| m.txid_of_match(&dgram.payload))
            {
                if self.try_memo_answer(ctx, &dgram, txid) {
                    return;
                }
            }
            let Ok(msg) = Message::decode(&dgram.payload) else {
                return;
            };
            if msg.is_response() || msg.question().is_none() {
                return;
            }
            if self.memo.is_none() {
                self.memo = QueryMemo::remember(&dgram.payload, &msg);
            }
            self.handle_client_query(ctx, &dgram, msg);
        } else {
            // Traffic to our ephemeral ports: upstream responses.
            let Ok(msg) = Message::decode(&dgram.payload) else {
                return;
            };
            if !msg.is_response() {
                return;
            }
            self.handle_upstream_response(ctx, &dgram, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let key = decode_timer(token);
        let Some(task_idx) = self.pending.remove(&key) else {
            return; // answered in time
        };
        self.stats.timeouts += 1;
        let task = &mut self.tasks[task_idx];
        if task.done {
            return;
        }
        // Retry the current server with a fresh (port, txid) until the
        // budget runs out, then SERVFAIL everyone waiting.
        if task.retries < self.config.max_retries {
            task.retries += 1;
            let idx = task_idx;
            self.send_upstream(ctx, idx);
        } else {
            self.stats.servfail += 1;
            self.finish(ctx, task_idx, TaskOutcome::Rcode(Rcode::ServFail));
        }
    }

    netsim::impl_host_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching() {
        let net = Ipv4Addr::new(203, 0, 113, 0);
        assert!(in_prefix(Ipv4Addr::new(203, 0, 113, 77), net, 24));
        assert!(!in_prefix(Ipv4Addr::new(203, 0, 114, 1), net, 24));
        assert!(in_prefix(Ipv4Addr::new(203, 0, 114, 1), net, 16));
        assert!(
            in_prefix(Ipv4Addr::new(9, 9, 9, 9), net, 0),
            "len 0 matches all"
        );
        assert!(
            !in_prefix(Ipv4Addr::new(9, 9, 9, 9), net, 33),
            "invalid length matches none"
        );
    }

    #[test]
    fn access_policy() {
        let open = AccessPolicy::Open;
        assert!(open.allows(Ipv4Addr::new(1, 2, 3, 4)));
        let restricted = AccessPolicy::RestrictedTo(vec![(Ipv4Addr::new(10, 0, 0, 0), 8)]);
        assert!(restricted.allows(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!restricted.allows(Ipv4Addr::new(192, 0, 2, 1)));
    }

    #[test]
    fn timer_token_roundtrip() {
        let (p, t) = decode_timer(encode_timer(34017, 0xBEEF));
        assert_eq!((p, t), (34017, 0xBEEF));
    }

    #[test]
    fn port_allocation_wraps_in_ephemeral_range() {
        let mut r = RecursiveResolver::new(ResolverConfig::open(vec![Ipv4Addr::new(1, 1, 1, 1)]));
        r.next_port = 64999;
        let (p1, _) = r.alloc_ids();
        let (p2, _) = r.alloc_ids();
        let (p3, _) = r.alloc_ids();
        assert_eq!((p1, p2, p3), (64999, 65000, 1024));
    }

    // Full end-to-end resolution paths are covered by integration tests in
    // `resolution_chain.rs` (root → TLD → auth through the simulator).
}
