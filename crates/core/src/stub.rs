//! A stub client: the ordinary DNS consumer behind forwarders (Figure 1's
//! left edge). Used by examples and integration tests to generate
//! legitimate-looking traffic.

use dnswire::{DnsName, Message, MessageBuilder, RrType};
use netsim::{Ctx, Datagram, Host, SimTime, UdpSend};
use std::net::Ipv4Addr;

/// One completed stub transaction.
#[derive(Debug, Clone)]
pub struct StubResult {
    /// When the query went out.
    pub sent_at: SimTime,
    /// When the answer arrived (None until then).
    pub answered_at: Option<SimTime>,
    /// Source address of the answer — for a client behind a *transparent*
    /// forwarder this is the resolver, not the forwarder it asked!
    pub answer_src: Option<Ipv4Addr>,
    /// The decoded answer.
    pub answer: Option<Message>,
    /// Name queried.
    pub qname: DnsName,
}

/// A stub resolver client that sends one query per timer token and records
/// answers.
#[derive(Debug)]
pub struct StubClient {
    server: Ipv4Addr,
    qname: DnsName,
    qtype: RrType,
    next_txid: u16,
    base_port: u16,
    /// Results in send order.
    pub results: Vec<StubResult>,
}

impl StubClient {
    /// A stub pointed at `server` querying `qname`.
    pub fn new(server: Ipv4Addr, qname: DnsName) -> Self {
        StubClient {
            server,
            qname,
            qtype: RrType::A,
            next_txid: 100,
            base_port: 40_000,
            results: Vec::new(),
        }
    }

    /// Number of answered queries.
    pub fn answered(&self) -> usize {
        self.results.iter().filter(|r| r.answer.is_some()).count()
    }
}

impl Host for StubClient {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Ok(msg) = Message::decode(&dgram.payload) else {
            return;
        };
        if !msg.is_response() {
            return;
        }
        // Each query used a unique source port (base + index), so the
        // destination port of the reply identifies the transaction.
        let idx = dgram.dst_port.wrapping_sub(self.base_port) as usize;
        if let Some(r) = self.results.get_mut(idx) {
            if r.answer.is_none() {
                r.answered_at = Some(ctx.now());
                r.answer_src = Some(dgram.src);
                r.answer = Some(msg);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let txid = self.next_txid;
        self.next_txid = self.next_txid.wrapping_add(1);
        let port = self.base_port + self.results.len() as u16;
        let query = MessageBuilder::query(txid, self.qname.clone(), self.qtype)
            .recursion_desired(true)
            .build();
        self.results.push(StubResult {
            sent_at: ctx.now(),
            answered_at: None,
            answer_src: None,
            answer: None,
            qname: self.qname.clone(),
        });
        ctx.send_udp(UdpSend::new(
            port,
            self.server,
            dnswire::DNS_PORT,
            query.encode(),
        ));
    }

    netsim::impl_host_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::testkit::playground;
    use netsim::{SimConfig, SimDuration, Simulator};

    #[test]
    fn stub_records_answer_and_its_source() {
        let client_ip = Ipv4Addr::new(192, 0, 2, 1);
        let server_ip = Ipv4Addr::new(198, 51, 100, 1);
        let (topo, nodes) = playground(&[client_ip, server_ip]);
        let mut sim = Simulator::new(topo, SimConfig::default());

        struct Answerer;
        impl Host for Answerer {
            fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
                let q = Message::decode(&dgram.payload).unwrap();
                let resp = MessageBuilder::response_to(&q)
                    .answer_a(q.questions[0].qname.clone(), 60, Ipv4Addr::new(5, 5, 5, 5))
                    .build();
                ctx.send_udp(UdpSend {
                    src: Some(dgram.dst),
                    src_port: 53,
                    dst: dgram.src,
                    dst_port: dgram.src_port,
                    ttl: None,
                    payload: resp.encode().into(),
                });
            }
            netsim::impl_host_downcast!();
        }

        sim.install(
            nodes[0],
            StubClient::new(server_ip, DnsName::parse("x.example.").unwrap()),
        );
        sim.install(nodes[1], Answerer);
        sim.schedule_timer(nodes[0], SimDuration::ZERO, 0);
        sim.schedule_timer(nodes[0], SimDuration::from_secs(1), 1);
        sim.run();

        let stub: &StubClient = sim.host_as(nodes[0]).unwrap();
        assert_eq!(stub.results.len(), 2);
        assert_eq!(stub.answered(), 2);
        assert_eq!(stub.results[0].answer_src, Some(server_ip));
        assert!(stub.results[0].answered_at.unwrap() > stub.results[0].sent_at);
    }
}
