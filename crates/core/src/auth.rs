//! The study's authoritative name server.
//!
//! Implements the *source-specific response* method of §2/§4.1: every
//! answer carries two A records —
//!
//! 1. a **dynamic record** holding the IP address of the immediate client
//!    (for a forwarded query this is the recursive resolver's egress, the
//!    `A_resolver` of the classification rules), and
//! 2. a **static control record** ([`crate::study::CONTROL_A`]) whose value
//!    never changes, used to detect in-path manipulation.
//!
//! It also answers the *query-encoding* method's destination-encoded names
//! (`a-b-c-d.scan.<zone>`), logging every query so Table 2's "detection at
//! server" property can be exercised, and keeps a per-second token-bucket
//! budget mirroring the paper's 20k pps server (§4.1).

use crate::study::{self, ANSWER_TTL};
use dnswire::{DnsName, Message, MessageBuilder, Rcode, Record, RrType, SoaData};
use netsim::{Ctx, Datagram, Host, SimTime, TokenBucket, UdpSend};
use std::net::Ipv4Addr;

/// One received query, as logged by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthLogEntry {
    /// Arrival time.
    pub time: SimTime,
    /// Immediate client (for forwarded queries: the recursive resolver).
    pub client: Ipv4Addr,
    /// Client source port.
    pub client_port: u16,
    /// Transaction ID.
    pub txid: u16,
    /// Query name.
    pub qname: DnsName,
    /// Query type.
    pub qtype: RrType,
    /// Target encoded in the name, when the query-based method is in use.
    pub encoded_target: Option<Ipv4Addr>,
}

/// Configuration of the study's authoritative server.
#[derive(Debug, Clone)]
pub struct AuthConfig {
    /// Zone of authority.
    pub zone: DnsName,
    /// The static name served with the two-record response.
    pub static_qname: DnsName,
    /// Value of the control record.
    pub control_a: Ipv4Addr,
    /// Answer TTL in seconds.
    pub answer_ttl: u32,
    /// Whether the control record is included. Disabling it is the
    /// ablation matching Shadowserver's single-record check (§4.2).
    pub include_control_record: bool,
    /// Per-second query budget; `None` disables rate limiting. The paper's
    /// server sustains 20k pps.
    pub rate_limit_pps: Option<u64>,
    /// Whether to keep the per-query log (disable for very large scans).
    pub keep_log: bool,
}

impl Default for AuthConfig {
    fn default() -> Self {
        AuthConfig {
            zone: study::study_zone(),
            static_qname: study::study_qname(),
            control_a: study::CONTROL_A,
            answer_ttl: ANSWER_TTL,
            include_control_record: true,
            rate_limit_pps: Some(20_000),
            keep_log: true,
        }
    }
}

/// Counters kept by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuthStats {
    /// Queries received (before rate limiting).
    pub queries_received: u64,
    /// Responses sent.
    pub responses_sent: u64,
    /// Queries shed by the rate limiter.
    pub rate_limited: u64,
    /// Queries for names outside the zone (refused).
    pub out_of_zone: u64,
    /// NXDOMAIN answers for unknown in-zone names.
    pub nxdomain: u64,
}

/// The authoritative server host.
#[derive(Debug)]
pub struct StudyAuthServer {
    config: AuthConfig,
    bucket: Option<TokenBucket>,
    /// Query log (enabled via [`AuthConfig::keep_log`]).
    pub log: Vec<AuthLogEntry>,
    /// Counters.
    pub stats: AuthStats,
}

impl StudyAuthServer {
    /// Build from config.
    pub fn new(config: AuthConfig) -> Self {
        let bucket = config.rate_limit_pps.map(TokenBucket::per_second);
        StudyAuthServer {
            config,
            bucket,
            log: Vec::new(),
            stats: AuthStats::default(),
        }
    }

    /// Server with the default study configuration.
    pub fn with_defaults() -> Self {
        Self::new(AuthConfig::default())
    }

    /// The SOA record for the study zone (used in negative responses; its
    /// MINIMUM field drives negative-caching duration, the §6 cache
    /// pollution mechanism).
    fn soa_record(&self) -> Record {
        Record {
            name: self.config.zone.clone(),
            class: dnswire::Class::In,
            ttl: self.config.answer_ttl,
            rdata: dnswire::RData::Soa(SoaData {
                mname: DnsName::parse("ns1.odns-study.example.").expect("static name"),
                rname: DnsName::parse("hostmaster.odns-study.example.").expect("static name"),
                serial: 20210420,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: self.config.answer_ttl,
            }),
        }
    }

    fn answer(&self, query: &Message, client: Ipv4Addr) -> Message {
        let q = query.question().expect("caller checked");
        let qname = &q.qname;
        let mut builder = MessageBuilder::response_to(query).authoritative(true);

        let in_zone = qname.is_subdomain_of(&self.config.zone);
        if !in_zone {
            return builder.rcode(Rcode::Refused).build();
        }

        let is_static = *qname == self.config.static_qname;
        let is_encoded = study::decode_target_name(qname).is_some();
        if is_static || is_encoded {
            match q.qtype {
                RrType::A | RrType::Any => {
                    // Dynamic client-reflecting record first, control second
                    // (Figure 7's layout).
                    builder =
                        builder.answer(Record::a(qname.clone(), self.config.answer_ttl, client));
                    if self.config.include_control_record {
                        builder = builder.answer(Record::a(
                            qname.clone(),
                            self.config.answer_ttl,
                            self.config.control_a,
                        ));
                    }
                    if q.qtype == RrType::Any {
                        // ANY also returns the SOA — a little extra
                        // amplification, as real zones provide (§6).
                        builder = builder.answer(self.soa_record());
                    }
                    builder.build()
                }
                RrType::Soa => builder.answer(self.soa_record()).build(),
                RrType::Txt => builder
                    .answer(Record::txt(
                        qname.clone(),
                        self.config.answer_ttl,
                        "transparent-forwarders-study see https://odns.secnow.net",
                    ))
                    .build(),
                _ => {
                    // NODATA: empty answer, SOA in authority.
                    builder.authority(self.soa_record()).build()
                }
            }
        } else {
            builder
                .rcode(Rcode::NxDomain)
                .authority(self.soa_record())
                .build()
        }
    }
}

impl Host for StudyAuthServer {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port != dnswire::DNS_PORT {
            ctx.send_port_unreachable(&dgram);
            return;
        }
        let Ok(query) = Message::decode(&dgram.payload) else {
            return; // malformed input is silently ignored, like real servers
        };
        if query.is_response() || query.question().is_none() {
            return;
        }
        self.stats.queries_received += 1;

        if let Some(bucket) = &mut self.bucket {
            if !bucket.try_take(ctx.now()) {
                self.stats.rate_limited += 1;
                return;
            }
        }

        let q = query.question().expect("checked");
        if self.config.keep_log {
            self.log.push(AuthLogEntry {
                time: ctx.now(),
                client: dgram.src,
                client_port: dgram.src_port,
                txid: query.header.id,
                qname: q.qname.clone(),
                qtype: q.qtype,
                encoded_target: study::decode_target_name(&q.qname),
            });
        }

        let response = self.answer(&query, dgram.src);
        match response.header.flags.rcode {
            Rcode::Refused => self.stats.out_of_zone += 1,
            Rcode::NxDomain => self.stats.nxdomain += 1,
            _ => {}
        }
        self.stats.responses_sent += 1;
        ctx.send_udp(UdpSend {
            src: Some(dgram.dst),
            src_port: dnswire::DNS_PORT,
            dst: dgram.src,
            dst_port: dgram.src_port,
            ttl: None,
            payload: response.encode().into(),
        });
    }

    netsim::impl_host_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::MessageBuilder;

    use netsim::testkit::Exchange;
    use netsim::SimDuration;

    const AUTH_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(203, 1, 113, 50);

    fn query_send(qname: &str, qtype: RrType, txid: u16) -> UdpSend {
        let q = MessageBuilder::query(txid, DnsName::parse(qname).unwrap(), qtype)
            .recursion_desired(true)
            .build();
        UdpSend::new(34111, AUTH_IP, 53, q.encode())
    }

    fn ask(server: StudyAuthServer, qname: &str, qtype: RrType, txid: u16) -> (Message, Exchange) {
        let mut ex = Exchange::new(AUTH_IP, CLIENT_IP, server);
        ex.send_at(SimDuration::ZERO, query_send(qname, qtype, txid));
        ex.run();
        let resp = Message::decode(&ex.received()[0].1.payload).unwrap();
        (resp, ex)
    }

    #[test]
    fn static_name_gets_dynamic_plus_control() {
        let (resp, ex) = ask(
            StudyAuthServer::with_defaults(),
            study::STUDY_QNAME,
            RrType::A,
            777,
        );
        assert_eq!(resp.header.id, 777);
        assert!(resp.header.flags.authoritative);
        assert_eq!(resp.answer_a_addrs(), vec![CLIENT_IP, study::CONTROL_A]);
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.stats.responses_sent, 1);
        assert_eq!(s.log.len(), 1);
        assert_eq!(s.log[0].client, CLIENT_IP);
        assert_eq!(s.log[0].encoded_target, None);
    }

    #[test]
    fn encoded_name_is_logged_with_target() {
        let target = Ipv4Addr::new(203, 0, 113, 1);
        let name = study::encode_target_name(target);
        let (resp, ex) = ask(
            StudyAuthServer::with_defaults(),
            &name.to_string(),
            RrType::A,
            1,
        );
        assert_eq!(resp.answer_a_addrs()[0], CLIENT_IP);
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.log[0].encoded_target, Some(target));
    }

    #[test]
    fn control_record_can_be_disabled() {
        let server = StudyAuthServer::new(AuthConfig {
            include_control_record: false,
            ..AuthConfig::default()
        });
        let (resp, _ex) = ask(server, study::STUDY_QNAME, RrType::A, 2);
        assert_eq!(
            resp.answer_a_addrs(),
            vec![CLIENT_IP],
            "single record in ablation mode"
        );
    }

    #[test]
    fn out_of_zone_refused() {
        let (resp, ex) = ask(
            StudyAuthServer::with_defaults(),
            "google.com.",
            RrType::A,
            3,
        );
        assert_eq!(resp.header.flags.rcode, Rcode::Refused);
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.stats.out_of_zone, 1);
    }

    #[test]
    fn unknown_in_zone_name_nxdomain_with_soa() {
        let (resp, ex) = ask(
            StudyAuthServer::with_defaults(),
            "nope.odns-study.example.",
            RrType::A,
            4,
        );
        assert_eq!(resp.header.flags.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1, "SOA for negative caching");
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.stats.nxdomain, 1);
    }

    #[test]
    fn any_query_amplifies() {
        let (a, _) = ask(
            StudyAuthServer::with_defaults(),
            study::STUDY_QNAME,
            RrType::A,
            5,
        );
        let (any, _) = ask(
            StudyAuthServer::with_defaults(),
            study::STUDY_QNAME,
            RrType::Any,
            6,
        );
        let any_len = any.wire_len().expect("ANY response encodes");
        let a_len = a.wire_len().expect("A response encodes");
        assert!(
            any_len > a_len,
            "ANY response must be larger: {any_len} vs {a_len}"
        );
    }

    #[test]
    fn txt_answered_for_static_name() {
        let (resp, _) = ask(
            StudyAuthServer::with_defaults(),
            study::STUDY_QNAME,
            RrType::Txt,
            7,
        );
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RrType::Txt);
    }

    #[test]
    fn rate_limiter_sheds_excess_queries() {
        let server = StudyAuthServer::new(AuthConfig {
            rate_limit_pps: Some(2),
            ..AuthConfig::default()
        });
        let mut ex = Exchange::new(AUTH_IP, CLIENT_IP, server);
        for i in 0..5u16 {
            ex.send_at(
                SimDuration::from_micros(u64::from(i)),
                query_send(study::STUDY_QNAME, RrType::A, i),
            );
        }
        ex.run();
        assert_eq!(
            ex.received().len(),
            2,
            "only the budget is served in one second"
        );
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.stats.rate_limited, 3);
        assert_eq!(s.stats.queries_received, 5);
    }

    #[test]
    fn non_dns_port_gets_port_unreachable() {
        let mut ex = Exchange::new(AUTH_IP, CLIENT_IP, StudyAuthServer::with_defaults());
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(40000, AUTH_IP, 9999, vec![1, 2, 3]),
        );
        ex.run();
        assert!(ex.received().is_empty());
        assert_eq!(ex.icmp().len(), 1);
        assert_eq!(ex.icmp()[0].1.kind, netsim::IcmpKind::PortUnreachable);
    }

    #[test]
    fn responses_and_garbage_ignored() {
        let mut ex = Exchange::new(AUTH_IP, CLIENT_IP, StudyAuthServer::with_defaults());
        // A response message (QR=1) must not be answered.
        let bogus =
            MessageBuilder::query(9, DnsName::parse(study::STUDY_QNAME).unwrap(), RrType::A)
                .build()
                .response_skeleton();
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(1000, AUTH_IP, 53, bogus.encode()),
        );
        // Garbage bytes must not crash or be answered.
        ex.send_at(
            SimDuration::from_millis(1),
            UdpSend::new(1001, AUTH_IP, 53, vec![0xFF; 9]),
        );
        ex.run();
        assert!(ex.received().is_empty());
        let s: &StudyAuthServer = ex.subject();
        assert_eq!(s.stats.responses_sent, 0);
    }
}
