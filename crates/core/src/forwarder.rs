//! DNS forwarders: recursive (NAT-style) and transparent (spoofing relay).
//!
//! The distinction these two types embody *is the paper's contribution*:
//!
//! * a **recursive forwarder** behaves like a normal UDP client toward its
//!   resolver — it replaces the source address with its own, so the
//!   resolver's answer comes back to *it*, and it relays (and may cache)
//!   the answer to the original client;
//! * a **transparent forwarder** relays the query packet with the client's
//!   source address *unchanged* (spoofing), so the resolver answers the
//!   client directly; the forwarder never sees the response, keeps no
//!   state, and works only from networks without outbound SAV (§2).
//!
//! The transparent forwarder also behaves like a router at the IP layer:
//! it decrements TTL when relaying and emits ICMP Time Exceeded when the
//! TTL dies — which is exactly the behaviour DNSRoute++ (§5) exploits to
//! trace the path *behind* it.

use crate::cache::{CachedAnswer, CachedWire, DnsCache};
use crate::device::DeviceProfile;
use crate::memo::QueryMemo;
use dnswire::{Message, MessageBuilder};
use netsim::{Ctx, Datagram, Host, SimDuration, UdpSend};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Counters for a recursive forwarder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecursiveForwarderStats {
    /// Queries accepted from clients.
    pub client_queries: u64,
    /// Answers served from the local cache.
    pub cache_answers: u64,
    /// Queries forwarded upstream.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub relayed: u64,
    /// Upstream timeouts.
    pub timeouts: u64,
}

#[derive(Debug)]
struct PendingQuery {
    client: Ipv4Addr,
    client_port: u16,
    client_txid: u16,
    qname: dnswire::DnsName,
    qtype: dnswire::RrType,
    done: bool,
}

/// In-path response manipulation, as practiced by ad-injecting or
/// censoring CPE/ISP middleboxes (§6 distinguishes transparent forwarders
/// from these). Manipulated responses fail the study's control-record
/// check and are discarded by the strict classifier — but single-record
/// pipelines like Shadowserver's still count the responder, which is how
/// Shadowserver ends up reporting *more* ODNS hosts than the study in
/// heavily-manipulated countries (Table 5: China, South Korea, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manipulation {
    /// Relay answers untouched.
    None,
    /// Replace every A record's address (ad-server injection style).
    ReplaceARecords(Ipv4Addr),
}

/// A recursive (address-rewriting) DNS forwarder — typically CPE running a
/// DNS proxy. Open to everyone, which is what makes it an ODNS component.
#[derive(Debug)]
pub struct RecursiveForwarder {
    resolver: Ipv4Addr,
    cache: Option<DnsCache>,
    pending: HashMap<(u16, u16), usize>,
    queries: Vec<PendingQuery>,
    timeout: SimDuration,
    device: Option<DeviceProfile>,
    manipulation: Manipulation,
    /// Memo of the last plain `IN` client query decoded: identical
    /// probes (modulo txid) skip the decode on the cache-hit path.
    memo: Option<QueryMemo>,
    /// The last wire answer served through the memo path, replayed as a
    /// refcount bump while byte-valid; dropped on any cache insert.
    hot: Option<crate::memo::HotWire>,
    /// Counters.
    pub stats: RecursiveForwarderStats,
}

impl RecursiveForwarder {
    /// Forwarder relaying to `resolver`, with a small answer cache.
    pub fn new(resolver: Ipv4Addr) -> Self {
        RecursiveForwarder {
            resolver,
            cache: Some(DnsCache::new(64)),
            pending: HashMap::new(),
            queries: Vec::new(),
            timeout: SimDuration::from_secs(5),
            device: None,
            manipulation: Manipulation::None,
            memo: None,
            hot: None,
            stats: RecursiveForwarderStats::default(),
        }
    }

    /// Answer a memo-matched query without decoding it — only the
    /// positive wire-cache-hit case; anything else falls back to the
    /// decode path. See [`crate::memo`].
    fn try_memo_answer(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram, txid: u16) -> bool {
        // Replay the previous answer while its bytes are still exact — the
        // steady state of a census burst, one refcount bump per probe.
        if let Some(payload) = self.hot.as_ref().and_then(|h| h.serve(txid, ctx.now())) {
            if let Some(cache) = &mut self.cache {
                cache.record_hot_hit();
            }
            self.stats.client_queries += 1;
            self.stats.cache_answers += 1;
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: dnswire::DNS_PORT,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload,
            });
            return true;
        }
        let (qname, qtype, rd) = {
            let memo = self.memo.as_ref().expect("caller matched the memo");
            (memo.qname().clone(), memo.qtype(), memo.rd())
        };
        let Some(cache) = &mut self.cache else {
            return false;
        };
        match cache.get_wire(&qname, qtype, ctx.now(), txid, rd) {
            Some(CachedWire::Positive(bytes)) => {
                self.stats.client_queries += 1;
                self.stats.cache_answers += 1;
                let payload: netsim::Payload = bytes.into();
                if let Some(vb) = cache.wire_valid_before(&qname, qtype, ctx.now()) {
                    self.hot = Some(crate::memo::HotWire::new(txid, vb, payload.clone()));
                }
                ctx.send_udp(UdpSend {
                    src: Some(dgram.dst),
                    src_port: dnswire::DNS_PORT,
                    dst: dgram.src,
                    dst_port: dgram.src_port,
                    ttl: None,
                    payload,
                });
                true
            }
            _ => false,
        }
    }

    /// Disable the answer cache (some CPE proxies do not cache).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Attach a device profile (open ports / banners) for fingerprinting.
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = Some(device);
        self
    }

    /// Enable in-path response manipulation.
    pub fn with_manipulation(mut self, manipulation: Manipulation) -> Self {
        self.manipulation = manipulation;
        self
    }

    /// The resolver this forwarder relays to.
    pub fn resolver(&self) -> Ipv4Addr {
        self.resolver
    }

    /// Upstream ephemeral port for a client query, keyed off the client
    /// flow rather than an allocation counter. The upstream five-tuple is
    /// then a pure function of the downstream query: per-flow fault
    /// verdicts cannot depend on the order probes happen to arrive in
    /// (and therefore cannot depend on the shard count). A counter hands
    /// the fault-doomed port to whichever query arrives first.
    fn flow_port(&self, client: Ipv4Addr, client_port: u16, txid: u16) -> u16 {
        const BASE: u16 = 2048;
        const SPAN: u64 = 65000 - BASE as u64 + 1;
        let h = netsim::mix64(
            (u64::from(u32::from(client)) << 32) | (u64::from(client_port) << 16) | u64::from(txid),
        );
        let mut port = BASE + (h % SPAN) as u16;
        // On the rare (port, txid) collision with a query still in flight
        // — or a client retransmit racing its own first attempt — probe
        // linearly so the pending entry is never clobbered.
        while self.pending.contains_key(&(port, txid)) {
            port = if port >= 65000 { BASE } else { port + 1 };
        }
        port
    }
}

impl Host for RecursiveForwarder {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port != dnswire::DNS_PORT {
            // Upstream response to one of our ephemeral ports?
            if let Ok(msg) = Message::decode(&dgram.payload) {
                if msg.is_response() {
                    let key = (dgram.dst_port, msg.header.id);
                    if let Some(idx) = self.pending.remove(&key) {
                        let q = &mut self.queries[idx];
                        if q.done {
                            return;
                        }
                        q.done = true;
                        // Cache the answer under the client's question.
                        if let Some(cache) = &mut self.cache {
                            if !msg.answers.is_empty() {
                                let min_ttl = msg.answers.iter().map(|r| r.ttl).min().unwrap_or(0);
                                cache.insert(
                                    q.qname.clone(),
                                    q.qtype,
                                    CachedAnswer::Positive(msg.answers.clone()),
                                    min_ttl,
                                    ctx.now(),
                                );
                                // The cache changed (insert, possibly an
                                // eviction): any replayable answer may now
                                // be stale.
                                self.hot = None;
                            }
                        }
                        // Relay with the client's original transaction ID,
                        // from our own address: to the client *we* look
                        // like the resolver.
                        let mut relayed = msg.clone();
                        relayed.header.id = q.client_txid;
                        if let Manipulation::ReplaceARecords(inject) = self.manipulation {
                            for r in &mut relayed.answers {
                                if let dnswire::RData::A(a) = &mut r.rdata {
                                    *a = inject;
                                }
                            }
                        }
                        self.stats.relayed += 1;
                        ctx.send_udp(UdpSend {
                            src: None,
                            src_port: dnswire::DNS_PORT,
                            dst: q.client,
                            dst_port: q.client_port,
                            ttl: None,
                            payload: relayed.encode().into(),
                        });
                        return;
                    }
                }
            }
            // Not DNS business: fingerprinting surface.
            crate::device::handle_probe(ctx, &dgram, self.device.as_ref());
            return;
        }

        // Steady-state fast path: identical probes (modulo txid) skip
        // the decode when the answer is a positive wire-cache hit.
        if let Some(txid) = self
            .memo
            .as_ref()
            .and_then(|m| m.txid_of_match(&dgram.payload))
        {
            if self.try_memo_answer(ctx, &dgram, txid) {
                return;
            }
        }
        let Ok(query) = Message::decode(&dgram.payload) else {
            return;
        };
        if query.is_response() || query.question().is_none() {
            return;
        }
        if self.memo.is_none() {
            self.memo = QueryMemo::remember(&dgram.payload, &query);
        }
        self.stats.client_queries += 1;
        let q = query.question().expect("checked").clone();

        if let Some(cache) = &mut self.cache {
            // Standard `IN` queries are served from pre-encoded bytes
            // (txid/RD/TTL patched into the cached template); exotic
            // classes/opcodes take the builder path.
            if query.is_plain_in_query() {
                if let Some(crate::cache::CachedWire::Positive(bytes)) = cache.get_wire(
                    &q.qname,
                    q.qtype,
                    ctx.now(),
                    query.header.id,
                    query.header.flags.recursion_desired,
                ) {
                    self.stats.cache_answers += 1;
                    ctx.send_udp(UdpSend {
                        src: Some(dgram.dst),
                        src_port: dnswire::DNS_PORT,
                        dst: dgram.src,
                        dst_port: dgram.src_port,
                        ttl: None,
                        payload: bytes.into(),
                    });
                    return;
                }
            } else if let Some(CachedAnswer::Positive(records)) =
                cache.get(&q.qname, q.qtype, ctx.now())
            {
                self.stats.cache_answers += 1;
                let mut b = MessageBuilder::response_to(&query).recursion_available(true);
                for r in records {
                    b = b.answer(r);
                }
                ctx.send_udp(UdpSend {
                    src: Some(dgram.dst),
                    src_port: dnswire::DNS_PORT,
                    dst: dgram.src,
                    dst_port: dgram.src_port,
                    ttl: None,
                    payload: b.build().encode().into(),
                });
                return;
            }
        }

        // Forward upstream from our own address (the defining rewrite).
        let txid = query.header.id; // keep the ID; our port disambiguates
        let port = self.flow_port(dgram.src, dgram.src_port, txid);
        self.queries.push(PendingQuery {
            client: dgram.src,
            client_port: dgram.src_port,
            client_txid: query.header.id,
            qname: q.qname.clone(),
            qtype: q.qtype,
            done: false,
        });
        let idx = self.queries.len() - 1;
        self.pending.insert((port, txid), idx);
        self.stats.forwarded += 1;
        ctx.send_udp(UdpSend {
            src: None,
            src_port: port,
            dst: self.resolver,
            dst_port: dnswire::DNS_PORT,
            ttl: None,
            payload: dgram.payload.clone(),
        });
        ctx.set_timer(self.timeout, (u64::from(port) << 16) | u64::from(txid));
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
        let key = ((token >> 16) as u16, token as u16);
        if let Some(idx) = self.pending.remove(&key) {
            // Give up silently (stub clients retry on their own), matching
            // typical CPE proxy behaviour.
            self.queries[idx].done = true;
            self.stats.timeouts += 1;
        }
    }

    netsim::impl_host_downcast!();
}

/// Counters for a transparent forwarder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransparentForwarderStats {
    /// DNS queries relayed (spoofed) toward the resolver.
    pub relayed: u64,
    /// Queries whose TTL died at this device (ICMP Time Exceeded sent).
    pub ttl_exceeded: u64,
}

/// A transparent DNS forwarder: the misbehaving middlebox at the center of
/// the paper.
///
/// It relays port-53 queries to its configured resolver with the client's
/// source address preserved and never handles responses. It has *no
/// per-query state* — which is also why scanning campaigns based purely on
/// responses cannot see it (§3).
#[derive(Debug)]
pub struct TransparentForwarder {
    resolver: Ipv4Addr,
    device: Option<DeviceProfile>,
    /// Counters.
    pub stats: TransparentForwarderStats,
}

impl TransparentForwarder {
    /// A transparent forwarder relaying to `resolver`.
    pub fn new(resolver: Ipv4Addr) -> Self {
        TransparentForwarder {
            resolver,
            device: None,
            stats: TransparentForwarderStats::default(),
        }
    }

    /// Attach a device profile (open ports / banners) for fingerprinting.
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = Some(device);
        self
    }

    /// The resolver this forwarder relays to.
    pub fn resolver(&self) -> Ipv4Addr {
        self.resolver
    }
}

impl Host for TransparentForwarder {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port != dnswire::DNS_PORT {
            crate::device::handle_probe(ctx, &dgram, self.device.as_ref());
            return;
        }
        // Quick sanity check that this is a DNS query; middleboxes that
        // blindly redirect port 53 forward anything, so only the header is
        // peeked, not fully validated.
        if dnswire::peek_id(&dgram.payload).is_none() {
            return;
        }
        // Router-at-IP-layer behaviour: relaying decrements TTL; a dead TTL
        // elicits Time Exceeded *from this device* — DNSRoute++'s marker
        // for the forwarder itself.
        if dgram.ttl <= 1 {
            self.stats.ttl_exceeded += 1;
            ctx.send_time_exceeded(&dgram);
            return;
        }
        self.stats.relayed += 1;
        ctx.send_udp(UdpSend {
            // The defining spoof: original source preserved.
            src: Some(dgram.src),
            src_port: dgram.src_port,
            dst: self.resolver,
            dst_port: dnswire::DNS_PORT,
            ttl: Some(dgram.ttl - 1),
            payload: dgram.payload.clone(),
        });
    }

    netsim::impl_host_downcast!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::{DnsName, RrType};
    use netsim::testkit::{playground, Exchange};
    use netsim::{SimConfig, Simulator};

    const FWD_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    fn query_bytes(txid: u16) -> Vec<u8> {
        MessageBuilder::query(
            txid,
            DnsName::parse("odns-study.example.").unwrap(),
            RrType::A,
        )
        .recursion_desired(true)
        .build()
        .encode()
    }

    /// A resolver stand-in that answers every query with a fixed A record.
    struct CannedResolver {
        seen: Vec<Datagram>,
    }
    impl Host for CannedResolver {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
            let query = Message::decode(&dgram.payload).unwrap();
            let resp = MessageBuilder::response_to(&query)
                .recursion_available(true)
                .answer_a(
                    query.questions[0].qname.clone(),
                    300,
                    Ipv4Addr::new(7, 7, 7, 7),
                )
                .build();
            ctx.send_udp(UdpSend {
                src: Some(dgram.dst),
                src_port: 53,
                dst: dgram.src,
                dst_port: dgram.src_port,
                ttl: None,
                payload: resp.encode().into(),
            });
            self.seen.push(dgram);
        }
        netsim::impl_host_downcast!();
    }

    fn three_node_sim() -> (Simulator, netsim::NodeId, netsim::NodeId, netsim::NodeId) {
        let (topo, nodes) = playground(&[CLIENT_IP, FWD_IP, RESOLVER_IP]);
        let sim = Simulator::new(topo, SimConfig::default());
        (sim, nodes[0], nodes[1], nodes[2])
    }

    #[test]
    fn transparent_forwarder_spoofs_and_resolver_answers_client_directly() {
        let (mut sim, client, fwd, resolver) = three_node_sim();
        sim.install(fwd, TransparentForwarder::new(RESOLVER_IP));
        sim.install(resolver, CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            client,
            vec![(
                SimDuration::ZERO,
                UdpSend::new(34000, FWD_IP, 53, query_bytes(77)),
            )],
        );
        sim.run();

        let resolver_host: &CannedResolver = sim.host_as(resolver).unwrap();
        assert_eq!(resolver_host.seen.len(), 1);
        assert_eq!(
            resolver_host.seen[0].src, CLIENT_IP,
            "source spoofed to the client"
        );
        assert_eq!(
            resolver_host.seen[0].src_port, 34000,
            "client port preserved"
        );

        let client_host: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
        assert_eq!(client_host.datagrams.len(), 1);
        let (_, d) = &client_host.datagrams[0];
        assert_eq!(
            d.src, RESOLVER_IP,
            "answer comes from the resolver, not the probed IP"
        );
        let resp = Message::decode(&d.payload).unwrap();
        assert_eq!(resp.header.id, 77);

        let fwd_host: &TransparentForwarder = sim.host_as(fwd).unwrap();
        assert_eq!(fwd_host.stats.relayed, 1);
        assert_eq!(sim.stats().spoofed_sent, 1);
    }

    #[test]
    fn transparent_forwarder_blocked_by_sav() {
        let (topo, nodes) =
            netsim::testkit::playground_with_sav(&[CLIENT_IP, FWD_IP, RESOLVER_IP], true);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(nodes[1], TransparentForwarder::new(RESOLVER_IP));
        sim.install(nodes[2], CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            nodes[0],
            vec![(
                SimDuration::ZERO,
                UdpSend::new(34000, FWD_IP, 53, query_bytes(1)),
            )],
        );
        sim.run();
        let resolver_host: &CannedResolver = sim.host_as(nodes[2]).unwrap();
        assert!(resolver_host.seen.is_empty(), "SAV eats the spoofed relay");
        assert_eq!(sim.stats().dropped_sav, 1);
    }

    #[test]
    fn transparent_forwarder_emits_time_exceeded_on_dead_ttl() {
        let (mut sim, client, fwd, resolver) = three_node_sim();
        sim.install(fwd, TransparentForwarder::new(RESOLVER_IP));
        sim.install(resolver, CannedResolver { seen: vec![] });
        // One router on the playground path: TTL 2 arrives at the
        // forwarder with 1 left — the relay decrement kills it.
        netsim::testkit::install_script(
            &mut sim,
            client,
            vec![(
                SimDuration::ZERO,
                UdpSend {
                    src: None,
                    src_port: 34001,
                    dst: FWD_IP,
                    dst_port: 53,
                    ttl: Some(2),
                    payload: query_bytes(2).into(),
                },
            )],
        );
        sim.run();
        let client_host: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
        assert_eq!(client_host.icmp.len(), 1);
        let icmp = &client_host.icmp[0].1;
        assert_eq!(icmp.kind, netsim::IcmpKind::TimeExceeded);
        assert_eq!(icmp.from, FWD_IP, "the forwarder itself answers");
        let fwd_host: &TransparentForwarder = sim.host_as(fwd).unwrap();
        assert_eq!(fwd_host.stats.ttl_exceeded, 1);
        assert_eq!(fwd_host.stats.relayed, 0);
    }

    #[test]
    fn recursive_forwarder_rewrites_source_and_relays_answer() {
        let (mut sim, client, fwd, resolver) = three_node_sim();
        sim.install(fwd, RecursiveForwarder::new(RESOLVER_IP));
        sim.install(resolver, CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            client,
            vec![(
                SimDuration::ZERO,
                UdpSend::new(34000, FWD_IP, 53, query_bytes(42)),
            )],
        );
        sim.run();

        let resolver_host: &CannedResolver = sim.host_as(resolver).unwrap();
        assert_eq!(resolver_host.seen.len(), 1);
        assert_eq!(
            resolver_host.seen[0].src, FWD_IP,
            "source rewritten to the forwarder"
        );

        let client_host: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
        assert_eq!(client_host.datagrams.len(), 1);
        let (_, d) = &client_host.datagrams[0];
        assert_eq!(d.src, FWD_IP, "answer arrives from the probed IP");
        let resp = Message::decode(&d.payload).unwrap();
        assert_eq!(resp.header.id, 42, "client's transaction ID restored");
        assert_eq!(resp.answer_a_addrs(), vec![Ipv4Addr::new(7, 7, 7, 7)]);
        assert_eq!(sim.stats().spoofed_sent, 0, "no spoofing involved");
    }

    #[test]
    fn recursive_forwarder_serves_second_query_from_cache() {
        let (mut sim, client, fwd, resolver) = three_node_sim();
        sim.install(fwd, RecursiveForwarder::new(RESOLVER_IP));
        sim.install(resolver, CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            client,
            vec![
                (
                    SimDuration::ZERO,
                    UdpSend::new(34000, FWD_IP, 53, query_bytes(1)),
                ),
                (
                    SimDuration::from_secs(10),
                    UdpSend::new(34001, FWD_IP, 53, query_bytes(2)),
                ),
            ],
        );
        sim.run();
        let resolver_host: &CannedResolver = sim.host_as(resolver).unwrap();
        assert_eq!(
            resolver_host.seen.len(),
            1,
            "second query absorbed by cache"
        );
        let client_host: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
        assert_eq!(client_host.datagrams.len(), 2);
        let second = Message::decode(&client_host.datagrams[1].1.payload).unwrap();
        assert_eq!(second.answers[0].ttl, 290, "cached TTL decayed by 10 s");
        let f: &RecursiveForwarder = sim.host_as(fwd).unwrap();
        assert_eq!(f.stats.cache_answers, 1);
    }

    #[test]
    fn two_clients_same_txid_disambiguated_by_port() {
        // Two clients query the recursive forwarder with the *same* DNS
        // transaction ID; the forwarder's per-query upstream port keeps the
        // answers apart.
        let (topo, nodes) =
            playground(&[CLIENT_IP, Ipv4Addr::new(192, 0, 2, 2), FWD_IP, RESOLVER_IP]);
        let mut sim = Simulator::new(topo, SimConfig::default());
        sim.install(
            nodes[2],
            RecursiveForwarder::new(RESOLVER_IP).without_cache(),
        );
        sim.install(nodes[3], CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            nodes[0],
            vec![(
                SimDuration::ZERO,
                UdpSend::new(40001, FWD_IP, 53, query_bytes(99)),
            )],
        );
        netsim::testkit::install_script(
            &mut sim,
            nodes[1],
            vec![(
                SimDuration::from_micros(10),
                UdpSend::new(40002, FWD_IP, 53, query_bytes(99)),
            )],
        );
        sim.run();
        for client in [nodes[0], nodes[1]] {
            let h: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
            assert_eq!(h.datagrams.len(), 1, "each client gets exactly one answer");
            let m = Message::decode(&h.datagrams[0].1.payload).unwrap();
            assert_eq!(m.header.id, 99);
        }
    }

    #[test]
    fn manipulating_forwarder_rewrites_a_records() {
        let (mut sim, client, fwd, resolver) = three_node_sim();
        let inject = Ipv4Addr::new(10, 66, 66, 66);
        sim.install(
            fwd,
            RecursiveForwarder::new(RESOLVER_IP)
                .with_manipulation(Manipulation::ReplaceARecords(inject)),
        );
        sim.install(resolver, CannedResolver { seen: vec![] });
        netsim::testkit::install_script(
            &mut sim,
            client,
            vec![(
                SimDuration::ZERO,
                UdpSend::new(34000, FWD_IP, 53, query_bytes(8)),
            )],
        );
        sim.run();
        let client_host: &netsim::testkit::ScriptedClient = sim.host_as(client).unwrap();
        let resp = Message::decode(&client_host.datagrams[0].1.payload).unwrap();
        assert_eq!(
            resp.answer_a_addrs(),
            vec![inject],
            "all A records replaced"
        );
    }

    #[test]
    fn transparent_forwarder_ignores_garbage() {
        let mut ex = Exchange::new(FWD_IP, CLIENT_IP, TransparentForwarder::new(RESOLVER_IP));
        ex.send_at(SimDuration::ZERO, UdpSend::new(1, FWD_IP, 53, vec![0x01]));
        ex.run();
        let f: &TransparentForwarder = ex.subject();
        assert_eq!(f.stats.relayed, 0);
    }
}
