//! Memoized query decode — the steady-state fast path of a census.
//!
//! The transactional scanner's static-naming probes are byte-identical
//! except for the two transaction-ID bytes, and a planted forwarder or
//! resolver sees millions of them. Fully decoding each one (per-label
//! `Vec` allocations in the name parser) is the dominant host-side
//! allocation of a sweep. A [`QueryMemo`] remembers the byte tail and the
//! parsed question of one plain `IN` query; any later payload whose tail
//! memcmps equal *is* that query modulo txid, so the host can skip the
//! decode and serve a cached wire answer directly.
//!
//! The memo is strictly an accelerator: a non-matching payload, an
//! ACL-refused client, a negative cache entry, or a cache miss all fall
//! back to the ordinary decode path, which owns those responses.

use dnswire::{DnsName, Message, RrType};
use netsim::{Payload, SimTime};

/// A remembered plain `IN` query: its payload tail (everything after the
/// transaction ID) plus the question fields a cached-wire answer needs.
#[derive(Debug, Clone)]
pub struct QueryMemo {
    tail: Vec<u8>,
    qname: DnsName,
    qtype: RrType,
    rd: bool,
}

impl QueryMemo {
    /// Memoize a decoded query, if it is eligible: a plain `IN` query
    /// (single question, opcode QUERY, not a response) with a wire
    /// payload long enough to carry a header.
    pub fn remember(payload: &[u8], query: &Message) -> Option<QueryMemo> {
        if payload.len() < 12 || !query.is_plain_in_query() {
            return None;
        }
        let q = query.question()?;
        Some(QueryMemo {
            tail: payload[2..].to_vec(),
            qname: q.qname.clone(),
            qtype: q.qtype,
            rd: query.header.flags.recursion_desired,
        })
    }

    /// If `payload` is byte-identical to the memoized query apart from
    /// its transaction ID, return that ID. Everything the memo stores
    /// (question, flags, response bit) then holds for `payload` too.
    pub fn txid_of_match(&self, payload: &[u8]) -> Option<u16> {
        if payload.len() != self.tail.len() + 2 || payload[2..] != self.tail[..] {
            return None;
        }
        Some(u16::from_be_bytes([payload[0], payload[1]]))
    }

    /// The memoized question name (clone is an `Arc` bump).
    pub fn qname(&self) -> &DnsName {
        &self.qname
    }

    /// The memoized question type.
    pub fn qtype(&self) -> RrType {
        self.qtype
    }

    /// The memoized recursion-desired flag.
    pub fn rd(&self) -> bool {
        self.rd
    }
}

/// The last positive wire answer served through the memo fast path,
/// replayable while its bytes stay exact: same transaction ID and an
/// unchanged decayed TTL (TTLs decay per whole elapsed second). One
/// entry suffices because a census's probes share a per-block txid, so
/// the steady state serves every answer as a payload refcount bump —
/// no name hash, no re-encode, no allocation.
///
/// Only valid behind a [`QueryMemo`] byte match (which pins question and
/// flags), and must be dropped whenever the owning cache changes (insert
/// or eviction), so a replay can never outlive the entry it came from.
#[derive(Debug, Clone)]
pub struct HotWire {
    txid: u16,
    valid_before: SimTime,
    payload: Payload,
}

impl HotWire {
    /// Remember an answer just served for `txid`, byte-valid strictly
    /// before `valid_before` (the instant its embedded TTL next decays).
    pub fn new(txid: u16, valid_before: SimTime, payload: Payload) -> Self {
        HotWire {
            txid,
            valid_before,
            payload,
        }
    }

    /// Replay the answer for a memo-matched query with `txid` at `now`,
    /// if the bytes are still exact.
    pub fn serve(&self, txid: u16, now: SimTime) -> Option<Payload> {
        (txid == self.txid && now < self.valid_before).then(|| self.payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::MessageBuilder;

    fn query(txid: u16, name: &str) -> (Vec<u8>, Message) {
        let msg = MessageBuilder::query(txid, DnsName::parse(name).unwrap(), RrType::A)
            .recursion_desired(true)
            .build();
        (msg.encode(), msg)
    }

    #[test]
    fn matches_same_query_with_any_txid() {
        let (bytes, msg) = query(7, "odns-study.example.");
        let memo = QueryMemo::remember(&bytes, &msg).expect("plain IN query memoizes");
        assert_eq!(memo.txid_of_match(&bytes), Some(7));
        let (other, _) = query(0xBEEF, "odns-study.example.");
        assert_eq!(memo.txid_of_match(&other), Some(0xBEEF));
        assert_eq!(memo.qname().to_string(), "odns-study.example.");
        assert!(memo.rd());
    }

    #[test]
    fn rejects_different_queries_and_garbage() {
        let (bytes, msg) = query(1, "odns-study.example.");
        let memo = QueryMemo::remember(&bytes, &msg).unwrap();
        let (other_name, _) = query(1, "other.example.");
        assert_eq!(memo.txid_of_match(&other_name), None);
        assert_eq!(memo.txid_of_match(&[0x01]), None);
        let mut flipped = bytes.clone();
        flipped[2] ^= 0x80; // response bit
        assert_eq!(memo.txid_of_match(&flipped), None);
    }

    #[test]
    fn responses_do_not_memoize() {
        let (_, msg) = query(1, "odns-study.example.");
        let resp = msg.response_skeleton();
        assert!(QueryMemo::remember(&resp.encode(), &resp).is_none());
    }
}
