//! Resolver-side DNS cache with TTL decay, negative caching, and bounded
//! capacity.
//!
//! Cache behaviour is measurement-relevant twice over: (1) remaining TTLs
//! observed by the scanner reveal whether an answer was served from cache
//! (Figure 7 shows 300 s vs 50 s from the same resolver); (2) the
//! query-encoding detection method plants one unique name per probed
//! target, polluting caches and evicting legitimate entries — the paper's
//! argument for response-based probing (§6, "resolvers serving >40k
//! forwarders would take >40k cache entries").

use dnswire::{DnsName, MessageBuilder, Rcode, Record, ResponseTemplate, RrType};
use netsim::SimTime;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache lookup key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query name.
    pub name: DnsName,
    /// Query type.
    pub rtype: RrType,
}

/// A cached outcome: either records or a negative result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Positive answer records (TTLs as stored; adjusted on read).
    Positive(Vec<Record>),
    /// Negative result (NXDOMAIN or NODATA), with the RCODE to relay.
    Negative(Rcode),
}

/// A cache hit served on the wire-bytes fast path ([`DnsCache::get_wire`]).
#[derive(Debug)]
pub enum CachedWire {
    /// Fully encoded response: txid and RD patched, TTLs decayed.
    Positive(Vec<u8>),
    /// Negative result; the caller builds the (rare) error response.
    Negative(Rcode),
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: SimTime,
    expires: SimTime,
    /// Lazily built pre-encoded response for this entry — the hot serve
    /// path patches (txid, RD, TTL) instead of rebuilding and re-encoding
    /// the whole message per client. The name records the exact question
    /// casing the template echoes: name matching is case-insensitive
    /// (0x20 randomization!), so a querier whose casing differs gets a
    /// freshly built response instead of another client's casing.
    template: Option<(DnsName, Arc<ResponseTemplate>)>,
}

/// Counters describing cache effectiveness (Table 2 reproduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only expired entries).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries displaced by capacity pressure — the cache-pollution signal.
    pub evictions: u64,
    /// Entries that aged out.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when never queried.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded DNS cache with FIFO eviction.
///
/// Real resolvers use LRU-ish policies; FIFO keeps the simulation
/// deterministic and is a conservative (worse-for-the-defender) choice for
/// the pollution experiment: a polluter streaming unique names evicts
/// legitimate entries at the same rate under either policy.
#[derive(Debug)]
pub struct DnsCache {
    map: HashMap<CacheKey, Entry>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    /// Effectiveness counters.
    pub stats: CacheStats,
}

impl DnsCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DnsCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Current number of live-or-expired entries held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `name`/`rtype` at time `now`. Positive answers come back
    /// with record TTLs rewritten to the *remaining* lifetime — exactly
    /// what a resolver serves from cache, and what Figure 7 observes.
    pub fn get(&mut self, name: &DnsName, rtype: RrType, now: SimTime) -> Option<CachedAnswer> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        match self.map.get(&key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(e) if now >= e.expires => {
                self.stats.misses += 1;
                self.stats.expirations += 1;
                self.map.remove(&key);
                None
            }
            Some(e) => {
                self.stats.hits += 1;
                let remaining = (e.expires - now).as_micros() / 1_000_000;
                Some(match &e.answer {
                    CachedAnswer::Positive(records) => CachedAnswer::Positive(
                        records
                            .iter()
                            .map(|r| Record {
                                ttl: remaining as u32,
                                ..r.clone()
                            })
                            .collect(),
                    ),
                    CachedAnswer::Negative(rcode) => CachedAnswer::Negative(*rcode),
                })
            }
        }
    }

    /// Serve `name`/`rtype` at `now` directly as wire bytes, for a
    /// standard-opcode `IN` query with transaction ID `txid` and RD flag
    /// `rd`.
    ///
    /// Positive hits come back as encoded bytes, byte-identical to the
    /// `MessageBuilder::response_to(..).recursion_available(true)` path the
    /// resolvers previously walked per client — but produced with a single
    /// allocation from a per-entry [`ResponseTemplate`] built on first
    /// serve. Negative hits return the RCODE for the caller to build (the
    /// rare path). Stats count exactly like [`DnsCache::get`].
    pub fn get_wire(
        &mut self,
        name: &DnsName,
        rtype: RrType,
        now: SimTime,
        txid: u16,
        rd: bool,
    ) -> Option<CachedWire> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        match self.map.get_mut(&key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(e) if now >= e.expires => {
                self.stats.misses += 1;
                self.stats.expirations += 1;
                self.map.remove(&key);
                None
            }
            Some(e) => {
                self.stats.hits += 1;
                let remaining = ((e.expires - now).as_micros() / 1_000_000) as u32;
                match &e.answer {
                    CachedAnswer::Negative(rcode) => Some(CachedWire::Negative(*rcode)),
                    CachedAnswer::Positive(records) => {
                        let build = |qname: DnsName, answers: &[Record]| {
                            let mut b = MessageBuilder::query(0, qname, rtype)
                                .recursion_desired(true)
                                .build();
                            b.header.flags.response = true;
                            b.header.flags.recursion_available = true;
                            b.answers = answers.to_vec();
                            b
                        };
                        if e.template.is_none() {
                            let msg = build(key.name.clone(), records);
                            e.template = ResponseTemplate::from_message(&msg)
                                .map(|t| (key.name.clone(), Arc::new(t)));
                        }
                        match &e.template {
                            // The question section must echo *this*
                            // querier's casing exactly; labels() compares
                            // raw bytes where name equality would not.
                            Some((tq, t)) if tq.labels() == name.labels() => {
                                Some(CachedWire::Positive(t.materialize(txid, rd, remaining)))
                            }
                            Some(_) => {
                                // Casing differs from the template (0x20
                                // randomization): build this response the
                                // slow way rather than leak another
                                // client's casing.
                                let mut msg = build(name.clone(), records);
                                msg.header.id = txid;
                                msg.header.flags.recursion_desired = rd;
                                for r in &mut msg.answers {
                                    r.ttl = remaining;
                                }
                                Some(CachedWire::Positive(msg.encode()))
                            }
                            // Un-encodable entry (never built by this
                            // workspace): let the caller take the slow path.
                            None => None,
                        }
                    }
                }
            }
        }
    }

    /// How long the bytes of a positive wire answer served at `now` stay
    /// exact: the embedded TTL decays per whole elapsed second, so the
    /// encoding is stable strictly before `expires − remaining·1s`.
    /// `None` for missing, expired, or negative entries. No stats impact.
    pub fn wire_valid_before(
        &self,
        name: &DnsName,
        rtype: RrType,
        now: SimTime,
    ) -> Option<SimTime> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let e = self.map.get(&key)?;
        if now >= e.expires || !matches!(e.answer, CachedAnswer::Positive(_)) {
            return None;
        }
        let remaining = (e.expires - now).as_micros() / 1_000_000;
        Some(SimTime(e.expires.0 - remaining * 1_000_000))
    }

    /// Count a hit served from a host-side replay of bytes this cache
    /// produced (see `core::memo::HotWire`), keeping hit counters
    /// identical to a per-query [`DnsCache::get_wire`] walk.
    pub fn record_hot_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Insert an answer valid for `ttl_secs` starting at `now`.
    pub fn insert(
        &mut self,
        name: DnsName,
        rtype: RrType,
        answer: CachedAnswer,
        ttl_secs: u32,
        now: SimTime,
    ) {
        let key = CacheKey { name, rtype };
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Capacity pressure: evict in insertion order, skipping keys
            // already removed by expiration.
            while let Some(old) = self.order.pop_front() {
                if self.map.remove(&old).is_some() {
                    self.stats.evictions += 1;
                    break;
                }
            }
        }
        let expires = now + netsim::SimDuration::from_secs(u64::from(ttl_secs));
        if self
            .map
            .insert(
                key.clone(),
                Entry {
                    answer,
                    inserted: now,
                    expires,
                    template: None,
                },
            )
            .is_none()
        {
            self.order.push_back(key);
        }
        self.stats.insertions += 1;
    }

    /// Age of the entry for `name`/`rtype` at `now`, if present and live.
    pub fn age(&self, name: &DnsName, rtype: RrType, now: SimTime) -> Option<u64> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let e = self.map.get(&key)?;
        if now >= e.expires {
            None
        } else {
            Some((now - e.inserted).as_micros() / 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::DnsName;
    use netsim::SimDuration;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(s: &str, ttl: u32) -> Record {
        Record::a(name(s), ttl, Ipv4Addr::new(198, 51, 100, 7))
    }

    #[test]
    fn miss_then_hit_with_ttl_decay() {
        let mut c = DnsCache::new(8);
        let t0 = SimTime::ZERO;
        assert_eq!(c.get(&name("x.example."), RrType::A, t0), None);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            t0,
        );
        // 250 seconds later the remaining TTL is 50 — the Figure 7 signal.
        let t1 = t0 + SimDuration::from_secs(250);
        match c.get(&name("x.example."), RrType::A, t1).unwrap() {
            CachedAnswer::Positive(recs) => assert_eq!(recs[0].ttl, 50),
            other => panic!("expected positive, got {other:?}"),
        }
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn get_wire_matches_builder_path_and_decays_ttl() {
        let mut c = DnsCache::new(4);
        let n = name("odns-study.example.");
        c.insert(
            n.clone(),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("odns-study.example.", 300)]),
            300,
            SimTime(0),
        );
        let ten_s = SimTime(0) + SimDuration::from_secs(10);
        let Some(CachedWire::Positive(bytes)) = c.get_wire(&n, RrType::A, ten_s, 0xABCD, true)
        else {
            panic!("positive wire hit expected");
        };
        let m = dnswire::Message::decode(&bytes).unwrap();
        assert_eq!(m.header.id, 0xABCD);
        assert!(m.header.flags.recursion_desired);
        assert!(m.header.flags.recursion_available);
        assert_eq!(m.answers[0].ttl, 290, "TTL decayed by 10 s");
        // Second serve with different txid/rd comes from the template.
        let Some(CachedWire::Positive(bytes2)) = c.get_wire(&n, RrType::A, ten_s, 7, false) else {
            panic!("template hit expected");
        };
        let m2 = dnswire::Message::decode(&bytes2).unwrap();
        assert_eq!(m2.header.id, 7);
        assert!(!m2.header.flags.recursion_desired);
        assert_eq!(m2.answers, m.answers);
    }

    #[test]
    fn get_wire_echoes_each_queriers_casing() {
        // 0x20 case randomization: name matching is case-insensitive, but
        // the response's question section must echo the querier's exact
        // bytes, never another client's casing baked into the template.
        let mut c = DnsCache::new(4);
        let lower = name("odns-study.example.");
        let mixed = name("ODNS-Study.EXAMPLE.");
        c.insert(
            lower.clone(),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("odns-study.example.", 300)]),
            300,
            SimTime(0),
        );
        // Warm the template with the lowercase querier.
        let Some(CachedWire::Positive(first)) = c.get_wire(&lower, RrType::A, SimTime(1), 1, true)
        else {
            panic!("hit expected");
        };
        assert_eq!(
            dnswire::Message::decode(&first).unwrap().questions[0]
                .qname
                .to_string(),
            "odns-study.example."
        );
        // The mixed-case querier must see its own casing echoed.
        let Some(CachedWire::Positive(second)) = c.get_wire(&mixed, RrType::A, SimTime(1), 2, true)
        else {
            panic!("case-insensitive hit expected");
        };
        let echoed = dnswire::Message::decode(&second).unwrap();
        assert_eq!(echoed.questions[0].qname.to_string(), "ODNS-Study.EXAMPLE.");
        assert_eq!(echoed.header.id, 2);
    }

    #[test]
    fn expired_entries_are_misses() {
        let mut c = DnsCache::new(8);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 10)]),
            10,
            SimTime::ZERO,
        );
        let late = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(c.get(&name("x.example."), RrType::A, late), None);
        assert_eq!(c.stats.expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn negative_caching() {
        let mut c = DnsCache::new(8);
        c.insert(
            name("nx.example."),
            RrType::A,
            CachedAnswer::Negative(Rcode::NxDomain),
            60,
            SimTime::ZERO,
        );
        match c.get(
            &name("nx.example."),
            RrType::A,
            SimTime::ZERO + SimDuration::from_secs(1),
        ) {
            Some(CachedAnswer::Negative(Rcode::NxDomain)) => {}
            other => panic!("expected negative, got {other:?}"),
        }
    }

    #[test]
    fn capacity_eviction_fifo() {
        let mut c = DnsCache::new(2);
        let t = SimTime::ZERO;
        for i in 0..3 {
            c.insert(
                name(&format!("h{i}.example.")),
                RrType::A,
                CachedAnswer::Positive(vec![a_record("h.example.", 60)]),
                60,
                t,
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(
            c.get(&name("h0.example."), RrType::A, t),
            None,
            "oldest evicted"
        );
        assert!(c.get(&name("h2.example."), RrType::A, t).is_some());
    }

    #[test]
    fn pollution_scenario_unique_names_evict_legit_entry() {
        // The §6 argument: a query-encoding scan floods unique names.
        let mut c = DnsCache::new(100);
        let t = SimTime::ZERO;
        c.insert(
            name("popular.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("popular.example.", 3600)]),
            3600,
            t,
        );
        for i in 0..200u32 {
            c.insert(
                name(&format!(
                    "{}-{}-{}-{}.scan.odns-study.example.",
                    i % 256,
                    i / 256,
                    0,
                    1
                )),
                RrType::A,
                CachedAnswer::Positive(vec![a_record("x.", 300)]),
                300,
                t,
            );
        }
        assert_eq!(
            c.get(&name("popular.example."), RrType::A, t),
            None,
            "legit entry evicted"
        );
        assert!(c.stats.evictions >= 100);
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = DnsCache::new(4);
        let t = SimTime::ZERO;
        c.insert(
            name("MiXeD.Example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("mixed.example.", 60)]),
            60,
            t,
        );
        assert!(c.get(&name("mixed.example."), RrType::A, t).is_some());
    }

    #[test]
    fn age_tracks_insertion() {
        let mut c = DnsCache::new(4);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            SimTime::ZERO,
        );
        let now = SimTime::ZERO + SimDuration::from_secs(42);
        assert_eq!(c.age(&name("x.example."), RrType::A, now), Some(42));
        assert_eq!(c.age(&name("y.example."), RrType::A, now), None);
    }

    #[test]
    fn hit_ratio() {
        let mut c = DnsCache::new(4);
        let t = SimTime::ZERO;
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            t,
        );
        let _ = c.get(&name("x.example."), RrType::A, t);
        let _ = c.get(&name("y.example."), RrType::A, t);
        assert!((c.stats.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
