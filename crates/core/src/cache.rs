//! Resolver-side DNS cache with TTL decay, negative caching, and bounded
//! capacity.
//!
//! Cache behaviour is measurement-relevant twice over: (1) remaining TTLs
//! observed by the scanner reveal whether an answer was served from cache
//! (Figure 7 shows 300 s vs 50 s from the same resolver); (2) the
//! query-encoding detection method plants one unique name per probed
//! target, polluting caches and evicting legitimate entries — the paper's
//! argument for response-based probing (§6, "resolvers serving >40k
//! forwarders would take >40k cache entries").

use dnswire::{DnsName, Rcode, Record, RrType};
use netsim::SimTime;
use std::collections::{HashMap, VecDeque};

/// Cache lookup key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query name.
    pub name: DnsName,
    /// Query type.
    pub rtype: RrType,
}

/// A cached outcome: either records or a negative result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Positive answer records (TTLs as stored; adjusted on read).
    Positive(Vec<Record>),
    /// Negative result (NXDOMAIN or NODATA), with the RCODE to relay.
    Negative(Rcode),
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: SimTime,
    expires: SimTime,
}

/// Counters describing cache effectiveness (Table 2 reproduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only expired entries).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries displaced by capacity pressure — the cache-pollution signal.
    pub evictions: u64,
    /// Entries that aged out.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when never queried.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded DNS cache with FIFO eviction.
///
/// Real resolvers use LRU-ish policies; FIFO keeps the simulation
/// deterministic and is a conservative (worse-for-the-defender) choice for
/// the pollution experiment: a polluter streaming unique names evicts
/// legitimate entries at the same rate under either policy.
#[derive(Debug)]
pub struct DnsCache {
    map: HashMap<CacheKey, Entry>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    /// Effectiveness counters.
    pub stats: CacheStats,
}

impl DnsCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DnsCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Current number of live-or-expired entries held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `name`/`rtype` at time `now`. Positive answers come back
    /// with record TTLs rewritten to the *remaining* lifetime — exactly
    /// what a resolver serves from cache, and what Figure 7 observes.
    pub fn get(&mut self, name: &DnsName, rtype: RrType, now: SimTime) -> Option<CachedAnswer> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        match self.map.get(&key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(e) if now >= e.expires => {
                self.stats.misses += 1;
                self.stats.expirations += 1;
                self.map.remove(&key);
                None
            }
            Some(e) => {
                self.stats.hits += 1;
                let remaining = (e.expires - now).as_micros() / 1_000_000;
                Some(match &e.answer {
                    CachedAnswer::Positive(records) => CachedAnswer::Positive(
                        records
                            .iter()
                            .map(|r| Record {
                                ttl: remaining as u32,
                                ..r.clone()
                            })
                            .collect(),
                    ),
                    CachedAnswer::Negative(rcode) => CachedAnswer::Negative(*rcode),
                })
            }
        }
    }

    /// Insert an answer valid for `ttl_secs` starting at `now`.
    pub fn insert(
        &mut self,
        name: DnsName,
        rtype: RrType,
        answer: CachedAnswer,
        ttl_secs: u32,
        now: SimTime,
    ) {
        let key = CacheKey { name, rtype };
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Capacity pressure: evict in insertion order, skipping keys
            // already removed by expiration.
            while let Some(old) = self.order.pop_front() {
                if self.map.remove(&old).is_some() {
                    self.stats.evictions += 1;
                    break;
                }
            }
        }
        let expires = now + netsim::SimDuration::from_secs(u64::from(ttl_secs));
        if self
            .map
            .insert(
                key.clone(),
                Entry {
                    answer,
                    inserted: now,
                    expires,
                },
            )
            .is_none()
        {
            self.order.push_back(key);
        }
        self.stats.insertions += 1;
    }

    /// Age of the entry for `name`/`rtype` at `now`, if present and live.
    pub fn age(&self, name: &DnsName, rtype: RrType, now: SimTime) -> Option<u64> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let e = self.map.get(&key)?;
        if now >= e.expires {
            None
        } else {
            Some((now - e.inserted).as_micros() / 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::DnsName;
    use netsim::SimDuration;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(s: &str, ttl: u32) -> Record {
        Record::a(name(s), ttl, Ipv4Addr::new(198, 51, 100, 7))
    }

    #[test]
    fn miss_then_hit_with_ttl_decay() {
        let mut c = DnsCache::new(8);
        let t0 = SimTime::ZERO;
        assert_eq!(c.get(&name("x.example."), RrType::A, t0), None);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            t0,
        );
        // 250 seconds later the remaining TTL is 50 — the Figure 7 signal.
        let t1 = t0 + SimDuration::from_secs(250);
        match c.get(&name("x.example."), RrType::A, t1).unwrap() {
            CachedAnswer::Positive(recs) => assert_eq!(recs[0].ttl, 50),
            other => panic!("expected positive, got {other:?}"),
        }
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn expired_entries_are_misses() {
        let mut c = DnsCache::new(8);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 10)]),
            10,
            SimTime::ZERO,
        );
        let late = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(c.get(&name("x.example."), RrType::A, late), None);
        assert_eq!(c.stats.expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn negative_caching() {
        let mut c = DnsCache::new(8);
        c.insert(
            name("nx.example."),
            RrType::A,
            CachedAnswer::Negative(Rcode::NxDomain),
            60,
            SimTime::ZERO,
        );
        match c.get(
            &name("nx.example."),
            RrType::A,
            SimTime::ZERO + SimDuration::from_secs(1),
        ) {
            Some(CachedAnswer::Negative(Rcode::NxDomain)) => {}
            other => panic!("expected negative, got {other:?}"),
        }
    }

    #[test]
    fn capacity_eviction_fifo() {
        let mut c = DnsCache::new(2);
        let t = SimTime::ZERO;
        for i in 0..3 {
            c.insert(
                name(&format!("h{i}.example.")),
                RrType::A,
                CachedAnswer::Positive(vec![a_record("h.example.", 60)]),
                60,
                t,
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(
            c.get(&name("h0.example."), RrType::A, t),
            None,
            "oldest evicted"
        );
        assert!(c.get(&name("h2.example."), RrType::A, t).is_some());
    }

    #[test]
    fn pollution_scenario_unique_names_evict_legit_entry() {
        // The §6 argument: a query-encoding scan floods unique names.
        let mut c = DnsCache::new(100);
        let t = SimTime::ZERO;
        c.insert(
            name("popular.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("popular.example.", 3600)]),
            3600,
            t,
        );
        for i in 0..200u32 {
            c.insert(
                name(&format!(
                    "{}-{}-{}-{}.scan.odns-study.example.",
                    i % 256,
                    i / 256,
                    0,
                    1
                )),
                RrType::A,
                CachedAnswer::Positive(vec![a_record("x.", 300)]),
                300,
                t,
            );
        }
        assert_eq!(
            c.get(&name("popular.example."), RrType::A, t),
            None,
            "legit entry evicted"
        );
        assert!(c.stats.evictions >= 100);
    }

    #[test]
    fn case_insensitive_keys() {
        let mut c = DnsCache::new(4);
        let t = SimTime::ZERO;
        c.insert(
            name("MiXeD.Example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("mixed.example.", 60)]),
            60,
            t,
        );
        assert!(c.get(&name("mixed.example."), RrType::A, t).is_some());
    }

    #[test]
    fn age_tracks_insertion() {
        let mut c = DnsCache::new(4);
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            SimTime::ZERO,
        );
        let now = SimTime::ZERO + SimDuration::from_secs(42);
        assert_eq!(c.age(&name("x.example."), RrType::A, now), Some(42));
        assert_eq!(c.age(&name("y.example."), RrType::A, now), None);
    }

    #[test]
    fn hit_ratio() {
        let mut c = DnsCache::new(4);
        let t = SimTime::ZERO;
        c.insert(
            name("x.example."),
            RrType::A,
            CachedAnswer::Positive(vec![a_record("x.example.", 300)]),
            300,
            t,
        );
        let _ = c.get(&name("x.example."), RrType::A, t);
        let _ = c.get(&name("y.example."), RrType::A, t);
        assert!((c.stats.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
