//! Constants and name conventions of the measurement study.
//!
//! The study controls one DNS zone and steers all probes at a single
//! *static* query name inside it (the response-based method, §2). The
//! competing *query-based* method encodes the probed target's address into
//! the query name; both are implemented so Table 2 can be reproduced.

use crate::auth::{AuthConfig, StudyAuthServer};
use crate::zone::{DelegatingServer, Delegation};
use dnswire::DnsName;
use netsim::{NodeId, Simulator};
use std::net::Ipv4Addr;

/// The DNS zone the study controls (placeholder TLD per RFC 2606).
pub const STUDY_ZONE: &str = "odns-study.example.";

/// The static name every response-based probe queries. Static names let
/// resolver caches absorb repeat queries, keeping authoritative load low
/// (Table 2, "Utilization of caches: High / Load auth. name server: Low").
pub const STUDY_QNAME: &str = "odns-study.example.";

/// Subdomain under which the query-based method encodes targets:
/// `203-0-113-1.scan.odns-study.example.`.
pub const SCAN_LABEL: &str = "scan";

/// The static control record's address. The dynamic record reflects the
/// immediate client; this one never changes. Requiring *both* records
/// intact makes classification robust against middlebox manipulation
/// (§4.2: Shadowserver requires only one correct record and therefore
/// counts manipulated responders too).
pub const CONTROL_A: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 200);

/// TTL of the study's answer records (Figure 7 uses 300 s).
pub const ANSWER_TTL: u32 = 300;

/// The study zone as a parsed name.
pub fn study_zone() -> DnsName {
    DnsName::parse(STUDY_ZONE).expect("constant zone parses")
}

/// The static query name as a parsed name.
pub fn study_qname() -> DnsName {
    DnsName::parse(STUDY_QNAME).expect("constant qname parses")
}

/// Build a query-based (destination-encoded) name for `target`:
/// `a-b-c-d.scan.odns-study.example.`.
pub fn encode_target_name(target: Ipv4Addr) -> DnsName {
    let o = target.octets();
    let s = format!(
        "{}-{}-{}-{}.{}.{}",
        o[0], o[1], o[2], o[3], SCAN_LABEL, STUDY_ZONE
    );
    DnsName::parse(&s).expect("encoded name parses")
}

/// Recover the target address from a destination-encoded name, if `name`
/// follows the `a-b-c-d.scan.<zone>` convention.
pub fn decode_target_name(name: &DnsName) -> Option<Ipv4Addr> {
    let zone = study_zone();
    if !name.is_subdomain_of(&zone) {
        return None;
    }
    let labels = name.labels();
    let extra = labels.len().checked_sub(zone.label_count())?;
    if extra != 2 {
        return None;
    }
    if !labels[1].eq_ignore_ascii_case(SCAN_LABEL.as_bytes()) {
        return None;
    }
    let first = std::str::from_utf8(&labels[0]).ok()?;
    let parts: Vec<&str> = first.split('-').collect();
    if parts.len() != 4 {
        return None;
    }
    let mut octets = [0u8; 4];
    for (i, p) in parts.iter().enumerate() {
        octets[i] = p.parse().ok()?;
    }
    Some(Ipv4Addr::from(octets))
}

/// Node/address layout of one study-server stack (root → TLD → study
/// authoritative). A sharded census deploys one full stack per shard so
/// every shard's recursive resolution is self-contained.
#[derive(Debug, Clone, Copy)]
pub struct StudyNodes {
    /// Root name-server node.
    pub root: NodeId,
    /// TLD (`example.`) server node.
    pub tld: NodeId,
    /// TLD server address (delegation glue installed at the root).
    pub tld_ip: Ipv4Addr,
    /// Study authoritative node.
    pub auth: NodeId,
    /// Study authoritative address (delegation glue installed at the TLD).
    pub auth_ip: Ipv4Addr,
}

/// Install the study's full delegation chain at `nodes`: a root server
/// delegating `example.` to the TLD, the TLD delegating the study zone to
/// the authoritative, and the authoritative server itself configured with
/// `auth_config`. Recursive resolution of the study name is genuinely
/// iterative through this chain, in every simulator it is installed in.
pub fn install_study_stack(sim: &mut Simulator, nodes: StudyNodes, auth_config: AuthConfig) {
    let mut root = DelegatingServer::root();
    root.delegate(Delegation {
        zone: DnsName::parse("example.").expect("static zone parses"),
        ns_name: DnsName::parse("a.nic.example.").expect("static name parses"),
        ns_ip: nodes.tld_ip,
    });
    sim.install(nodes.root, root);
    let mut tld = DelegatingServer::new(DnsName::parse("example.").expect("static zone parses"));
    tld.delegate(Delegation {
        zone: study_zone(),
        ns_name: DnsName::parse("ns1.odns-study.example.").expect("static name parses"),
        ns_ip: nodes.auth_ip,
    });
    sim.install(nodes.tld, tld);
    sim.install(nodes.auth, StudyAuthServer::new(auth_config));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_parse() {
        assert_eq!(study_zone().label_count(), 2);
        assert_eq!(study_qname(), study_zone());
    }

    #[test]
    fn encode_decode_target_roundtrip() {
        let t = Ipv4Addr::new(203, 0, 113, 1);
        let name = encode_target_name(t);
        assert_eq!(name.to_string(), "203-0-113-1.scan.odns-study.example.");
        assert_eq!(decode_target_name(&name), Some(t));
    }

    #[test]
    fn decode_rejects_foreign_names() {
        assert_eq!(
            decode_target_name(&DnsName::parse("google.com.").unwrap()),
            None
        );
        assert_eq!(decode_target_name(&study_qname()), None);
        assert_eq!(
            decode_target_name(&DnsName::parse("1-2-3.scan.odns-study.example.").unwrap()),
            None,
            "three octets is not an IP"
        );
        assert_eq!(
            decode_target_name(&DnsName::parse("1-2-3-4.other.odns-study.example.").unwrap()),
            None,
            "wrong subdomain label"
        );
        assert_eq!(
            decode_target_name(&DnsName::parse("1-2-3-999.scan.odns-study.example.").unwrap()),
            None,
            "octet out of range"
        );
    }

    #[test]
    fn decode_is_case_insensitive_on_label() {
        let name = DnsName::parse("9-8-7-6.SCAN.odns-study.example.").unwrap();
        assert_eq!(decode_target_name(&name), Some(Ipv4Addr::new(9, 8, 7, 6)));
    }
}
