//! Public resolver projects: Google, Cloudflare, Quad9, OpenDNS.
//!
//! Figure 5 attributes the resolvers used by transparent forwarders to
//! these four projects (plus "other"); Figure 6 compares path lengths to
//! their anycast deployments. This module carries the well-known service
//! addresses, project ASNs, and a helper to deploy an anycast PoP fleet
//! into a topology.

use crate::recursive::{RecursiveResolver, ResolverConfig};
use netsim::{AsId, HostSpec, NodeId, SimDuration, Simulator, TopologyBuilder};
use std::fmt;
use std::net::Ipv4Addr;

/// The four large public resolver projects of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResolverProject {
    /// Google Public DNS (8.8.8.8, AS 15169).
    Google,
    /// Cloudflare (1.1.1.1, AS 13335).
    Cloudflare,
    /// Quad9 (9.9.9.9, AS 42).
    Quad9,
    /// Cisco OpenDNS (208.67.222.222, AS 36692).
    OpenDns,
}

impl ResolverProject {
    /// All four projects, in the paper's display order.
    pub fn all() -> [ResolverProject; 4] {
        [
            ResolverProject::Google,
            ResolverProject::Cloudflare,
            ResolverProject::Quad9,
            ResolverProject::OpenDns,
        ]
    }

    /// The well-known anycast service address.
    pub fn service_ip(self) -> Ipv4Addr {
        match self {
            ResolverProject::Google => Ipv4Addr::new(8, 8, 8, 8),
            ResolverProject::Cloudflare => Ipv4Addr::new(1, 1, 1, 1),
            ResolverProject::Quad9 => Ipv4Addr::new(9, 9, 9, 9),
            ResolverProject::OpenDns => Ipv4Addr::new(208, 67, 222, 222),
        }
    }

    /// The project's ASN (used for indirect-consolidation attribution,
    /// Table 4: "the ASN of A_resolver belongs to one of the four common
    /// resolver projects").
    pub fn asn(self) -> u32 {
        match self {
            ResolverProject::Google => 15169,
            ResolverProject::Cloudflare => 13335,
            ResolverProject::Quad9 => 42,
            ResolverProject::OpenDns => 36692,
        }
    }

    /// Project owning a service address, if any.
    pub fn from_service_ip(ip: Ipv4Addr) -> Option<ResolverProject> {
        ResolverProject::all()
            .into_iter()
            .find(|p| p.service_ip() == ip)
    }

    /// Project owning an ASN, if any.
    pub fn from_asn(asn: u32) -> Option<ResolverProject> {
        ResolverProject::all().into_iter().find(|p| p.asn() == asn)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ResolverProject::Google => "Google",
            ResolverProject::Cloudflare => "Cloudflare",
            ResolverProject::Quad9 => "Quad9",
            ResolverProject::OpenDns => "OpenDNS",
        }
    }
}

impl fmt::Display for ResolverProject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A deployed public-resolver fleet: the instance nodes per PoP.
#[derive(Debug, Clone)]
pub struct PublicDeployment {
    /// Which project this is.
    pub project: ResolverProject,
    /// Instance nodes, one per PoP AS.
    pub instances: Vec<NodeId>,
}

/// Create one resolver instance (PoP) of `project` in each AS of
/// `pop_ases`, registering all of them under the project's anycast service
/// address. `unicast_base` supplies each instance's unique egress address
/// (`unicast_base + index`), which is what the study's authoritative server
/// sees as the immediate client.
pub fn deploy_public_resolver(
    b: &mut TopologyBuilder,
    project: ResolverProject,
    pop_ases: &[AsId],
    unicast_base: Ipv4Addr,
) -> PublicDeployment {
    let service = project.service_ip();
    let mut instances = Vec::with_capacity(pop_ases.len());
    let base = u32::from(unicast_base);
    for (i, &as_id) in pop_ases.iter().enumerate() {
        let egress = Ipv4Addr::from(base + i as u32);
        let node = b.add_host(
            as_id,
            HostSpec {
                ip: egress,
                extra_ips: vec![],
                access_routers: vec![],
                link_latency: SimDuration::from_micros(500),
            },
        );
        b.add_anycast_instance(service, node);
        instances.push(node);
    }
    PublicDeployment { project, instances }
}

/// Install open recursive resolvers on every instance of a deployment.
pub fn install_resolver_instances(
    sim: &mut Simulator,
    deployment: &PublicDeployment,
    roots: Vec<Ipv4Addr>,
) {
    for &node in &deployment.instances {
        sim.install(
            node,
            RecursiveResolver::new(ResolverConfig::open(roots.clone())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_ips_are_well_known() {
        assert_eq!(
            ResolverProject::Google.service_ip(),
            Ipv4Addr::new(8, 8, 8, 8)
        );
        assert_eq!(
            ResolverProject::Cloudflare.service_ip(),
            Ipv4Addr::new(1, 1, 1, 1)
        );
        assert_eq!(
            ResolverProject::Quad9.service_ip(),
            Ipv4Addr::new(9, 9, 9, 9)
        );
        assert_eq!(
            ResolverProject::OpenDns.service_ip(),
            Ipv4Addr::new(208, 67, 222, 222)
        );
    }

    #[test]
    fn ip_and_asn_lookup_roundtrip() {
        for p in ResolverProject::all() {
            assert_eq!(ResolverProject::from_service_ip(p.service_ip()), Some(p));
            assert_eq!(ResolverProject::from_asn(p.asn()), Some(p));
        }
        assert_eq!(
            ResolverProject::from_service_ip(Ipv4Addr::new(192, 0, 2, 1)),
            None
        );
        assert_eq!(ResolverProject::from_asn(65000), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ResolverProject::OpenDns.to_string(), "OpenDNS");
        assert_eq!(ResolverProject::Google.to_string(), "Google");
    }

    #[test]
    fn deployment_registers_anycast_instances() {
        use netsim::{AsKind, AsSpec, CountryCode};
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(AsSpec {
            asn: 15169,
            country: CountryCode::new("USA"),
            kind: AsKind::Content,
            sav_outbound: true,
            transit_routers: vec![Ipv4Addr::new(10, 0, 0, 1)],
        });
        let a1 = b.add_as(AsSpec {
            asn: 15170,
            country: CountryCode::new("BRA"),
            kind: AsKind::Content,
            sav_outbound: true,
            transit_routers: vec![Ipv4Addr::new(10, 1, 0, 1)],
        });
        b.connect(a0, a1, netsim::Relationship::Peer);
        let d = deploy_public_resolver(
            &mut b,
            ResolverProject::Google,
            &[a0, a1],
            Ipv4Addr::new(8, 8, 4, 1),
        );
        assert_eq!(d.instances.len(), 2);
        let topo = b.build().unwrap();
        let group = topo.anycast_group(Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        assert_eq!(group.instances, d.instances);
        // Each instance has a distinct unicast egress.
        assert_eq!(topo.host_spec(d.instances[0]).ip, Ipv4Addr::new(8, 8, 4, 1));
        assert_eq!(topo.host_spec(d.instances[1]).ip, Ipv4Addr::new(8, 8, 4, 2));
    }
}
