//! Delegation-only name servers: the simulated root and TLD layers.
//!
//! Recursive resolvers in this reproduction perform *real* iterative
//! resolution: they start at a root server, follow a referral to the TLD
//! server, and a second referral to the study's authoritative server. This
//! keeps resolver caches, referral latency, and authoritative load honest
//! for the Table 2 method comparison.

use dnswire::{Class, DnsName, Message, MessageBuilder, RData, Rcode, Record};
use netsim::{Ctx, Datagram, Host, UdpSend};
use std::net::Ipv4Addr;

/// A delegation: the subtree at `zone` is served by `ns_name` at `ns_ip`.
#[derive(Debug, Clone)]
pub struct Delegation {
    /// Apex of the delegated zone.
    pub zone: DnsName,
    /// Name server host name (cosmetic; resolution uses the glue).
    pub ns_name: DnsName,
    /// Glue address of the name server.
    pub ns_ip: Ipv4Addr,
}

/// A name server that owns `origin` and only delegates.
///
/// * Queries for names under a registered delegation get a referral
///   (authority NS + glue A in the additional section).
/// * Queries for other names under `origin` get NXDOMAIN.
/// * Queries outside `origin` get REFUSED (a root server's `origin` is the
///   root, so nothing is outside it).
#[derive(Debug)]
pub struct DelegatingServer {
    origin: DnsName,
    delegations: Vec<Delegation>,
    ns_ttl: u32,
    /// Number of queries served (root/TLD load accounting).
    pub queries_served: u64,
}

impl DelegatingServer {
    /// Create a server authoritative for `origin`.
    pub fn new(origin: DnsName) -> Self {
        DelegatingServer {
            origin,
            delegations: Vec::new(),
            ns_ttl: 172_800,
            queries_served: 0,
        }
    }

    /// A root server (origin `.`).
    pub fn root() -> Self {
        Self::new(DnsName::root())
    }

    /// Register a delegation.
    pub fn delegate(&mut self, d: Delegation) -> &mut Self {
        self.delegations.push(d);
        self
    }

    /// Longest-match delegation lookup.
    fn find_delegation(&self, qname: &DnsName) -> Option<&Delegation> {
        self.delegations
            .iter()
            .filter(|d| qname.is_subdomain_of(&d.zone))
            .max_by_key(|d| d.zone.label_count())
    }

    fn respond(&self, query: &Message) -> Message {
        let q = query.question().expect("caller checked");
        if !q.qname.is_subdomain_of(&self.origin) {
            return MessageBuilder::response_to(query)
                .rcode(Rcode::Refused)
                .build();
        }
        match self.find_delegation(&q.qname) {
            Some(d) => MessageBuilder::response_to(query)
                .authority(Record {
                    name: d.zone.clone(),
                    class: Class::In,
                    ttl: self.ns_ttl,
                    rdata: RData::Ns(d.ns_name.clone()),
                })
                .additional(Record::a(d.ns_name.clone(), self.ns_ttl, d.ns_ip))
                .build(),
            None => MessageBuilder::response_to(query)
                .authoritative(true)
                .rcode(Rcode::NxDomain)
                .build(),
        }
    }
}

impl Host for DelegatingServer {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if dgram.dst_port != dnswire::DNS_PORT {
            ctx.send_port_unreachable(&dgram);
            return;
        }
        let Ok(query) = Message::decode(&dgram.payload) else {
            return;
        };
        if query.is_response() || query.question().is_none() {
            return;
        }
        self.queries_served += 1;
        let response = self.respond(&query);
        ctx.send_udp(UdpSend {
            src: Some(dgram.dst),
            src_port: dnswire::DNS_PORT,
            dst: dgram.src,
            dst_port: dgram.src_port,
            ttl: None,
            payload: response.encode().into(),
        });
    }

    netsim::impl_host_downcast!();
}

/// Referral information extracted from a delegation response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Referral {
    /// Delegated zone apex.
    pub zone: DnsName,
    /// Name server to ask next.
    pub ns_ip: Ipv4Addr,
}

/// Parse a referral out of a response: NS in authority + A glue in
/// additional. Returns `None` when the response is not a referral.
pub fn extract_referral(m: &Message) -> Option<Referral> {
    if !m.answers.is_empty() {
        return None;
    }
    let ns = m.authorities.iter().find_map(|r| match &r.rdata {
        RData::Ns(name) => Some((r.name.clone(), name.clone())),
        _ => None,
    })?;
    let glue = m
        .additionals
        .iter()
        .find_map(|r| if r.name == ns.1 { r.a_addr() } else { None })?;
    Some(Referral {
        zone: ns.0,
        ns_ip: glue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::RrType;
    use netsim::testkit::Exchange;
    use netsim::SimDuration;

    const ROOT_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 9);

    fn example_root() -> DelegatingServer {
        let mut s = DelegatingServer::root();
        s.delegate(Delegation {
            zone: DnsName::parse("example.").unwrap(),
            ns_name: DnsName::parse("a.nic.example.").unwrap(),
            ns_ip: Ipv4Addr::new(198, 41, 1, 4),
        });
        s
    }

    fn ask(server: DelegatingServer, qname: &str) -> Message {
        let mut ex = Exchange::new(ROOT_IP, CLIENT_IP, server);
        let q = MessageBuilder::query(1, DnsName::parse(qname).unwrap(), RrType::A).build();
        ex.send_at(
            SimDuration::ZERO,
            UdpSend::new(5000, ROOT_IP, 53, q.encode()),
        );
        ex.run();
        Message::decode(&ex.received()[0].1.payload).unwrap()
    }

    #[test]
    fn referral_for_delegated_subtree() {
        let resp = ask(example_root(), "odns-study.example.");
        assert!(resp.answers.is_empty());
        let referral = extract_referral(&resp).unwrap();
        assert_eq!(referral.zone, DnsName::parse("example.").unwrap());
        assert_eq!(referral.ns_ip, Ipv4Addr::new(198, 41, 1, 4));
    }

    #[test]
    fn nxdomain_for_unknown_tld() {
        let resp = ask(example_root(), "odns-study.nowhere.");
        assert_eq!(resp.header.flags.rcode, Rcode::NxDomain);
        assert_eq!(extract_referral(&resp), None);
    }

    #[test]
    fn longest_match_wins() {
        let mut s = DelegatingServer::root();
        s.delegate(Delegation {
            zone: DnsName::parse("example.").unwrap(),
            ns_name: DnsName::parse("a.nic.example.").unwrap(),
            ns_ip: Ipv4Addr::new(198, 41, 1, 4),
        });
        s.delegate(Delegation {
            zone: DnsName::parse("odns-study.example.").unwrap(),
            ns_name: DnsName::parse("ns1.odns-study.example.").unwrap(),
            ns_ip: Ipv4Addr::new(198, 41, 2, 4),
        });
        let resp = ask(s, "odns-study.example.");
        let referral = extract_referral(&resp).unwrap();
        assert_eq!(
            referral.zone,
            DnsName::parse("odns-study.example.").unwrap()
        );
        assert_eq!(referral.ns_ip, Ipv4Addr::new(198, 41, 2, 4));
    }

    #[test]
    fn non_referral_response_yields_none() {
        let m = MessageBuilder::query(1, DnsName::parse("x.").unwrap(), RrType::A).build();
        let answered = MessageBuilder::response_to(&m)
            .answer_a(DnsName::parse("x.").unwrap(), 60, Ipv4Addr::new(1, 1, 1, 1))
            .build();
        assert_eq!(extract_referral(&answered), None);
    }

    #[test]
    fn out_of_origin_refused() {
        let mut tld = DelegatingServer::new(DnsName::parse("example.").unwrap());
        tld.delegate(Delegation {
            zone: DnsName::parse("odns-study.example.").unwrap(),
            ns_name: DnsName::parse("ns1.odns-study.example.").unwrap(),
            ns_ip: Ipv4Addr::new(198, 41, 2, 4),
        });
        let resp = ask(tld, "google.com.");
        assert_eq!(resp.header.flags.rcode, Rcode::Refused);
    }
}
