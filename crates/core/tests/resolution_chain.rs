//! End-to-end iterative resolution: stub → resolver → root → TLD → study
//! authoritative server, all through the simulated network.

use dnswire::{DnsName, Message, MessageBuilder, Rcode, RrType};
use netsim::testkit::{install_script, playground, ScriptedClient};
use netsim::{SimConfig, SimDuration, Simulator, UdpSend};
use odns::study;
use odns::{
    AccessPolicy, AuthConfig, DelegatingServer, Delegation, RecursiveResolver, ResolverConfig,
    StudyAuthServer,
};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const TLD: Ipv4Addr = Ipv4Addr::new(198, 41, 1, 4);
const AUTH: Ipv4Addr = Ipv4Addr::new(198, 41, 2, 4);

/// Builds the full hierarchy in a single-AS playground and returns the sim
/// plus node ids: [client, resolver, root, tld, auth].
fn hierarchy(resolver_config: ResolverConfig) -> (Simulator, Vec<netsim::NodeId>) {
    let (topo, nodes) = playground(&[CLIENT, RESOLVER, ROOT, TLD, AUTH]);
    let mut sim = Simulator::new(topo, SimConfig::default());

    let mut root = DelegatingServer::root();
    root.delegate(Delegation {
        zone: DnsName::parse("example.").unwrap(),
        ns_name: DnsName::parse("a.nic.example.").unwrap(),
        ns_ip: TLD,
    });
    sim.install(nodes[2], root);

    let mut tld = DelegatingServer::new(DnsName::parse("example.").unwrap());
    tld.delegate(Delegation {
        zone: study::study_zone(),
        ns_name: DnsName::parse("ns1.odns-study.example.").unwrap(),
        ns_ip: AUTH,
    });
    sim.install(nodes[3], tld);

    sim.install(nodes[4], StudyAuthServer::new(AuthConfig::default()));
    sim.install(nodes[1], RecursiveResolver::new(resolver_config));
    (sim, nodes)
}

fn study_query(txid: u16) -> Vec<u8> {
    MessageBuilder::query(txid, study::study_qname(), RrType::A)
        .recursion_desired(true)
        .build()
        .encode()
}

#[test]
fn full_chain_resolves_with_two_a_records() {
    let (mut sim, nodes) = hierarchy(ResolverConfig::open(vec![ROOT]));
    install_script(
        &mut sim,
        nodes[0],
        vec![(
            SimDuration::ZERO,
            UdpSend::new(34000, RESOLVER, 53, study_query(1000)),
        )],
    );
    assert!(sim.run());

    let client: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
    assert_eq!(client.datagrams.len(), 1);
    let resp = Message::decode(&client.datagrams[0].1.payload).unwrap();
    assert_eq!(resp.header.id, 1000);
    assert!(resp.header.flags.recursion_available);
    // Dynamic record reflects the resolver's egress (the resolver node's
    // unicast address); control record is the study constant.
    assert_eq!(resp.answer_a_addrs(), vec![RESOLVER, study::CONTROL_A]);

    // The resolver walked root → TLD → auth: three upstream queries.
    let resolver: &RecursiveResolver = sim.host_as(nodes[1]).unwrap();
    assert_eq!(resolver.stats.upstream_queries, 3);
    assert_eq!(resolver.stats.client_queries, 1);

    let root: &DelegatingServer = sim.host_as(nodes[2]).unwrap();
    assert_eq!(root.queries_served, 1);
    let auth: &StudyAuthServer = sim.host_as(nodes[4]).unwrap();
    assert_eq!(auth.stats.queries_received, 1);
    assert_eq!(
        auth.log[0].client, RESOLVER,
        "auth sees the resolver, not the client"
    );
}

#[test]
fn second_query_served_from_cache_with_decayed_ttl() {
    let (mut sim, nodes) = hierarchy(ResolverConfig::open(vec![ROOT]));
    install_script(
        &mut sim,
        nodes[0],
        vec![
            (
                SimDuration::ZERO,
                UdpSend::new(34000, RESOLVER, 53, study_query(1)),
            ),
            (
                SimDuration::from_secs(250),
                UdpSend::new(34001, RESOLVER, 53, study_query(2)),
            ),
        ],
    );
    sim.run();

    let client: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
    assert_eq!(client.datagrams.len(), 2);
    let first = Message::decode(&client.datagrams[0].1.payload).unwrap();
    let second = Message::decode(&client.datagrams[1].1.payload).unwrap();
    assert_eq!(first.answers[0].ttl, study::ANSWER_TTL);
    // Figure 7's cache signal: remaining TTL = 300 - 250 = 50.
    assert_eq!(second.answers[0].ttl, 50);

    let auth: &StudyAuthServer = sim.host_as(nodes[4]).unwrap();
    assert_eq!(auth.stats.queries_received, 1, "cache absorbed the repeat");
    let resolver: &RecursiveResolver = sim.host_as(nodes[1]).unwrap();
    assert_eq!(resolver.stats.cache_answers, 1);
}

#[test]
fn restricted_resolver_refuses_external_scanner() {
    // This is the reason transparent forwarders must relay to *open*
    // resolvers (§2): a restricted resolver rejects the spoofed scanner
    // address.
    let (mut sim, nodes) = hierarchy(ResolverConfig::restricted(
        vec![ROOT],
        vec![(Ipv4Addr::new(10, 0, 0, 0), 8)], // only RFC1918 space allowed
    ));
    install_script(
        &mut sim,
        nodes[0],
        vec![(
            SimDuration::ZERO,
            UdpSend::new(34000, RESOLVER, 53, study_query(9)),
        )],
    );
    sim.run();
    let client: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
    let resp = Message::decode(&client.datagrams[0].1.payload).unwrap();
    assert_eq!(resp.header.flags.rcode, Rcode::Refused);
    assert!(resp.answers.is_empty());
    let resolver: &RecursiveResolver = sim.host_as(nodes[1]).unwrap();
    assert_eq!(resolver.stats.refused, 1);
    assert_eq!(
        resolver.stats.upstream_queries, 0,
        "no recursion for refused clients"
    );
}

#[test]
fn nxdomain_is_negatively_cached() {
    let (mut sim, nodes) = hierarchy(ResolverConfig::open(vec![ROOT]));
    let bad = MessageBuilder::query(
        5,
        DnsName::parse("missing.odns-study.example.").unwrap(),
        RrType::A,
    )
    .recursion_desired(true)
    .build()
    .encode();
    install_script(
        &mut sim,
        nodes[0],
        vec![
            (
                SimDuration::ZERO,
                UdpSend::new(34000, RESOLVER, 53, bad.clone()),
            ),
            (
                SimDuration::from_secs(10),
                UdpSend::new(34001, RESOLVER, 53, bad),
            ),
        ],
    );
    sim.run();
    let client: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
    assert_eq!(client.datagrams.len(), 2);
    for (_, d) in &client.datagrams {
        let m = Message::decode(&d.payload).unwrap();
        assert_eq!(m.header.flags.rcode, Rcode::NxDomain);
    }
    let auth: &StudyAuthServer = sim.host_as(nodes[4]).unwrap();
    assert_eq!(
        auth.stats.queries_received, 1,
        "negative cache absorbed the repeat"
    );
}

#[test]
fn unresolvable_name_gets_servfail_eventually() {
    // A TLD that exists but delegates nowhere useful: the query for a name
    // in an unknown TLD produces NXDOMAIN at the root (not SERVFAIL), so
    // instead aim at a delegation pointing to a non-existent server to
    // exercise the timeout path.
    let (topo, nodes) = playground(&[CLIENT, RESOLVER, ROOT]);
    let mut sim = Simulator::new(topo, SimConfig::default());
    let mut root = DelegatingServer::root();
    root.delegate(Delegation {
        zone: DnsName::parse("example.").unwrap(),
        ns_name: DnsName::parse("a.nic.example.").unwrap(),
        ns_ip: Ipv4Addr::new(100, 64, 9, 9), // unassigned: queries vanish
    });
    sim.install(nodes[2], root);
    sim.install(
        nodes[1],
        RecursiveResolver::new(ResolverConfig::open(vec![ROOT])),
    );
    install_script(
        &mut sim,
        nodes[0],
        vec![(
            SimDuration::ZERO,
            UdpSend::new(34000, RESOLVER, 53, study_query(3)),
        )],
    );
    sim.run();
    let client: &ScriptedClient = sim.host_as(nodes[0]).unwrap();
    assert_eq!(client.datagrams.len(), 1);
    let resp = Message::decode(&client.datagrams[0].1.payload).unwrap();
    assert_eq!(resp.header.flags.rcode, Rcode::ServFail);
    let resolver: &RecursiveResolver = sim.host_as(nodes[1]).unwrap();
    assert!(resolver.stats.timeouts >= 1);
}

#[test]
fn open_resolver_answers_anyone_acl_check() {
    assert!(AccessPolicy::Open.allows(CLIENT));
    let acl = AccessPolicy::RestrictedTo(vec![(Ipv4Addr::new(192, 0, 2, 0), 24)]);
    assert!(acl.allows(CLIENT));
    assert!(!acl.allows(RESOLVER));
}
