//! Query coalescing in the recursive resolver: concurrent queries for the
//! same name must share one upstream resolution (real resolver behaviour;
//! without it, a fast scanner's identical queries stampede the
//! authoritative server — the Table 2 cache-utilization property would be
//! unmeasurable at scan rates).

use dnswire::{DnsName, Message, MessageBuilder, RrType};
use netsim::testkit::{install_script, playground, ScriptedClient};
use netsim::{SimConfig, SimDuration, Simulator, UdpSend};
use odns::study;
use odns::{
    AuthConfig, DelegatingServer, Delegation, RecursiveResolver, ResolverConfig, StudyAuthServer,
};
use std::net::Ipv4Addr;

const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const ROOT: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const TLD: Ipv4Addr = Ipv4Addr::new(198, 41, 1, 4);
const AUTH: Ipv4Addr = Ipv4Addr::new(198, 41, 2, 4);

fn world(
    clients: usize,
) -> (
    Simulator,
    Vec<netsim::NodeId>,
    netsim::NodeId,
    netsim::NodeId,
) {
    let mut ips = vec![RESOLVER, ROOT, TLD, AUTH];
    for i in 0..clients {
        ips.push(Ipv4Addr::new(192, 0, 2, (i + 1) as u8));
    }
    let (topo, nodes) = playground(&ips);
    let mut sim = Simulator::new(topo, SimConfig::default());

    let mut root = DelegatingServer::root();
    root.delegate(Delegation {
        zone: DnsName::parse("example.").unwrap(),
        ns_name: DnsName::parse("a.nic.example.").unwrap(),
        ns_ip: TLD,
    });
    sim.install(nodes[1], root);
    let mut tld = DelegatingServer::new(DnsName::parse("example.").unwrap());
    tld.delegate(Delegation {
        zone: study::study_zone(),
        ns_name: DnsName::parse("ns1.odns-study.example.").unwrap(),
        ns_ip: AUTH,
    });
    sim.install(nodes[2], tld);
    sim.install(nodes[3], StudyAuthServer::new(AuthConfig::default()));
    sim.install(
        nodes[0],
        RecursiveResolver::new(ResolverConfig::open(vec![ROOT])),
    );
    let clients_nodes = nodes[4..].to_vec();
    (sim, clients_nodes, nodes[0], nodes[3])
}

fn study_query(txid: u16) -> Vec<u8> {
    MessageBuilder::query(txid, study::study_qname(), RrType::A)
        .recursion_desired(true)
        .build()
        .encode()
}

#[test]
fn concurrent_identical_queries_share_one_resolution() {
    let n = 20;
    let (mut sim, clients, resolver, auth) = world(n);
    for (i, &c) in clients.iter().enumerate() {
        install_script(
            &mut sim,
            c,
            vec![(
                // All queries within 1 ms — far below the resolution RTT.
                SimDuration::from_micros(i as u64 * 50),
                UdpSend::new(34000, RESOLVER, 53, study_query(i as u16)),
            )],
        );
    }
    sim.run();

    // Every client got its answer...
    for &c in &clients {
        let sc: &ScriptedClient = sim.host_as(c).unwrap();
        assert_eq!(sc.datagrams.len(), 1, "client must be answered");
        let m = Message::decode(&sc.datagrams[0].1.payload).unwrap();
        assert_eq!(m.answers.len(), 2, "both A records relayed");
    }
    // ...but the authority saw exactly one query.
    let auth_host: &StudyAuthServer = sim.host_as(auth).unwrap();
    assert_eq!(
        auth_host.stats.queries_received, 1,
        "one resolution for the herd"
    );
    let r: &RecursiveResolver = sim.host_as(resolver).unwrap();
    assert_eq!(r.stats.client_queries, n as u64);
    assert_eq!(r.stats.coalesced, n as u64 - 1);
    assert_eq!(r.stats.upstream_queries, 3, "root + TLD + auth, once");
}

#[test]
fn coalesced_clients_get_correct_transaction_ids() {
    let (mut sim, clients, _resolver, _auth) = world(5);
    for (i, &c) in clients.iter().enumerate() {
        install_script(
            &mut sim,
            c,
            vec![(
                SimDuration::from_micros(i as u64 * 10),
                UdpSend::new(
                    40_000 + i as u16,
                    RESOLVER,
                    53,
                    study_query(1000 + i as u16),
                ),
            )],
        );
    }
    sim.run();
    for (i, &c) in clients.iter().enumerate() {
        let sc: &ScriptedClient = sim.host_as(c).unwrap();
        let m = Message::decode(&sc.datagrams[0].1.payload).unwrap();
        assert_eq!(
            m.header.id,
            1000 + i as u16,
            "each client's own TXID echoed"
        );
        assert_eq!(sc.datagrams[0].1.dst_port, 40_000 + i as u16);
    }
}

#[test]
fn different_names_do_not_coalesce() {
    let (mut sim, clients, resolver, _auth) = world(2);
    let q1 = MessageBuilder::query(1, study::study_qname(), RrType::A)
        .recursion_desired(true)
        .build()
        .encode();
    let q2 = MessageBuilder::query(
        2,
        DnsName::parse("nope.odns-study.example.").unwrap(),
        RrType::A,
    )
    .recursion_desired(true)
    .build()
    .encode();
    install_script(
        &mut sim,
        clients[0],
        vec![(SimDuration::ZERO, UdpSend::new(34000, RESOLVER, 53, q1))],
    );
    install_script(
        &mut sim,
        clients[1],
        vec![(SimDuration::ZERO, UdpSend::new(34001, RESOLVER, 53, q2))],
    );
    sim.run();
    let r: &RecursiveResolver = sim.host_as(resolver).unwrap();
    assert_eq!(r.stats.coalesced, 0);
    assert!(r.stats.upstream_queries >= 4, "two independent resolutions");
}

#[test]
fn sequential_queries_hit_cache_not_coalescing() {
    let (mut sim, clients, resolver, auth) = world(2);
    install_script(
        &mut sim,
        clients[0],
        vec![(
            SimDuration::ZERO,
            UdpSend::new(34000, RESOLVER, 53, study_query(1)),
        )],
    );
    install_script(
        &mut sim,
        clients[1],
        vec![(
            SimDuration::from_secs(5),
            UdpSend::new(34001, RESOLVER, 53, study_query(2)),
        )],
    );
    sim.run();
    let r: &RecursiveResolver = sim.host_as(resolver).unwrap();
    assert_eq!(
        r.stats.coalesced, 0,
        "second query is late: cache, not coalescing"
    );
    assert_eq!(r.stats.cache_answers, 1);
    let auth_host: &StudyAuthServer = sim.host_as(auth).unwrap();
    assert_eq!(auth_host.stats.queries_received, 1);
}
