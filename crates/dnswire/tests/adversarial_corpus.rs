//! The adversarial regression corpus: one deterministic reproducer per
//! historical wire-parser bug, plus the seeded fuzz harness in quick mode
//! (≥10k mutated inputs) asserting zero panics and zero parser desyncs.
//!
//! Everything here is fixed-seed and wall-clock-free: a failure on any
//! machine replays bit-identically on every other.

use dnswire::fuzz::{run_fuzz, seed_corpus, DEFAULT_SEED, QUICK_ITERATIONS};
use dnswire::{DnsName, Message, MessageBuilder, RrType, WireError};
use std::net::Ipv4Addr;

/// Bug 1 reproducer — skewed RDLENGTH (parser-confusion class): an NS
/// record declaring 5 RDATA bytes over a 3-byte name, followed by a
/// well-formed A record. Before the consumed-exactly check the two
/// surplus bytes shifted the parse of everything after them.
#[test]
fn skewed_rdlength_cannot_desync_following_records() {
    let mut msg = Vec::new();
    // Header: id 0xBAD, response, ancount = 2.
    msg.extend_from_slice(&[0x0B, 0xAD, 0x80, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00]);
    msg.extend_from_slice(&[0x00, 0x00]);
    // Answer 1: root NS with RDLENGTH 5 over a 3-byte name.
    msg.extend_from_slice(&[0x00]); // owner: root
    msg.extend_from_slice(&2u16.to_be_bytes()); // NS
    msg.extend_from_slice(&1u16.to_be_bytes()); // IN
    msg.extend_from_slice(&60u32.to_be_bytes());
    msg.extend_from_slice(&5u16.to_be_bytes()); // RDLENGTH lie
    msg.extend_from_slice(&[1, b'a', 0]); // actual 3-byte name
    msg.extend_from_slice(&[0x00, 0x00]); // the 2 smuggled bytes
                                          // Answer 2: a well-formed root A record.
    msg.extend_from_slice(&[0x00]);
    msg.extend_from_slice(&1u16.to_be_bytes());
    msg.extend_from_slice(&1u16.to_be_bytes());
    msg.extend_from_slice(&60u32.to_be_bytes());
    msg.extend_from_slice(&4u16.to_be_bytes());
    msg.extend_from_slice(&[192, 0, 2, 200]);

    assert_eq!(
        Message::decode(&msg),
        Err(WireError::RdataLengthMismatch {
            declared: 5,
            consumed: 3,
        }),
        "skewed RDLENGTH must be rejected, not silently reparsed"
    );
}

/// Bug 2 reproducer — section-count truncation: 65 537 answers used to
/// encode as `ancount = 1` via `as u16`.
#[test]
fn section_count_overflow_rejected_on_encode() {
    let mut m = Message::default();
    let rec = dnswire::Record::a(DnsName::root(), 0, Ipv4Addr::new(192, 0, 2, 1));
    m.answers = vec![rec; u16::MAX as usize + 2];
    assert_eq!(
        m.try_encode(),
        Err(WireError::SectionCountOverflow {
            section: "answer",
            len: u16::MAX as usize + 2,
        })
    );
}

/// Bug 3 reproducer — attacker-controlled preallocation: a 12-byte runt
/// claiming 65 535 entries in every section must fail cleanly (and, per
/// the capped-capacity fix, without reserving megabytes first — the cap
/// itself is unit-tested next to the decoder).
#[test]
fn runt_with_inflated_counts_fails_cleanly() {
    let mut runt = vec![0u8; 12];
    for field in [4usize, 6, 8, 10] {
        runt[field] = 0xFF;
        runt[field + 1] = 0xFF;
    }
    assert!(matches!(
        Message::decode(&runt),
        Err(WireError::Truncated { .. })
    ));
}

/// Bug 4 reproducer — `wire_len` used to map encode failure to 0,
/// zeroing the §6 amplification factors computed from it.
#[test]
fn wire_len_reports_unencodable_messages() {
    let q = MessageBuilder::query(1, DnsName::root(), RrType::A).build();
    assert_eq!(q.wire_len().unwrap(), q.encode().len());

    let mut bad = Message::default();
    bad.answers.push(dnswire::Record {
        name: DnsName::root(),
        class: dnswire::Class::In,
        ttl: 0,
        rdata: dnswire::RData::Txt(vec![vec![0u8; 256]]),
    });
    assert_eq!(bad.wire_len(), Err(WireError::TxtSegmentTooLong(256)));
}

/// Compression-pointer games: self-pointing, forward-pointing, and
/// header-targeting pointers must all be rejected without panics.
#[test]
fn pointer_games_rejected() {
    // Self-pointing question name.
    let mut own = vec![0u8; 12];
    own[5] = 1; // qdcount
    own.extend_from_slice(&[0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01]);
    assert!(Message::decode(&own).is_err());

    // Forward-pointing name.
    let mut fwd = vec![0u8; 12];
    fwd[5] = 1;
    fwd.extend_from_slice(&[0xC0, 0x20, 0x00, 0x01, 0x00, 0x01]);
    assert!(Message::decode(&fwd).is_err());
}

/// The full quick-mode harness: the fixed corpus plus ≥10k seeded mutants
/// through the panic/desync/reparse oracle — the acceptance gate.
#[test]
fn quick_fuzz_finds_no_panics_or_desyncs() {
    let report = run_fuzz(DEFAULT_SEED, QUICK_ITERATIONS);
    assert!(report.clean(), "oracle violations:\n{:#?}", report.failures);
    assert_eq!(report.inputs, QUICK_ITERATIONS + seed_corpus().len() as u64);
    assert!(
        report.decode_ok > 0,
        "mutants must include decodable inputs"
    );
    assert!(report.decode_err > 0, "mutants must include hostile inputs");
}

/// Determinism of the harness itself: same seed, same report.
#[test]
fn fuzz_harness_is_deterministic() {
    assert_eq!(run_fuzz(0xFEED, 1_000), run_fuzz(0xFEED, 1_000));
}
