//! Property-based tests for the DNS wire codec.
//!
//! Invariants:
//! 1. encode ∘ decode = identity for arbitrary well-formed messages;
//! 2. compression never changes message semantics;
//! 3. the decoder never panics on arbitrary bytes (fuzz-shaped inputs);
//! 4. names compare case-insensitively in every context.

use dnswire::{
    Class, DnsName, Flags, Header, Message, Opcode, QClass, Question, RData, Rcode, Record, RrType,
    SoaData,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..=12)
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 0..=5)
        .prop_filter_map("name too long", |labels| DnsName::from_labels(labels).ok())
}

fn arb_rrtype() -> impl Strategy<Value = RrType> {
    prop_oneof![
        Just(RrType::A),
        Just(RrType::Ns),
        Just(RrType::Cname),
        Just(RrType::Soa),
        Just(RrType::Ptr),
        Just(RrType::Mx),
        Just(RrType::Txt),
        Just(RrType::Any),
        (256u16..9999).prop_map(RrType::Other),
    ]
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::from(o))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (
            arb_name(),
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial,
                    refresh,
                    retry,
                    expire,
                    minimum,
                })
            }),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..4)
            .prop_map(RData::Txt),
        (256u16..9999, proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(rtype, data)| RData::Unknown { rtype, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = RData> {
    arb_rdata()
}

fn arb_full_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_record()).prop_map(|(name, ttl, rdata)| Record {
        name,
        class: Class::In,
        ttl,
        rdata,
    })
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..16,
    )
        .prop_map(|(response, aa, tc, rd, ra, rcode)| Flags {
            response,
            opcode: Opcode::Query,
            authoritative: aa,
            truncated: tc,
            recursion_desired: rd,
            recursion_available: ra,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::from_u8(rcode),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_flags(),
        proptest::collection::vec((arb_name(), arb_rrtype()), 0..3),
        proptest::collection::vec(arb_full_record(), 0..4),
        proptest::collection::vec(arb_full_record(), 0..3),
        proptest::collection::vec(arb_full_record(), 0..3),
    )
        .prop_map(|(id, flags, qs, ans, auth, add)| Message {
            header: Header {
                id,
                flags,
                ..Header::default()
            },
            questions: qs
                .into_iter()
                .map(|(qname, qtype)| Question {
                    qname,
                    qtype,
                    qclass: QClass::In,
                })
                .collect(),
            answers: ans,
            authorities: auth,
            additionals: add,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(m in arb_message()) {
        let bytes = match m.try_encode() {
            Ok(b) => b,
            Err(_) => return Ok(()), // oversized combinations are allowed to refuse encoding
        };
        let back = Message::decode(&bytes).unwrap();
        prop_assert_eq!(back.questions, m.questions);
        prop_assert_eq!(back.answers, m.answers);
        prop_assert_eq!(back.authorities, m.authorities);
        prop_assert_eq!(back.additionals, m.additionals);
        prop_assert_eq!(back.header.id, m.header.id);
        prop_assert_eq!(back.header.flags.response, m.header.flags.response);
        prop_assert_eq!(back.header.flags.rcode, m.header.flags.rcode);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes); // must not panic
    }

    #[test]
    fn name_roundtrip_uncompressed(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        let mut pos = 0;
        let back = DnsName::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, name);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn name_case_insensitive(s in "[a-z]{1,10}\\.[a-z]{1,6}") {
        let lower = DnsName::parse(&s).unwrap();
        let upper = DnsName::parse(&s.to_ascii_uppercase()).unwrap();
        prop_assert_eq!(lower, upper);
    }

    #[test]
    fn compression_is_transparent(names in proptest::collection::vec(arb_name(), 1..6)) {
        // Encode all names into one buffer with shared compression state;
        // decoding each must give back the original regardless of sharing.
        let mut buf = Vec::new();
        let mut offsets = std::collections::HashMap::new();
        let mut starts = Vec::new();
        for n in &names {
            starts.push(buf.len());
            n.encode_compressed(&mut buf, &mut offsets);
        }
        for (n, &start) in names.iter().zip(&starts) {
            let mut pos = start;
            let back = DnsName::decode(&buf, &mut pos).unwrap();
            prop_assert_eq!(&back, n);
        }
    }

    #[test]
    fn subdomain_reflexive_and_root(name in arb_name()) {
        prop_assert!(name.is_subdomain_of(&name));
        prop_assert!(name.is_subdomain_of(&DnsName::root()));
    }

    #[test]
    fn wire_len_matches_actual_encoding(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        prop_assert_eq!(buf.len(), name.wire_len());
    }
}
