//! Error type shared by every codec in this crate.

use std::fmt;

/// Errors produced while encoding or decoding DNS wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A domain name label exceeded 63 octets.
    LabelTooLong(usize),
    /// A domain name exceeded 255 octets on the wire.
    NameTooLong(usize),
    /// A compression pointer pointed forward or into itself.
    BadCompressionPointer {
        /// Offset of the offending pointer.
        at: usize,
        /// Target offset of the pointer.
        target: usize,
    },
    /// Compression pointers formed a loop (or exceeded the hop budget).
    CompressionLoop,
    /// A label had the reserved `0b10`/`0b01` prefix (RFC 1035 allows only
    /// `00` for literal labels and `11` for pointers).
    ReservedLabelType(u8),
    /// An empty label or a label containing a NUL byte was supplied.
    InvalidLabel,
    /// A textual name could not be parsed.
    BadNameSyntax(String),
    /// The message would exceed [`crate::MAX_MESSAGE_LEN`] when encoded.
    MessageTooLong(usize),
    /// RDATA length did not match the RDLENGTH field.
    RdataLengthMismatch {
        /// RDLENGTH as announced on the wire.
        declared: usize,
        /// Bytes actually consumed.
        consumed: usize,
    },
    /// A TXT segment exceeded 255 bytes.
    TxtSegmentTooLong(usize),
    /// A message section held more entries than the 16-bit header count
    /// can announce — encoding would silently truncate the count and emit
    /// a self-desynchronized packet.
    SectionCountOverflow {
        /// Which section overflowed.
        section: &'static str,
        /// Entries actually present.
        len: usize,
    },
    /// Trailing bytes after the message body. The transactional scanner
    /// treats those as a middlebox distortion (§4.1).
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "message truncated while decoding {context}")
            }
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadCompressionPointer { at, target } => {
                write!(
                    f,
                    "compression pointer at {at} targets invalid offset {target}"
                )
            }
            WireError::CompressionLoop => write!(f, "compression pointer loop detected"),
            WireError::ReservedLabelType(b) => {
                write!(f, "reserved label type bits 0b{:02b}", b >> 6)
            }
            WireError::InvalidLabel => write!(f, "invalid label content"),
            WireError::BadNameSyntax(s) => write!(f, "cannot parse name from `{s}`"),
            WireError::MessageTooLong(n) => write!(f, "encoded message of {n} bytes too long"),
            WireError::RdataLengthMismatch { declared, consumed } => {
                write!(f, "RDLENGTH {declared} but consumed {consumed}")
            }
            WireError::TxtSegmentTooLong(n) => write!(f, "TXT segment of {n} bytes exceeds 255"),
            WireError::SectionCountOverflow { section, len } => {
                write!(f, "{section} section of {len} entries exceeds u16 count")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { context: "header" };
        assert!(e.to_string().contains("header"));
        let e = WireError::BadCompressionPointer { at: 40, target: 90 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("90"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::CompressionLoop, WireError::CompressionLoop);
        assert_ne!(
            WireError::LabelTooLong(64),
            WireError::NameTooLong(64),
            "different variants must not compare equal"
        );
    }
}
