//! The question section (RFC 1035 §4.1.2).

use crate::error::WireError;
use crate::name::DnsName;
use crate::rdata::RrType;
use std::collections::HashMap;
use std::fmt;

/// Query class. The study only ever uses `IN`, but `ANY` (255) appears in
/// amplification traffic and `CH` in fingerprinting probes
/// (`version.bind CH TXT`), so all are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QClass {
    /// Internet.
    In,
    /// Chaos — used by `version.bind` fingerprinting.
    Ch,
    /// Hesiod.
    Hs,
    /// QCLASS `*` (ANY).
    Any,
    /// Anything else, preserved.
    Other(u16),
}

impl QClass {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Ch => 3,
            QClass::Hs => 4,
            QClass::Any => 255,
            QClass::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => QClass::In,
            3 => QClass::Ch,
            4 => QClass::Hs,
            255 => QClass::Any,
            other => QClass::Other(other),
        }
    }
}

impl fmt::Display for QClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QClass::In => write!(f, "IN"),
            QClass::Ch => write!(f, "CH"),
            QClass::Hs => write!(f, "HS"),
            QClass::Any => write!(f, "ANY"),
            QClass::Other(v) => write!(f, "CLASS{v}"),
        }
    }
}

/// A single entry of the question section.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// QNAME.
    pub qname: DnsName,
    /// QTYPE (shares the RR type space, plus QTYPE-only values like ANY).
    pub qtype: RrType,
    /// QCLASS.
    pub qclass: QClass,
}

impl Question {
    /// Convenience constructor for the usual `IN` class.
    pub fn new(qname: DnsName, qtype: RrType) -> Self {
        Question {
            qname,
            qtype,
            qclass: QClass::In,
        }
    }

    /// Encode with compression, appending to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>, offsets: &mut HashMap<String, usize>) {
        self.qname.encode_compressed(buf, offsets);
        buf.extend_from_slice(&self.qtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.qclass.to_u16().to_be_bytes());
    }

    /// Decode from `msg` at `pos`, advancing it.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let qname = DnsName::decode(msg, pos)?;
        if msg.len() < *pos + 4 {
            return Err(WireError::Truncated {
                context: "question fixed part",
            });
        }
        let qtype = RrType::from_u16(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
        let qclass = QClass::from_u16(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
        *pos += 4;
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.qname, self.qclass, self.qtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qclass_roundtrip() {
        for v in [1u16, 3, 4, 255, 42] {
            assert_eq!(QClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn question_encode_decode() {
        let q = Question::new(DnsName::parse("odns-study.example.").unwrap(), RrType::A);
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        q.encode(&mut buf, &mut offsets);
        let mut pos = 0;
        let back = Question::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, q);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn question_decode_truncated_fixed_part() {
        let mut buf = Vec::new();
        DnsName::parse("x.").unwrap().encode_uncompressed(&mut buf);
        buf.extend_from_slice(&[0, 1, 0]); // one byte short
        let mut pos = 0;
        assert!(matches!(
            Question::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn display_formats_like_dig() {
        let q = Question::new(DnsName::parse("example.").unwrap(), RrType::A);
        assert_eq!(q.to_string(), "example. IN A");
    }
}
