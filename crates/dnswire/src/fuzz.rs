//! Deterministic structured fuzz harness over [`Message::decode`] /
//! [`Message::decode_prefix`].
//!
//! The *Injection Attacks Reloaded* threat model tunnels parser-confusion
//! payloads over DNS: truncated bodies, inflated section counts, skewed
//! RDLENGTH fields, and compression-pointer games. This module replays
//! exactly those mutation classes against the decoder and checks three
//! oracles on every input:
//!
//! 1. **no panic** — decoding hostile bytes must fail with a
//!    [`WireError`], never unwind;
//! 2. **no desync** — `decode_prefix` never claims to consume more bytes
//!    than it was given, and [`Message::decode`] agrees with it about
//!    trailing bytes;
//! 3. **reparse stability** — a successfully decoded message re-encodes
//!    and decodes back to a structurally identical message (the classic
//!    smuggling primitive is a payload two parsers read differently).
//!
//! Everything is seeded: the corpus is fixed, the mutator RNG is a
//! [SplitMix64] stream keyed by the caller's seed, and a given
//! `(seed, iterations)` pair replays the identical input sequence on every
//! run and machine — the harness is detlint-clean by construction (no
//! wall-clock, no entropy) and doubles as a regression corpus in CI.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::builder::MessageBuilder;
use crate::message::Message;
use crate::name::DnsName;
use crate::question::QClass;
use crate::rdata::{Class, RData, Record, RrType, SoaData};
use crate::WireError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The seed every CI / test invocation uses, so failures reported by one
/// run reproduce everywhere.
pub const DEFAULT_SEED: u64 = 0x0d15_ea5e_0bad_c0de;

/// Quick-mode iteration count — the acceptance floor for a CI pass.
pub const QUICK_ITERATIONS: u64 = 10_000;

/// SplitMix64: the minimal deterministic generator. Hand-rolled so the
/// wire crate stays dependency-free; statistical quality is irrelevant
/// here — only determinism and coverage spread matter.
#[derive(Debug, Clone)]
struct FuzzRng(u64);

impl FuzzRng {
    fn new(seed: u64) -> Self {
        FuzzRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish index below `n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// What a failing input violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The decoder panicked instead of returning a [`WireError`].
    Panic,
    /// `decode_prefix` claimed to consume more bytes than it was given.
    ConsumedPastEnd {
        /// Bytes claimed.
        consumed: usize,
        /// Bytes available.
        len: usize,
    },
    /// [`Message::decode`] and [`Message::decode_prefix`] disagree about
    /// the same bytes.
    PrefixDisagreement,
    /// A decoded message failed to re-encode for a reason other than the
    /// size cap (decoding compressed RDATA can legitimately expand past
    /// [`crate::MAX_MESSAGE_LEN`] — anything else is a codec bug).
    ReencodeError(WireError),
    /// decode → encode → decode produced a structurally different message.
    ReparseMismatch,
}

/// One failing input, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Input index in the run's deterministic sequence.
    pub index: u64,
    /// Which oracle fired.
    pub kind: FailureKind,
    /// The offending bytes, hex-encoded for a bug report.
    pub input_hex: String,
}

/// Outcome counters of one harness run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Inputs checked (corpus + mutated).
    pub inputs: u64,
    /// Inputs that decoded successfully.
    pub decode_ok: u64,
    /// Inputs rejected with a clean [`WireError`].
    pub decode_err: u64,
    /// Decoded messages whose re-encoding legitimately overflowed the
    /// message size cap (compressed input expanding on re-encode).
    pub reencode_overflow: u64,
    /// Oracle violations. Empty on a healthy codec.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when every oracle held on every input.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} inputs: {} decoded, {} rejected, {} reencode-overflow, {} failures",
            self.inputs,
            self.decode_ok,
            self.decode_err,
            self.reencode_overflow,
            self.failures.len()
        )
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn study_name() -> DnsName {
    DnsName::parse("odns-study.example.").unwrap()
}

/// The fixed seed corpus: one well-formed exemplar per message shape the
/// study's components exchange, plus one hand-built reproducer per
/// historical parser bug (kept red-team-shaped so the mutators start from
/// inputs that already sit on the interesting boundaries).
pub fn seed_corpus() -> Vec<Vec<u8>> {
    let name = study_name();
    let mut corpus = Vec::new();

    // -- Well-formed shapes --------------------------------------------
    // Plain A query, the census probe.
    corpus.push(
        MessageBuilder::query(0x2861, name.clone(), RrType::A)
            .recursion_desired(true)
            .build()
            .encode(),
    );
    // ANY query, the amplification vector.
    corpus.push(
        MessageBuilder::query(0xBAD, name.clone(), RrType::Any)
            .recursion_desired(true)
            .build()
            .encode(),
    );
    // CH TXT version.bind, the fingerprinting probe.
    corpus.push(
        MessageBuilder::query_class(
            7,
            DnsName::parse("version.bind.").unwrap(),
            RrType::Txt,
            QClass::Ch,
        )
        .build()
        .encode(),
    );
    // The measurement response: dynamic + control A records (compressed
    // owner names).
    let query = MessageBuilder::query(0x77, name.clone(), RrType::A)
        .recursion_desired(true)
        .build();
    corpus.push(
        MessageBuilder::response_to(&query)
            .recursion_available(true)
            .answer_a(name.clone(), 300, std::net::Ipv4Addr::new(203, 0, 113, 50))
            .answer_a(name.clone(), 300, std::net::Ipv4Addr::new(192, 0, 2, 200))
            .build()
            .encode(),
    );
    // A kitchen-sink response: every modelled RDATA type plus an unknown
    // one, authority and additional sections populated.
    let soa = Record {
        name: DnsName::parse("example.").unwrap(),
        class: Class::In,
        ttl: 3600,
        rdata: RData::Soa(SoaData {
            mname: DnsName::parse("ns1.example.").unwrap(),
            rname: DnsName::parse("hostmaster.example.").unwrap(),
            serial: 2021042001,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }),
    };
    corpus.push(
        MessageBuilder::response_to(&query)
            .answer(Record {
                name: name.clone(),
                class: Class::In,
                ttl: 60,
                rdata: RData::Cname(DnsName::parse("alias.example.").unwrap()),
            })
            .answer(Record {
                name: name.clone(),
                class: Class::In,
                ttl: 60,
                rdata: RData::Mx {
                    preference: 10,
                    exchange: DnsName::parse("mx.example.").unwrap(),
                },
            })
            .answer(Record {
                name: name.clone(),
                class: Class::Ch,
                ttl: 0,
                rdata: RData::Txt(vec![b"MikroTik".to_vec(), Vec::new(), b"x".to_vec()]),
            })
            .authority(soa)
            .authority(Record {
                name: DnsName::parse("example.").unwrap(),
                class: Class::In,
                ttl: 3600,
                rdata: RData::Ns(DnsName::parse("ns1.example.").unwrap()),
            })
            .additional(Record {
                name: DnsName::root(),
                class: Class::Other(4096),
                ttl: 0,
                rdata: RData::Opt(vec![0, 10, 0, 2, 0xAB, 0xCD]),
            })
            .additional(Record {
                name: DnsName::parse("odd.example.").unwrap(),
                class: Class::In,
                ttl: 60,
                rdata: RData::Unknown {
                    rtype: 99,
                    data: vec![0xDE, 0xAD, 0xBE, 0xEF],
                },
            })
            .build()
            .encode(),
    );
    // NXDOMAIN with SOA in authority — the negative-caching shape of §6.
    corpus.push(
        MessageBuilder::response_to(&query)
            .rcode(crate::header::Rcode::NxDomain)
            .authority(Record {
                name: DnsName::parse("example.").unwrap(),
                class: Class::In,
                ttl: 300,
                rdata: RData::Ptr(DnsName::parse("ptr.example.").unwrap()),
            })
            .build()
            .encode(),
    );

    // -- Historical-bug reproducers ------------------------------------
    // (1) Skewed RDLENGTH: NS rdata declares 5 bytes, name spans 3 — the
    // Record::decode consumed-exactly check must reject this, or the two
    // surplus bytes smuggle themselves into the next record.
    let mut skew = Vec::new();
    skew.extend_from_slice(&[0x0B, 0xAD, 0x80, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00]);
    skew.extend_from_slice(&[0x00, 0x00]); // arcount
    skew.extend_from_slice(&[0x00]); // owner: root
    skew.extend_from_slice(&2u16.to_be_bytes()); // NS
    skew.extend_from_slice(&1u16.to_be_bytes()); // IN
    skew.extend_from_slice(&60u32.to_be_bytes()); // TTL
    skew.extend_from_slice(&5u16.to_be_bytes()); // RDLENGTH: 5 (lie)
    skew.extend_from_slice(&[1, b'a', 0, 0xC0, 0x00]); // 3-byte name + 2 smuggled
    corpus.push(skew);
    // (2) Count inflation: a bare header claiming 65 535 of everything —
    // the preallocation-cap reproducer.
    let mut runt = vec![0u8; crate::header::HEADER_LEN];
    for field in [4usize, 6, 8, 10] {
        runt[field] = 0xFF;
        runt[field + 1] = 0xFF;
    }
    corpus.push(runt);
    // (3) Compression-pointer games: self-pointing and forward pointers.
    let mut pointer = vec![0u8; crate::header::HEADER_LEN];
    pointer[5] = 1; // qdcount = 1
    pointer.extend_from_slice(&[0xC0, 0x0C]); // name: pointer to itself
    pointer.extend_from_slice(&1u16.to_be_bytes());
    pointer.extend_from_slice(&1u16.to_be_bytes());
    corpus.push(pointer);
    // (4) Truncation mid-record: a valid response cut inside its RDATA.
    let cut = MessageBuilder::response_to(&query)
        .answer_a(name, 300, std::net::Ipv4Addr::new(192, 0, 2, 200))
        .build()
        .encode();
    let keep = cut.len() - 2;
    corpus.push(cut[..keep].to_vec());

    corpus
}

/// Apply one seeded mutation in place. The classes mirror the attack
/// paper's catalogue: truncation, count inflation, RDLENGTH/length-field
/// skew (a raw 16-bit overwrite lands on one whenever the offset does),
/// pointer injection, bit flips, and growth via self-append.
fn mutate(bytes: &mut Vec<u8>, rng: &mut FuzzRng) {
    match rng.below(6) {
        // Truncate at a random point.
        0 => {
            if !bytes.is_empty() {
                bytes.truncate(rng.below(bytes.len()));
            }
        }
        // Inflate a header count field.
        1 => {
            if bytes.len() >= crate::header::HEADER_LEN {
                let field = 4 + 2 * rng.below(4);
                let value = (rng.next_u64() & 0xFFFF) as u16;
                bytes[field..field + 2].copy_from_slice(&value.to_be_bytes());
            }
        }
        // Overwrite a 16-bit field at an arbitrary offset — lands on
        // RDLENGTH, type, class, or a label length depending on the spot.
        2 => {
            if bytes.len() >= 2 {
                let at = rng.below(bytes.len() - 1);
                let value = (rng.next_u64() & 0xFFFF) as u16;
                bytes[at..at + 2].copy_from_slice(&value.to_be_bytes());
            }
        }
        // Inject a compression pointer to a seeded target.
        3 => {
            if bytes.len() >= 2 {
                let at = rng.below(bytes.len() - 1);
                let target = rng.below(bytes.len());
                bytes[at] = 0xC0 | ((target >> 8) as u8 & 0x3F);
                bytes[at + 1] = (target & 0xFF) as u8;
            }
        }
        // Flip a random bit.
        4 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        // Append a slice of the message to itself (trailing/duplicated
        // sections).
        _ => {
            if !bytes.is_empty() {
                let from = rng.below(bytes.len());
                let extra: Vec<u8> = bytes[from..].to_vec();
                bytes.extend_from_slice(&extra);
                bytes.truncate(crate::MAX_MESSAGE_LEN + 16);
            }
        }
    }
}

/// Run every oracle against one input. `Ok(Outcome)` classifies healthy
/// behaviour; `Err` carries the violated oracle.
fn check(bytes: &[u8]) -> Result<Outcome, FailureKind> {
    let decoded = catch_unwind(AssertUnwindSafe(|| Message::decode_prefix(bytes)))
        .map_err(|_| FailureKind::Panic)?;
    let whole = catch_unwind(AssertUnwindSafe(|| Message::decode(bytes)))
        .map_err(|_| FailureKind::Panic)?;
    match decoded {
        Err(_) => {
            // decode must reject whatever decode_prefix rejects.
            if whole.is_ok() {
                return Err(FailureKind::PrefixDisagreement);
            }
            Ok(Outcome::Rejected)
        }
        Ok((msg, consumed)) => {
            if consumed > bytes.len() {
                return Err(FailureKind::ConsumedPastEnd {
                    consumed,
                    len: bytes.len(),
                });
            }
            // Agreement: decode succeeds iff the prefix is the whole
            // buffer, and rejects trailing bytes otherwise.
            match (&whole, consumed == bytes.len()) {
                (Ok(w), true) if *w == msg => {}
                (Err(WireError::TrailingBytes(n)), false) if *n == bytes.len() - consumed => {}
                _ => return Err(FailureKind::PrefixDisagreement),
            }
            // Reparse stability: encode the decoded message and decode it
            // back; the structures must match. (Re-encoding may overflow
            // the size cap when the input compressed what we re-emit
            // uncompressed — legitimate, counted, not a failure.)
            let reencoded = catch_unwind(AssertUnwindSafe(|| msg.try_encode()))
                .map_err(|_| FailureKind::Panic)?;
            let bytes2 = match reencoded {
                Ok(b) => b,
                Err(WireError::MessageTooLong(_)) => return Ok(Outcome::ReencodeOverflow),
                Err(e) => return Err(FailureKind::ReencodeError(e)),
            };
            let again = catch_unwind(AssertUnwindSafe(|| Message::decode(&bytes2)))
                .map_err(|_| FailureKind::Panic)?;
            match again {
                Ok(m2) if m2 == msg => Ok(Outcome::Decoded),
                _ => Err(FailureKind::ReparseMismatch),
            }
        }
    }
}

enum Outcome {
    Decoded,
    Rejected,
    ReencodeOverflow,
}

/// Run the harness: every corpus entry verbatim, then `iterations` seeded
/// mutants of corpus entries. Same `(seed, iterations)` → same inputs →
/// same report, on any machine.
pub fn run_fuzz(seed: u64, iterations: u64) -> FuzzReport {
    let corpus = seed_corpus();
    let mut rng = FuzzRng::new(seed);
    let mut report = FuzzReport::default();
    let mut index = 0u64;

    let one = |bytes: &[u8], index: u64, report: &mut FuzzReport| {
        report.inputs += 1;
        match check(bytes) {
            Ok(Outcome::Decoded) => report.decode_ok += 1,
            Ok(Outcome::Rejected) => report.decode_err += 1,
            Ok(Outcome::ReencodeOverflow) => {
                report.decode_ok += 1;
                report.reencode_overflow += 1;
            }
            Err(kind) => report.failures.push(FuzzFailure {
                index,
                kind,
                input_hex: hex(bytes),
            }),
        }
    };

    for entry in &corpus {
        one(entry, index, &mut report);
        index += 1;
    }
    for _ in 0..iterations {
        let mut bytes = corpus[rng.below(corpus.len())].clone();
        for _ in 0..1 + rng.below(3) {
            mutate(&mut bytes, &mut rng);
        }
        one(&bytes, index, &mut report);
        index += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(FuzzRng::new(1).next_u64(), FuzzRng::new(2).next_u64());
    }

    #[test]
    fn corpus_covers_valid_and_hostile_shapes() {
        let corpus = seed_corpus();
        assert!(corpus.len() >= 8);
        let outcomes: Vec<bool> = corpus.iter().map(|c| Message::decode(c).is_ok()).collect();
        assert!(outcomes.iter().any(|&ok| ok), "has well-formed entries");
        assert!(outcomes.iter().any(|&ok| !ok), "has hostile entries");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_fuzz(7, 500);
        let b = run_fuzz(7, 500);
        assert_eq!(a, b);
        assert_eq!(a.inputs, 500 + seed_corpus().len() as u64);
    }

    #[test]
    fn quick_run_is_clean() {
        let report = run_fuzz(DEFAULT_SEED, 2_000);
        assert!(report.clean(), "oracle violations: {:?}", report.failures);
        assert!(report.decode_ok > 0 && report.decode_err > 0);
    }
}
