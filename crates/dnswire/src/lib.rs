//! # dnswire — DNS wire format (RFC 1035 subset), from scratch
//!
//! This crate implements the DNS wire format used by every component of the
//! transparent-forwarders reproduction: the scanner, the authoritative name
//! server, recursive resolvers, and both forwarder types. It provides:
//!
//! * [`DnsName`] — domain names with full label semantics, case-insensitive
//!   comparison, and wire encoding/decoding including **message compression**
//!   (RFC 1035 §4.1.4 pointers), with loop protection on decode.
//! * [`Header`] / [`Flags`] — the 12-byte DNS header with all RFC 1035 bits
//!   plus AD/CD from RFC 4035.
//! * [`Question`], [`Record`], [`RData`] — question and resource-record
//!   sections with typed RDATA for the types the study needs (A, NS, CNAME,
//!   SOA, PTR, MX, TXT, OPT).
//! * [`Message`] — full message encode/decode.
//! * [`MessageBuilder`] — ergonomic construction of queries and responses.
//!
//! The codec is strict on encode (never emits malformed packets) and tolerant
//! on decode where the paper's measurement method requires it (e.g. responses
//! from middleboxes with unknown RR types are preserved as opaque bytes so the
//! sanitization step in the `analysis` crate can reject them explicitly).
//!
//! ## Example
//!
//! ```
//! use dnswire::{DnsName, Message, MessageBuilder, RrType};
//!
//! let q = MessageBuilder::query(0x2861, DnsName::parse("odns-study.example.").unwrap(), RrType::A)
//!     .recursion_desired(true)
//!     .build();
//! let bytes = q.encode();
//! let decoded = Message::decode(&bytes).unwrap();
//! assert_eq!(decoded.header.id, 0x2861);
//! assert_eq!(decoded.questions[0].qname.to_string(), "odns-study.example.");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod header;
mod message;
mod name;
mod question;
mod rdata;

pub mod builder;
pub mod fuzz;
pub mod template;

pub use builder::MessageBuilder;
pub use error::WireError;
pub use fuzz::{run_fuzz, FuzzFailure, FuzzReport};
pub use header::{Flags, Header, Opcode, Rcode, HEADER_LEN};
pub use message::{peek_id, peek_qr, Message};
pub use name::DnsName;
pub use question::{QClass, Question};
pub use rdata::{Class, RData, Record, RrType, SoaData};
pub use template::ResponseTemplate;

/// Maximum length of a DNS message this crate will encode or decode.
///
/// The study scans DNS over UDP only (§6 of the paper: DoT/DoH cannot be
/// transparently forwarded because connections conflict with spoofing), so we
/// cap messages at the classic EDNS0 buffer size.
pub const MAX_MESSAGE_LEN: usize = 4096;

/// The well-known DNS server port.
pub const DNS_PORT: u16 = 53;
