//! Resource records and typed RDATA (RFC 1035 §3.2, §4.1.3).

use crate::error::WireError;
use crate::name::DnsName;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Resource record types used in this study.
///
/// `A` carries the paper's measurement payload: the authoritative server
/// answers with a *dynamic* A record reflecting the immediate client plus a
/// *static control* A record (§2, "source-specific responses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings — used for `version.bind` fingerprinting.
    Txt,
    /// IPv6 host address (decoded but unused; the scan is IPv4-only).
    Aaaa,
    /// EDNS0 pseudo-record (RFC 6891) — carried in amplification requests.
    Opt,
    /// QTYPE `*` (ANY) — the classic amplification vector (§6: "Google
    /// allows ANY requests").
    Any,
    /// Any type this crate does not model, preserved verbatim.
    Other(u16),
}

impl RrType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Any => 255,
            RrType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            255 => RrType::Any,
            other => RrType::Other(other),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Ptr => write!(f, "PTR"),
            RrType::Mx => write!(f, "MX"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Any => write!(f, "ANY"),
            RrType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Record class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Internet.
    In,
    /// Chaos.
    Ch,
    /// Anything else (for OPT records this field holds the UDP buffer size).
    Other(u16),
}

impl Class {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            Class::In => 1,
            Class::Ch => 3,
            Class::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => Class::In,
            3 => Class::Ch,
            other => Class::Other(other),
        }
    }
}

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoaData {
    /// Primary name server.
    pub mname: DnsName,
    /// Responsible mailbox.
    pub rname: DnsName,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expire limit (seconds).
    pub expire: u32,
    /// Minimum / negative-caching TTL (seconds). Negative caching of the
    /// query-encoding method pollutes caches via exactly this value (§6).
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Name server.
    Ns(DnsName),
    /// Alias target.
    Cname(DnsName),
    /// Start of authority.
    Soa(SoaData),
    /// Reverse pointer.
    Ptr(DnsName),
    /// Mail exchange: preference and exchanger.
    Mx {
        /// Preference value (lower wins).
        preference: u16,
        /// Exchange host.
        exchange: DnsName,
    },
    /// Text segments (each ≤ 255 bytes on the wire).
    Txt(Vec<Vec<u8>>),
    /// EDNS0 OPT pseudo-record payload (opaque options).
    Opt(Vec<u8>),
    /// Unknown type carried as opaque bytes so middlebox distortions survive
    /// the round-trip into the analysis stage instead of being dropped here.
    Unknown {
        /// The RR type this payload arrived with.
        rtype: u16,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl RData {
    /// The RR type matching this payload.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Opt(_) => RrType::Opt,
            RData::Unknown { rtype, .. } => RrType::from_u16(*rtype),
        }
    }

    /// Encode just the RDATA (no length prefix), appending to `buf`.
    ///
    /// Names inside RDATA are deliberately encoded **uncompressed**: only
    /// NS/CNAME/SOA/PTR/MX names may legally be compressed, but many
    /// middleboxes mis-parse it, and the reference servers the paper uses
    /// also emit uncompressed RDATA.
    pub fn encode(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            RData::A(addr) => buf.extend_from_slice(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(buf),
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(buf);
                soa.rname.encode_uncompressed(buf);
                buf.extend_from_slice(&soa.serial.to_be_bytes());
                buf.extend_from_slice(&soa.refresh.to_be_bytes());
                buf.extend_from_slice(&soa.retry.to_be_bytes());
                buf.extend_from_slice(&soa.expire.to_be_bytes());
                buf.extend_from_slice(&soa.minimum.to_be_bytes());
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                buf.extend_from_slice(&preference.to_be_bytes());
                exchange.encode_uncompressed(buf);
            }
            RData::Txt(segments) => {
                for seg in segments {
                    if seg.len() > 255 {
                        return Err(WireError::TxtSegmentTooLong(seg.len()));
                    }
                    buf.push(seg.len() as u8);
                    buf.extend_from_slice(seg);
                }
            }
            RData::Opt(data) | RData::Unknown { data, .. } => buf.extend_from_slice(data),
        }
        Ok(())
    }

    /// Decode RDATA of `rtype` from `msg[*pos..*pos + rdlength]`.
    pub fn decode(
        rtype: RrType,
        msg: &[u8],
        pos: &mut usize,
        rdlength: usize,
    ) -> Result<Self, WireError> {
        let end = *pos + rdlength;
        if end > msg.len() {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let start = *pos;
        let out = match rtype {
            RrType::A => {
                if rdlength != 4 {
                    return Err(WireError::RdataLengthMismatch {
                        declared: rdlength,
                        consumed: 4,
                    });
                }
                let o = &msg[start..start + 4];
                *pos += 4;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RrType::Ns => RData::Ns(DnsName::decode(msg, pos)?),
            RrType::Cname => RData::Cname(DnsName::decode(msg, pos)?),
            RrType::Ptr => RData::Ptr(DnsName::decode(msg, pos)?),
            RrType::Soa => {
                let mname = DnsName::decode(msg, pos)?;
                let rname = DnsName::decode(msg, pos)?;
                if msg.len() < *pos + 20 {
                    return Err(WireError::Truncated {
                        context: "SOA numbers",
                    });
                }
                let g = |i: usize| {
                    u32::from_be_bytes([
                        msg[*pos + i],
                        msg[*pos + i + 1],
                        msg[*pos + i + 2],
                        msg[*pos + i + 3],
                    ])
                };
                let soa = SoaData {
                    mname,
                    rname,
                    serial: g(0),
                    refresh: g(4),
                    retry: g(8),
                    expire: g(12),
                    minimum: g(16),
                };
                *pos += 20;
                RData::Soa(soa)
            }
            RrType::Mx => {
                if msg.len() < *pos + 2 {
                    return Err(WireError::Truncated {
                        context: "MX preference",
                    });
                }
                let preference = u16::from_be_bytes([msg[*pos], msg[*pos + 1]]);
                *pos += 2;
                let exchange = DnsName::decode(msg, pos)?;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RrType::Txt => {
                let mut segments = Vec::new();
                while *pos < end {
                    let len = msg[*pos] as usize;
                    *pos += 1;
                    if *pos + len > end {
                        return Err(WireError::Truncated {
                            context: "TXT segment",
                        });
                    }
                    segments.push(msg[*pos..*pos + len].to_vec());
                    *pos += len;
                }
                RData::Txt(segments)
            }
            RrType::Opt => {
                let data = msg[start..end].to_vec();
                *pos = end;
                RData::Opt(data)
            }
            other => {
                let data = msg[start..end].to_vec();
                *pos = end;
                RData::Unknown {
                    rtype: other.to_u16(),
                    data,
                }
            }
        };
        if *pos != end {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlength,
                consumed: *pos - start,
            });
        }
        Ok(out)
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Record class (`IN` for everything the study measures).
    pub class: Class,
    /// Time to live. The paper's Figure 7 shows the same resolver answering
    /// two forwarders with *different* remaining TTLs (300 vs 50) — cache age
    /// is observable, so TTL handling must be faithful.
    pub ttl: u32,
    /// Typed payload.
    pub rdata: RData,
}

impl Record {
    /// Construct an A record — the workhorse of the measurement method.
    pub fn a(name: DnsName, ttl: u32, addr: Ipv4Addr) -> Self {
        Record {
            name,
            class: Class::In,
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// Construct a TXT record from one string segment.
    pub fn txt(name: DnsName, ttl: u32, text: &str) -> Self {
        Record {
            name,
            class: Class::In,
            ttl,
            rdata: RData::Txt(vec![text.as_bytes().to_vec()]),
        }
    }

    /// The record's RR type.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    /// If this is an A record, its address.
    pub fn a_addr(&self) -> Option<Ipv4Addr> {
        match &self.rdata {
            RData::A(a) => Some(*a),
            _ => None,
        }
    }

    /// Encode with name compression, appending to `buf`.
    pub fn encode(
        &self,
        buf: &mut Vec<u8>,
        offsets: &mut HashMap<String, usize>,
    ) -> Result<(), WireError> {
        self.name.encode_compressed(buf, offsets);
        buf.extend_from_slice(&self.rtype().to_u16().to_be_bytes());
        buf.extend_from_slice(&self.class.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.ttl.to_be_bytes());
        let len_at = buf.len();
        buf.extend_from_slice(&[0, 0]);
        self.rdata.encode(buf)?;
        let rdlength = buf.len() - len_at - 2;
        if rdlength > u16::MAX as usize {
            return Err(WireError::MessageTooLong(rdlength));
        }
        buf[len_at..len_at + 2].copy_from_slice(&(rdlength as u16).to_be_bytes());
        Ok(())
    }

    /// Decode from `msg` at `pos`, advancing it.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let name = DnsName::decode(msg, pos)?;
        if msg.len() < *pos + 10 {
            return Err(WireError::Truncated {
                context: "record fixed part",
            });
        }
        let rtype = RrType::from_u16(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
        let class = Class::from_u16(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
        let ttl = u32::from_be_bytes([msg[*pos + 4], msg[*pos + 5], msg[*pos + 6], msg[*pos + 7]]);
        let rdlength = u16::from_be_bytes([msg[*pos + 8], msg[*pos + 9]]) as usize;
        *pos += 10;
        let rdata_start = *pos;
        let rdata = RData::decode(rtype, msg, pos, rdlength)?;
        // Structural guarantee, independent of the per-type arms inside
        // `RData::decode`: the record body consumed exactly RDLENGTH
        // bytes. A skewed RDLENGTH (an NS/CNAME name that under- or
        // over-runs the declared length) would otherwise desynchronize
        // `pos` for every subsequent record — the Injection-Attacks
        // parser-confusion class.
        if *pos != rdata_start + rdlength {
            return Err(WireError::RdataLengthMismatch {
                declared: rdlength,
                consumed: *pos - rdata_start,
            });
        }
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.name, self.ttl)?;
        match &self.rdata {
            RData::A(a) => write!(f, "IN A {a}"),
            RData::Ns(n) => write!(f, "IN NS {n}"),
            RData::Cname(n) => write!(f, "IN CNAME {n}"),
            RData::Ptr(n) => write!(f, "IN PTR {n}"),
            RData::Soa(s) => write!(f, "IN SOA {} {} {}", s.mname, s.rname, s.serial),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "IN MX {preference} {exchange}"),
            RData::Txt(segs) => {
                write!(f, "IN TXT")?;
                for s in segs {
                    write!(f, " \"{}\"", String::from_utf8_lossy(s))?;
                }
                Ok(())
            }
            RData::Opt(_) => write!(f, "OPT"),
            RData::Unknown { rtype, data } => write!(f, "TYPE{rtype} \\# {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &Record) -> Record {
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        r.encode(&mut buf, &mut offsets).unwrap();
        let mut pos = 0;
        let back = Record::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn a_record_roundtrip() {
        let r = Record::a(
            DnsName::parse("odns-study.example.").unwrap(),
            300,
            Ipv4Addr::new(203, 1, 113, 50),
        );
        assert_eq!(roundtrip(&r), r);
        assert_eq!(r.a_addr(), Some(Ipv4Addr::new(203, 1, 113, 50)));
    }

    #[test]
    fn a_record_bad_length_rejected() {
        // Hand-build an A record with RDLENGTH 5.
        let mut buf = Vec::new();
        DnsName::parse("x.").unwrap().encode_uncompressed(&mut buf);
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&60u32.to_be_bytes());
        buf.extend_from_slice(&5u16.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        let mut pos = 0;
        assert!(matches!(
            Record::decode(&buf, &mut pos),
            Err(WireError::RdataLengthMismatch { declared: 5, .. })
        ));
    }

    /// Hand-build a record with an arbitrary RDLENGTH over `rdata` bytes.
    fn skewed(rtype: u16, rdlength: u16, rdata: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        DnsName::parse("x.").unwrap().encode_uncompressed(&mut buf);
        buf.extend_from_slice(&rtype.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&60u32.to_be_bytes());
        buf.extend_from_slice(&rdlength.to_be_bytes());
        buf.extend_from_slice(rdata);
        buf
    }

    #[test]
    fn ns_rdlength_underrun_rejected() {
        // Regression (parser-confusion class): RDLENGTH 5 over an NS name
        // that only spans 3 bytes. Without the consumed-exactly check the
        // 2 surplus bytes would be reparsed as the next record's owner
        // name, desynchronizing every record that follows.
        let buf = skewed(2, 5, &[1, b'a', 0, 0xC0, 0x00]);
        let mut pos = 0;
        assert_eq!(
            Record::decode(&buf, &mut pos),
            Err(WireError::RdataLengthMismatch {
                declared: 5,
                consumed: 3,
            })
        );
    }

    #[test]
    fn cname_rdlength_overrun_rejected() {
        // RDLENGTH 2 over a CNAME name spanning 3 bytes: the name reads
        // one byte past the declared RDATA end, stealing it from the next
        // record.
        let buf = skewed(5, 2, &[1, b'a', 0]);
        let mut pos = 0;
        assert_eq!(
            Record::decode(&buf, &mut pos),
            Err(WireError::RdataLengthMismatch {
                declared: 2,
                consumed: 3,
            })
        );
    }

    #[test]
    fn mx_rdlength_skew_rejected() {
        // Preference (2 bytes) + root exchange (1 byte) = 3 consumed, 4
        // declared.
        let buf = skewed(15, 4, &[0, 10, 0, 0]);
        let mut pos = 0;
        assert_eq!(
            Record::decode(&buf, &mut pos),
            Err(WireError::RdataLengthMismatch {
                declared: 4,
                consumed: 3,
            })
        );
    }

    #[test]
    fn soa_roundtrip() {
        let soa = SoaData {
            mname: DnsName::parse("ns1.example.").unwrap(),
            rname: DnsName::parse("hostmaster.example.").unwrap(),
            serial: 2021042001,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        };
        let r = Record {
            name: DnsName::parse("example.").unwrap(),
            class: Class::In,
            ttl: 3600,
            rdata: RData::Soa(soa),
        };
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn txt_multi_segment_roundtrip() {
        let r = Record {
            name: DnsName::parse("version.bind.").unwrap(),
            class: Class::Ch,
            ttl: 0,
            rdata: RData::Txt(vec![b"MikroTik".to_vec(), b"RouterOS 6.45".to_vec()]),
        };
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn txt_segment_too_long_rejected_on_encode() {
        let r = Record {
            name: DnsName::parse("t.").unwrap(),
            class: Class::In,
            ttl: 0,
            rdata: RData::Txt(vec![vec![b'x'; 256]]),
        };
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        assert!(matches!(
            r.encode(&mut buf, &mut offsets),
            Err(WireError::TxtSegmentTooLong(256))
        ));
    }

    #[test]
    fn unknown_type_preserved_opaquely() {
        let r = Record {
            name: DnsName::parse("odd.example.").unwrap(),
            class: Class::In,
            ttl: 60,
            rdata: RData::Unknown {
                rtype: 99,
                data: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
        };
        let back = roundtrip(&r);
        assert_eq!(back, r);
        assert_eq!(back.rtype(), RrType::Other(99));
    }

    #[test]
    fn mx_and_ns_and_cname_roundtrip() {
        for rdata in [
            RData::Mx {
                preference: 10,
                exchange: DnsName::parse("mail.example.").unwrap(),
            },
            RData::Ns(DnsName::parse("ns1.example.").unwrap()),
            RData::Cname(DnsName::parse("alias.example.").unwrap()),
            RData::Ptr(DnsName::parse("host.example.").unwrap()),
        ] {
            let r = Record {
                name: DnsName::parse("owner.example.").unwrap(),
                class: Class::In,
                ttl: 120,
                rdata,
            };
            assert_eq!(roundtrip(&r), r);
        }
    }

    #[test]
    fn rrtype_wire_values() {
        assert_eq!(RrType::A.to_u16(), 1);
        assert_eq!(RrType::Any.to_u16(), 255);
        assert_eq!(RrType::from_u16(16), RrType::Txt);
        assert_eq!(RrType::from_u16(9999), RrType::Other(9999));
    }

    #[test]
    fn display_matches_zone_file_style() {
        let r = Record::a(
            DnsName::parse("odns-study.example.").unwrap(),
            300,
            Ipv4Addr::new(192, 0, 2, 200),
        );
        assert_eq!(r.to_string(), "odns-study.example. 300 IN A 192.0.2.200");
    }
}
