//! CI entry point for the deterministic wire-format fuzz harness.
//!
//! ```sh
//! cargo run --release -p dnswire --bin wirefuzz            # quick mode
//! cargo run --release -p dnswire --bin wirefuzz -- 250000  # deeper run
//! ```
//!
//! Runs the fixed seed corpus plus seeded mutants (default
//! [`dnswire::fuzz::QUICK_ITERATIONS`]) through the panic/desync/reparse
//! oracles and exits non-zero on any violation, printing the offending
//! input in hex so the failure replays anywhere. An optional positional
//! argument overrides the iteration count; a second overrides the seed.

use dnswire::fuzz::{run_fuzz, DEFAULT_SEED, QUICK_ITERATIONS};

fn main() {
    let mut args = std::env::args().skip(1);
    let iterations: u64 = args
        .next()
        .map(|a| a.parse().expect("iteration count must be a number"))
        .unwrap_or(QUICK_ITERATIONS);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(DEFAULT_SEED);

    let report = run_fuzz(seed, iterations);
    println!("wirefuzz seed={seed:#018x}: {}", report.summary());
    if report.clean() {
        return;
    }
    for failure in &report.failures {
        eprintln!(
            "FAIL input #{}: {:?}\n  bytes: {}",
            failure.index, failure.kind, failure.input_hex
        );
    }
    std::process::exit(1);
}
