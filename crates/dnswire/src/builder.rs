//! Ergonomic construction of queries and responses.
//!
//! Every component in the workspace builds its DNS traffic through
//! [`MessageBuilder`] so that headers, counts, and flags stay consistent.

use crate::header::{Flags, Header, Rcode};
use crate::message::Message;
use crate::name::DnsName;
use crate::question::{QClass, Question};
use crate::rdata::{Record, RrType};
use std::net::Ipv4Addr;

/// Fluent builder for [`Message`].
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    msg: Message,
}

impl MessageBuilder {
    /// Start a standard query for `qname`/`qtype` with transaction `id`.
    pub fn query(id: u16, qname: DnsName, qtype: RrType) -> Self {
        let msg = Message {
            header: Header {
                id,
                flags: Flags::default(),
                ..Header::default()
            },
            questions: vec![Question::new(qname, qtype)],
            ..Message::default()
        };
        MessageBuilder { msg }
    }

    /// Start a query with an explicit class (e.g. `CH` for `version.bind`).
    pub fn query_class(id: u16, qname: DnsName, qtype: RrType, qclass: QClass) -> Self {
        let mut b = Self::query(id, qname, qtype);
        b.msg.questions[0].qclass = qclass;
        b
    }

    /// Start a response to `query` (same ID, question echoed, QR set).
    pub fn response_to(query: &Message) -> Self {
        MessageBuilder {
            msg: query.response_skeleton(),
        }
    }

    /// Set the RD bit.
    pub fn recursion_desired(mut self, rd: bool) -> Self {
        self.msg.header.flags.recursion_desired = rd;
        self
    }

    /// Set the RA bit (responses from recursive services).
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.msg.header.flags.recursion_available = ra;
        self
    }

    /// Set the AA bit (authoritative responses).
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.msg.header.flags.authoritative = aa;
        self
    }

    /// Set the response code.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.msg.header.flags.rcode = rcode;
        self
    }

    /// Append an answer record.
    pub fn answer(mut self, record: Record) -> Self {
        self.msg.answers.push(record);
        self
    }

    /// Append an answer A record for `name`.
    pub fn answer_a(self, name: DnsName, ttl: u32, addr: Ipv4Addr) -> Self {
        self.answer(Record::a(name, ttl, addr))
    }

    /// Append an authority-section record.
    pub fn authority(mut self, record: Record) -> Self {
        self.msg.authorities.push(record);
        self
    }

    /// Append an additional-section record.
    pub fn additional(mut self, record: Record) -> Self {
        self.msg.additionals.push(record);
        self
    }

    /// Finish, yielding the message (counts are fixed up on encode).
    pub fn build(self) -> Message {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_builder_sets_fields() {
        let q = MessageBuilder::query(7, DnsName::parse("a.example.").unwrap(), RrType::A)
            .recursion_desired(true)
            .build();
        assert_eq!(q.header.id, 7);
        assert!(q.header.flags.recursion_desired);
        assert!(!q.header.flags.response);
        assert_eq!(q.questions.len(), 1);
    }

    #[test]
    fn response_builder_echoes_query() {
        let q = MessageBuilder::query(9, DnsName::parse("b.example.").unwrap(), RrType::A).build();
        let r = MessageBuilder::response_to(&q)
            .recursion_available(true)
            .answer_a(
                DnsName::parse("b.example.").unwrap(),
                60,
                Ipv4Addr::new(198, 51, 100, 1),
            )
            .rcode(Rcode::NoError)
            .build();
        assert_eq!(r.header.id, 9);
        assert!(r.is_response());
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn chaos_class_query() {
        let q = MessageBuilder::query_class(
            1,
            DnsName::parse("version.bind.").unwrap(),
            RrType::Txt,
            QClass::Ch,
        )
        .build();
        assert_eq!(q.questions[0].qclass, QClass::Ch);
        let bytes = q.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.questions[0].qclass, QClass::Ch);
    }

    #[test]
    fn refused_response_shape() {
        // What a restricted resolver sends to an off-net client — the reason
        // transparent forwarders must point at *open* resolvers (§2).
        let q = MessageBuilder::query(3, DnsName::parse("x.example.").unwrap(), RrType::A).build();
        let r = MessageBuilder::response_to(&q)
            .rcode(Rcode::Refused)
            .build();
        assert_eq!(r.header.flags.rcode, Rcode::Refused);
        assert!(r.answers.is_empty());
    }
}
