//! Domain names: label storage, textual parsing, wire encoding with
//! compression, and loop-safe decoding.

use crate::error::WireError;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Maximum length of a single label on the wire (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a whole name on the wire, including length octets and
/// the root terminator (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Budget of compression pointer hops tolerated during decode before we
/// declare a loop. A valid name can never need more hops than labels.
const MAX_POINTER_HOPS: usize = 128;

/// A fully-qualified domain name.
///
/// Names are stored as a sequence of raw label byte-strings (DNS labels are
/// arbitrary octets, not just ASCII). Comparison and hashing are
/// case-insensitive for ASCII, matching resolver behaviour (RFC 1035 §2.3.3)
/// — this matters for the study because caches key on names and some CPE
/// devices randomize query-name case (the "0x20" hack).
///
/// The label sequence is immutable and shared (`Arc`), so cloning a name —
/// which resolvers do on every cache lookup, pending-query record, and
/// response build — is a refcount bump, not a per-label reallocation.
#[derive(Debug, Clone, Eq)]
pub struct DnsName {
    labels: Arc<Vec<Vec<u8>>>,
}

impl DnsName {
    /// The root name (`.`).
    pub fn root() -> Self {
        DnsName {
            labels: Arc::new(Vec::new()),
        }
    }

    /// Parse a textual name such as `"odns-study.example."`.
    ///
    /// A single trailing dot is accepted and ignored; empty interior labels
    /// (`"a..b"`) are rejected. The empty string and `"."` denote the root.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        if s.is_empty() || s == "." {
            return Ok(Self::root());
        }
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        let mut labels = Vec::new();
        for part in trimmed.split('.') {
            if part.is_empty() {
                return Err(WireError::BadNameSyntax(s.to_string()));
            }
            if part.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(part.len()));
            }
            labels.push(part.as_bytes().to_vec());
        }
        let name = DnsName {
            labels: Arc::new(labels),
        };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Construct from raw labels. Rejects empty or oversized labels.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(WireError::InvalidLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(l.len()));
            }
            out.push(l.to_vec());
        }
        let name = DnsName {
            labels: Arc::new(out),
        };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// The labels of this name, leftmost (most specific) first.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels; the root has zero.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length this name occupies on the wire when encoded without
    /// compression: one length octet per label plus the label bytes, plus the
    /// terminating zero octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Returns the parent name (this name minus its leftmost label), or
    /// `None` for the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName {
                labels: Arc::new(self.labels[1..].to_vec()),
            })
        }
    }

    /// `child.is_subdomain_of(parent)` — true when `self` ends with all of
    /// `other`'s labels (every name is a subdomain of the root and of
    /// itself). Used for zone cut / delegation decisions in the resolver.
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(other.labels.iter())
            .all(|(a, b)| eq_ignore_ascii_case(a, b))
    }

    /// Prepend a label, producing `label.self`.
    pub fn prepend(&self, label: &[u8]) -> Result<DnsName, WireError> {
        if label.is_empty() {
            return Err(WireError::InvalidLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = DnsName {
            labels: Arc::new(labels),
        };
        let wire = name.wire_len();
        if wire > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(wire));
        }
        Ok(name)
    }

    /// Encode without compression, appending to `buf`.
    pub fn encode_uncompressed(&self, buf: &mut Vec<u8>) {
        for label in self.labels.iter() {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        buf.push(0);
    }

    /// Encode with RFC 1035 §4.1.4 compression.
    ///
    /// `offsets` maps previously-encoded suffixes (lower-cased textual form)
    /// to their buffer offsets. Any suffix of this name already present is
    /// replaced by a two-octet pointer; new suffixes that start below offset
    /// 0x3FFF are recorded for later reuse.
    pub fn encode_compressed(&self, buf: &mut Vec<u8>, offsets: &mut HashMap<String, usize>) {
        for i in 0..self.labels.len() {
            let suffix_key = Self::suffix_key(&self.labels[i..]);
            if let Some(&off) = offsets.get(&suffix_key) {
                debug_assert!(off <= 0x3FFF);
                let pointer = 0xC000u16 | off as u16;
                buf.extend_from_slice(&pointer.to_be_bytes());
                return;
            }
            let here = buf.len();
            if here <= 0x3FFF {
                offsets.insert(suffix_key, here);
            }
            let label = &self.labels[i];
            buf.push(label.len() as u8);
            buf.extend_from_slice(label);
        }
        buf.push(0);
    }

    fn suffix_key(labels: &[Vec<u8>]) -> String {
        let mut key = String::new();
        for l in labels {
            for &b in l {
                key.push(b.to_ascii_lowercase() as char);
            }
            key.push('.');
        }
        key
    }

    /// Decode a name from `msg` starting at `*pos`, following compression
    /// pointers. `*pos` is advanced past the name *in the original stream*
    /// (pointers do not move it further). Pointer loops and forward pointers
    /// are rejected.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut cursor = *pos;
        let mut followed_pointer = false;
        let mut hops = 0usize;
        let mut wire_len = 1usize; // terminating zero

        loop {
            let len_byte = *msg.get(cursor).ok_or(WireError::Truncated {
                context: "name length octet",
            })?;
            match len_byte & 0xC0 {
                0x00 => {
                    if len_byte == 0 {
                        cursor += 1;
                        if !followed_pointer {
                            *pos = cursor;
                        }
                        return Ok(DnsName {
                            labels: Arc::new(labels),
                        });
                    }
                    let len = len_byte as usize;
                    let start = cursor + 1;
                    let end = start + len;
                    if end > msg.len() {
                        return Err(WireError::Truncated {
                            context: "name label",
                        });
                    }
                    wire_len += len + 1;
                    if wire_len > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    labels.push(msg[start..end].to_vec());
                    cursor = end;
                }
                0xC0 => {
                    let second = *msg.get(cursor + 1).ok_or(WireError::Truncated {
                        context: "pointer low byte",
                    })?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    if target >= cursor {
                        // Forward (or self) pointers are malformed; real
                        // resolvers reject them, and accepting them would
                        // allow loops.
                        return Err(WireError::BadCompressionPointer { at: cursor, target });
                    }
                    if !followed_pointer {
                        *pos = cursor + 2;
                        followed_pointer = true;
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::CompressionLoop);
                    }
                    cursor = target;
                }
                other => return Err(WireError::ReservedLabelType(other)),
            }
        }
    }
}

fn eq_ignore_ascii_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for DnsName {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(other.labels.iter())
                .all(|(a, b)| eq_ignore_ascii_case(a, b))
    }
}

impl Hash for DnsName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for label in self.labels.iter() {
            state.write_usize(label.len());
            for &b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for DnsName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DnsName {
    /// Canonical DNS ordering: compare label sequences right-to-left,
    /// case-insensitively (RFC 4034 §6.1 style, simplified).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let a = self.labels.iter().rev();
        let b = other.labels.iter().rev();
        for (la, lb) in a.zip(b) {
            let la: Vec<u8> = la.iter().map(|c| c.to_ascii_lowercase()).collect();
            let lb: Vec<u8> = lb.iter().map(|c| c.to_ascii_lowercase()).collect();
            match la.cmp(&lb) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }
}

impl fmt::Display for DnsName {
    /// Canonical dotted representation with a trailing dot; non-printable
    /// bytes, dots, and backslashes inside labels are escaped as `\DDD`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in self.labels.iter() {
            for &b in label {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let n = DnsName::parse("odns-study.example.").unwrap();
        assert_eq!(n.to_string(), "odns-study.example.");
        assert_eq!(n.label_count(), 2);
        let n2 = DnsName::parse("odns-study.example").unwrap();
        assert_eq!(n, n2, "trailing dot must not matter");
    }

    #[test]
    fn root_parses_from_dot_and_empty() {
        assert!(DnsName::parse(".").unwrap().is_root());
        assert!(DnsName::parse("").unwrap().is_root());
        assert_eq!(DnsName::root().to_string(), ".");
        assert_eq!(DnsName::root().wire_len(), 1);
    }

    #[test]
    fn empty_interior_label_rejected() {
        assert!(matches!(
            DnsName::parse("a..b"),
            Err(WireError::BadNameSyntax(_))
        ));
    }

    #[test]
    fn oversized_label_rejected() {
        let long = "x".repeat(64);
        assert!(matches!(
            DnsName::parse(&long),
            Err(WireError::LabelTooLong(64))
        ));
        let ok = "x".repeat(63);
        assert!(DnsName::parse(&ok).is_ok());
    }

    #[test]
    fn oversized_name_rejected() {
        // Four 63-byte labels = 4*64 + 1 = 257 > 255.
        let l = "x".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(matches!(DnsName::parse(&s), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a = DnsName::parse("ODNS-Study.Example.").unwrap();
        let b = DnsName::parse("odns-study.example.").unwrap();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn subdomain_relation() {
        let parent = DnsName::parse("example.").unwrap();
        let child = DnsName::parse("odns-study.example.").unwrap();
        let other = DnsName::parse("odns-study.test.").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(child.is_subdomain_of(&child));
        assert!(child.is_subdomain_of(&DnsName::root()));
        assert!(!parent.is_subdomain_of(&child));
        assert!(!other.is_subdomain_of(&parent));
    }

    #[test]
    fn parent_walks_to_root() {
        let n = DnsName::parse("a.b.c.").unwrap();
        let p1 = n.parent().unwrap();
        assert_eq!(p1.to_string(), "b.c.");
        let p2 = p1.parent().unwrap();
        assert_eq!(p2.to_string(), "c.");
        let p3 = p2.parent().unwrap();
        assert!(p3.is_root());
        assert!(p3.parent().is_none());
    }

    #[test]
    fn prepend_builds_child() {
        let base = DnsName::parse("example.").unwrap();
        let child = base.prepend(b"203-0-113-7").unwrap();
        assert_eq!(child.to_string(), "203-0-113-7.example.");
    }

    #[test]
    fn uncompressed_encode_decode_roundtrip() {
        let n = DnsName::parse("a.bc.def.").unwrap();
        let mut buf = Vec::new();
        n.encode_uncompressed(&mut buf);
        assert_eq!(buf, b"\x01a\x02bc\x03def\x00");
        let mut pos = 0;
        let back = DnsName::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, n);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compression_reuses_suffixes() {
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        let n1 = DnsName::parse("ns1.example.").unwrap();
        let n2 = DnsName::parse("ns2.example.").unwrap();
        n1.encode_compressed(&mut buf, &mut offsets);
        let after_first = buf.len();
        n2.encode_compressed(&mut buf, &mut offsets);
        // Second encoding: "ns2" label (4 bytes) + 2-byte pointer.
        assert_eq!(buf.len() - after_first, 4 + 2);
        let mut pos = 0;
        let d1 = DnsName::decode(&buf, &mut pos).unwrap();
        assert_eq!(d1, n1);
        let mut pos2 = pos;
        let d2 = DnsName::decode(&buf, &mut pos2).unwrap();
        assert_eq!(d2, n2);
        assert_eq!(pos2, buf.len());
    }

    #[test]
    fn whole_name_pointer() {
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        let n = DnsName::parse("cache.example.").unwrap();
        n.encode_compressed(&mut buf, &mut offsets);
        let first_len = buf.len();
        n.encode_compressed(&mut buf, &mut offsets);
        assert_eq!(
            buf.len() - first_len,
            2,
            "identical name must become a bare pointer"
        );
        let mut pos = first_len;
        let back = DnsName::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 targeting offset 4 (forward).
        let buf = [0xC0, 0x04, 0x00, 0x00, 0x00];
        let mut pos = 0;
        assert!(matches!(
            DnsName::decode(&buf, &mut pos),
            Err(WireError::BadCompressionPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_self_pointer_loop() {
        // Label "a", then pointer back to offset 2 which is the pointer itself.
        let buf = [0x01, b'a', 0xC0, 0x02];
        let mut pos = 2;
        assert!(matches!(
            DnsName::decode(&buf, &mut pos),
            Err(WireError::BadCompressionPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_reserved_label_bits() {
        let buf = [0x80, 0x01, 0x00];
        let mut pos = 0;
        assert!(matches!(
            DnsName::decode(&buf, &mut pos),
            Err(WireError::ReservedLabelType(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = [0x05, b'a', b'b'];
        let mut pos = 0;
        assert!(matches!(
            DnsName::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
        let empty: [u8; 0] = [];
        let mut pos = 0;
        assert!(matches!(
            DnsName::decode(&empty, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_advances_pos_past_pointer_not_target() {
        let mut buf = Vec::new();
        let mut offsets = HashMap::new();
        DnsName::parse("example.")
            .unwrap()
            .encode_compressed(&mut buf, &mut offsets);
        let start_second = buf.len();
        DnsName::parse("www.example.")
            .unwrap()
            .encode_compressed(&mut buf, &mut offsets);
        let mut pos = start_second;
        let n = DnsName::decode(&buf, &mut pos).unwrap();
        assert_eq!(n.to_string(), "www.example.");
        assert_eq!(
            pos,
            buf.len(),
            "pos must advance in the original stream only"
        );
    }

    #[test]
    fn display_escapes_non_printable() {
        let n = DnsName::from_labels([&[0x01u8, b'.', b'z'][..]]).unwrap();
        assert_eq!(n.to_string(), "\\001\\046z.");
    }

    #[test]
    fn canonical_ordering_is_suffix_first() {
        let a = DnsName::parse("a.example.").unwrap();
        let b = DnsName::parse("b.example.").unwrap();
        let e = DnsName::parse("example.").unwrap();
        assert!(e < a, "parent sorts before child");
        assert!(a < b);
    }
}
