//! Whole-message encode/decode (RFC 1035 §4.1).

use crate::error::WireError;
use crate::header::{Flags, Header};
use crate::question::Question;
use crate::rdata::Record;
use crate::MAX_MESSAGE_LEN;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A complete DNS message: header plus the four sections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header. On encode, the section counts are recomputed from the
    /// actual section lengths, so callers never desynchronize them.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Encode to wire bytes with name compression.
    ///
    /// # Panics
    /// Never panics; sections that cannot be encoded (oversized TXT) are a
    /// programming error surfaced through [`Message::try_encode`]. This
    /// convenience wrapper unwraps because all constructors in this
    /// workspace validate contents on construction.
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode()
            .expect("message built by this workspace must encode")
    }

    /// Encode to wire bytes, reporting errors.
    pub fn try_encode(&self) -> Result<Vec<u8>, WireError> {
        // Section counts are 16-bit on the wire; a longer section must be
        // an error, not an `as u16` truncation that would emit a header
        // announcing 1 record for a 65 537-record body.
        let count = |len: usize, section: &'static str| -> Result<u16, WireError> {
            u16::try_from(len).map_err(|_| WireError::SectionCountOverflow { section, len })
        };
        let mut buf = Vec::with_capacity(128);
        let mut header = self.header;
        header.qdcount = count(self.questions.len(), "question")?;
        header.ancount = count(self.answers.len(), "answer")?;
        header.nscount = count(self.authorities.len(), "authority")?;
        header.arcount = count(self.additionals.len(), "additional")?;
        header.encode(&mut buf);
        let mut offsets: HashMap<String, usize> = HashMap::new();
        for q in &self.questions {
            q.encode(&mut buf, &mut offsets);
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            r.encode(&mut buf, &mut offsets)?;
        }
        if buf.len() > MAX_MESSAGE_LEN {
            return Err(WireError::MessageTooLong(buf.len()));
        }
        Ok(buf)
    }

    /// Decode a message, requiring the buffer to contain exactly one
    /// message (trailing bytes are an error — the transactional scanner
    /// counts them as middlebox distortion).
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        let (m, consumed) = Self::decode_prefix(msg)?;
        if consumed != msg.len() {
            return Err(WireError::TrailingBytes(msg.len() - consumed));
        }
        Ok(m)
    }

    /// Decode a message from the front of `msg`, returning it together with
    /// the number of bytes consumed.
    pub fn decode_prefix(msg: &[u8]) -> Result<(Self, usize), WireError> {
        if msg.len() > MAX_MESSAGE_LEN {
            return Err(WireError::MessageTooLong(msg.len()));
        }
        let mut pos = 0usize;
        let header = Header::decode(msg, &mut pos)?;
        // Header counts are attacker-controlled: a 12-byte runt may claim
        // 65 535 answers. Preallocate only what the remaining bytes could
        // possibly hold; pathological counts then fail on the first
        // truncated entry having reserved nothing.
        let mut questions = Vec::with_capacity(capped_capacity(
            header.qdcount,
            QUESTION_MIN_WIRE_LEN,
            pos,
            msg,
        ));
        for _ in 0..header.qdcount {
            questions.push(Question::decode(msg, &mut pos)?);
        }
        let mut decode_section = |count: u16| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(capped_capacity(count, RECORD_MIN_WIRE_LEN, pos, msg));
            for _ in 0..count {
                out.push(Record::decode(msg, &mut pos)?);
            }
            Ok(out)
        };
        let answers = decode_section(header.ancount)?;
        let authorities = decode_section(header.nscount)?;
        let additionals = decode_section(header.arcount)?;
        Ok((
            Message {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
            pos,
        ))
    }

    /// All IPv4 addresses found in answer-section A records, in order.
    ///
    /// The measurement method reads exactly two of these: the dynamic
    /// client-reflecting record and the static control record (§4.1).
    pub fn answer_a_addrs(&self) -> Vec<Ipv4Addr> {
        self.answers.iter().filter_map(|r| r.a_addr()).collect()
    }

    /// True if this is a response (QR bit set).
    pub fn is_response(&self) -> bool {
        self.header.flags.response
    }

    /// Shorthand for the first question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// True for the only query shape the study's probes and stubs emit: a
    /// non-response, standard-opcode message with exactly one `IN`
    /// question. Hosts gate their pre-encoded-response fast paths on this
    /// one predicate so the eligibility rule cannot drift between them.
    pub fn is_plain_in_query(&self) -> bool {
        !self.header.flags.response
            && self.header.flags.opcode == crate::header::Opcode::Query
            && self.questions.len() == 1
            && self.questions[0].qclass == crate::question::QClass::In
    }

    /// Build the skeleton of a response to this query: same ID, same
    /// question, QR set. Callers fill in answers and flags.
    pub fn response_skeleton(&self) -> Message {
        Message {
            header: Header {
                id: self.header.id,
                flags: Flags {
                    response: true,
                    opcode: self.header.flags.opcode,
                    recursion_desired: self.header.flags.recursion_desired,
                    ..Flags::default()
                },
                ..Header::default()
            },
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encoded size in wire bytes (used by the misuse-potential study, §6,
    /// as the numerator/denominator of amplification factors).
    ///
    /// Encoding failures propagate: a message that cannot encode has no
    /// wire length, and mapping it to `0` would silently zero the
    /// amplification factors computed from it.
    pub fn wire_len(&self) -> Result<usize, WireError> {
        self.try_encode().map(|b| b.len())
    }
}

/// Smallest wire footprint of a question: 1-byte root name + type + class.
const QUESTION_MIN_WIRE_LEN: usize = 5;
/// Smallest wire footprint of a record: 1-byte root name + the 10-byte
/// fixed part (type, class, TTL, RDLENGTH) with empty RDATA.
const RECORD_MIN_WIRE_LEN: usize = 11;

/// How many entries of at-least-`min_len` wire bytes could still fit in
/// `msg` past `pos` — the safe upper bound for section preallocation. The
/// claimed `count` is only honored up to that bound.
fn capped_capacity(count: u16, min_len: usize, pos: usize, msg: &[u8]) -> usize {
    let fit = msg.len().saturating_sub(pos) / min_len;
    (count as usize).min(fit)
}

/// Extract `(id, qname)` cheaply from a raw packet without a full decode.
/// Used on the scanner's hot receive path before full parsing.
pub fn peek_id(msg: &[u8]) -> Option<u16> {
    if msg.len() < 2 {
        return None;
    }
    Some(u16::from_be_bytes([msg[0], msg[1]]))
}

/// Peek the QR bit cheaply: `Some(true)` for a response, `Some(false)`
/// for a query, `None` when the packet is too short to carry DNS flags.
/// Lets receive paths reject non-answers (e.g. a reflected query landing
/// on a probe port) without a full decode.
pub fn peek_qr(msg: &[u8]) -> Option<bool> {
    if msg.len() < 4 {
        return None;
    }
    Some(msg[2] & 0x80 != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::DnsName;
    use crate::rdata::{Class, RrType};

    fn sample_response() -> Message {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let mut m = Message::default();
        m.header.id = 10337;
        m.header.flags.response = true;
        m.header.flags.recursion_available = true;
        m.questions.push(Question::new(qname.clone(), RrType::A));
        // The two A records of the measurement method: dynamic + control.
        m.answers.push(Record::a(
            qname.clone(),
            300,
            Ipv4Addr::new(203, 1, 113, 50),
        ));
        m.answers
            .push(Record::a(qname, 300, Ipv4Addr::new(192, 0, 2, 200)));
        m
    }

    #[test]
    fn full_message_roundtrip() {
        let m = sample_response();
        let bytes = m.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.id, 10337);
        assert_eq!(back.questions, m.questions);
        assert_eq!(back.answers, m.answers);
    }

    #[test]
    fn counts_recomputed_on_encode() {
        let mut m = sample_response();
        m.header.ancount = 99; // deliberately wrong
        let bytes = m.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.ancount, 2);
        assert_eq!(back.answers.len(), 2);
    }

    #[test]
    fn answer_a_addrs_in_order() {
        let m = sample_response();
        assert_eq!(
            m.answer_a_addrs(),
            vec![
                Ipv4Addr::new(203, 1, 113, 50),
                Ipv4Addr::new(192, 0, 2, 200)
            ]
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_response().encode();
        bytes.push(0xFF);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
        // But decode_prefix tolerates them and reports consumption.
        let (m, consumed) = Message::decode_prefix(&bytes).unwrap();
        assert_eq!(consumed, bytes.len() - 1);
        assert_eq!(m.header.id, 10337);
    }

    #[test]
    fn response_skeleton_copies_identity() {
        let q = crate::builder::MessageBuilder::query(
            42,
            DnsName::parse("odns-study.example.").unwrap(),
            RrType::A,
        )
        .recursion_desired(true)
        .build();
        let r = q.response_skeleton();
        assert_eq!(r.header.id, 42);
        assert!(r.header.flags.response);
        assert!(r.header.flags.recursion_desired);
        assert_eq!(r.questions, q.questions);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let m = sample_response();
        let compressed = m.encode();
        // Rebuild without compression to compare sizes.
        let mut uncompressed = Vec::new();
        let mut h = m.header;
        h.qdcount = 1;
        h.ancount = 2;
        h.encode(&mut uncompressed);
        for q in &m.questions {
            // encode question but force fresh offsets each time to defeat reuse
            let mut local = HashMap::new();
            q.encode(&mut uncompressed, &mut local);
        }
        for r in &m.answers {
            let mut local = HashMap::new();
            r.encode(&mut uncompressed, &mut local).unwrap();
        }
        assert!(
            compressed.len() < uncompressed.len(),
            "compression must shrink: {} vs {}",
            compressed.len(),
            uncompressed.len()
        );
    }

    #[test]
    fn peek_id_matches_header() {
        let m = sample_response();
        let bytes = m.encode();
        assert_eq!(peek_id(&bytes), Some(10337));
        assert_eq!(peek_id(&[0x01]), None);
    }

    #[test]
    fn peek_qr_distinguishes_query_from_response() {
        let resp = sample_response().encode();
        assert_eq!(peek_qr(&resp), Some(true));
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let query = crate::MessageBuilder::query(7, qname, RrType::A)
            .recursion_desired(true)
            .build()
            .encode();
        assert_eq!(peek_qr(&query), Some(false));
        assert_eq!(peek_qr(&[0x00, 0x01, 0x80]), None, "too short for flags");
    }

    #[test]
    fn oversized_message_rejected_on_decode() {
        let big = vec![0u8; MAX_MESSAGE_LEN + 1];
        assert!(matches!(
            Message::decode(&big),
            Err(WireError::MessageTooLong(_))
        ));
    }

    #[test]
    fn oversized_section_count_is_an_error_not_a_truncation() {
        // Regression: `as u16` used to truncate 65 537 to 1, emitting a
        // header that announced one answer for a 65 537-record body.
        let mut m = Message::default();
        let rec = Record::a(DnsName::root(), 0, Ipv4Addr::new(192, 0, 2, 1));
        m.answers = vec![rec; u16::MAX as usize + 2];
        assert_eq!(
            m.try_encode(),
            Err(WireError::SectionCountOverflow {
                section: "answer",
                len: u16::MAX as usize + 2,
            })
        );
    }

    #[test]
    fn exactly_u16_max_entries_still_encode_their_count() {
        // The boundary itself is legal; only the body-length cap applies.
        let mut m = Message::default();
        let rec = Record::a(DnsName::root(), 0, Ipv4Addr::new(192, 0, 2, 1));
        m.answers = vec![rec; u16::MAX as usize];
        // 65 535 × 15 bytes blows MAX_MESSAGE_LEN, but the *count* is fine:
        // the error must be the length cap, not a count overflow.
        assert!(matches!(m.try_encode(), Err(WireError::MessageTooLong(_))));
    }

    #[test]
    fn runt_header_counts_do_not_reserve_memory() {
        // A 12-byte runt claiming 65 535 answers used to reserve
        // 65 535 × sizeof(Record) per section before the first decode
        // error. The cap bounds preallocation by what the remaining bytes
        // could hold.
        assert_eq!(
            capped_capacity(0xFFFF, RECORD_MIN_WIRE_LEN, 12, &[0u8; 12]),
            0
        );
        assert_eq!(
            capped_capacity(0xFFFF, QUESTION_MIN_WIRE_LEN, 12, &[0u8; 12]),
            0
        );
        // 34 bytes past the header fit exactly 3 minimal 11-byte records.
        assert_eq!(
            capped_capacity(0xFFFF, RECORD_MIN_WIRE_LEN, 12, &[0u8; 46]),
            3
        );
        // Honest counts below the bound pass through unchanged.
        assert_eq!(capped_capacity(2, RECORD_MIN_WIRE_LEN, 12, &[0u8; 4096]), 2);

        // And the runt itself still fails cleanly.
        let mut runt = vec![0u8; crate::header::HEADER_LEN];
        runt[6] = 0xFF;
        runt[7] = 0xFF; // ancount = 65 535
        assert!(matches!(
            Message::decode(&runt),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn wire_len_propagates_encode_failure() {
        // Regression: an unencodable message used to report wire length 0,
        // silently zeroing amplification factors in the §6 misuse study.
        let ok = sample_response();
        assert_eq!(ok.wire_len().unwrap(), ok.encode().len());

        let mut bad = Message::default();
        bad.answers.push(Record {
            name: DnsName::root(),
            class: Class::In,
            ttl: 0,
            rdata: crate::rdata::RData::Txt(vec![vec![0u8; 256]]),
        });
        assert_eq!(bad.wire_len(), Err(WireError::TxtSegmentTooLong(256)));
    }

    #[test]
    fn empty_message_is_header_only() {
        let m = Message {
            header: Header {
                id: 7,
                ..Header::default()
            },
            ..Message::default()
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), crate::header::HEADER_LEN);
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.header.id, 7);
    }
}
