//! Pre-encoded message templates for allocation-free hot paths.
//!
//! A cache-served DNS answer differs from the previous one only in three
//! places: the transaction ID, the RD flag echoed from the query, and the
//! decayed answer TTLs. [`ResponseTemplate`] encodes the message once and
//! records the byte offsets of those fields, so serving the next client is
//! one buffer copy plus a handful of byte patches — instead of a full
//! `MessageBuilder` → `Message` → `encode` walk with its name clones and
//! compression bookkeeping.

use crate::header::HEADER_LEN;
use crate::message::Message;

/// Bit of the RD flag inside the first flags byte (RFC 1035 §4.1.1).
const RD_BIT: u8 = 0x01;

/// A response encoded once, with patch points for the per-client fields.
#[derive(Debug, Clone)]
pub struct ResponseTemplate {
    bytes: Vec<u8>,
    /// Byte offsets of each answer-section TTL (big-endian u32).
    ttl_offsets: Vec<usize>,
}

/// Advance `pos` past an encoded domain name (labels, possibly ending in a
/// compression pointer).
fn skip_name(bytes: &[u8], pos: &mut usize) -> Option<()> {
    loop {
        let len = *bytes.get(*pos)?;
        if len == 0 {
            *pos += 1;
            return Some(());
        }
        if len & 0xC0 == 0xC0 {
            *pos += 2;
            return Some(());
        }
        *pos += 1 + len as usize;
    }
}

impl ResponseTemplate {
    /// Encode `msg` and locate every answer-record TTL field.
    ///
    /// Returns `None` when the message cannot be encoded or its wire form
    /// cannot be re-walked (never the case for messages built by this
    /// crate's own constructors).
    pub fn from_message(msg: &Message) -> Option<Self> {
        let bytes = msg.try_encode().ok()?;
        let mut ttl_offsets = Vec::with_capacity(msg.answers.len());
        let mut pos = HEADER_LEN;
        for _ in 0..msg.questions.len() {
            skip_name(&bytes, &mut pos)?;
            pos += 4; // qtype + qclass
        }
        for _ in 0..msg.answers.len() {
            skip_name(&bytes, &mut pos)?;
            // type (2) + class (2), then the TTL we want to patch.
            pos += 4;
            ttl_offsets.push(pos);
            pos += 4; // the TTL itself
            let rdlen = u16::from_be_bytes([*bytes.get(pos)?, *bytes.get(pos + 1)?]);
            pos += 2 + rdlen as usize;
        }
        if pos > bytes.len() {
            return None;
        }
        Some(ResponseTemplate { bytes, ttl_offsets })
    }

    /// Wire length of the templated response.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Produce the response for one client: one allocation (the buffer
    /// copy), then patch the transaction ID, the echoed RD flag, and every
    /// answer TTL to `ttl` (a cache serves all records with the same
    /// remaining lifetime).
    pub fn materialize(&self, txid: u16, rd: bool, ttl: u32) -> Vec<u8> {
        let mut out = self.bytes.clone();
        out[0..2].copy_from_slice(&txid.to_be_bytes());
        if rd {
            out[2] |= RD_BIT;
        } else {
            out[2] &= !RD_BIT;
        }
        for &off in &self.ttl_offsets {
            out[off..off + 4].copy_from_slice(&ttl.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MessageBuilder;
    use crate::name::DnsName;
    use crate::rdata::RrType;
    use std::net::Ipv4Addr;

    fn response() -> Message {
        let qname = DnsName::parse("odns-study.example.").unwrap();
        let query = MessageBuilder::query(77, qname.clone(), RrType::A)
            .recursion_desired(true)
            .build();
        MessageBuilder::response_to(&query)
            .recursion_available(true)
            .answer_a(qname.clone(), 300, Ipv4Addr::new(203, 0, 113, 50))
            .answer_a(qname, 300, Ipv4Addr::new(192, 0, 2, 200))
            .build()
    }

    #[test]
    fn materialized_bytes_match_full_encode() {
        let resp = response();
        let template = ResponseTemplate::from_message(&resp).unwrap();
        // Same txid/rd/ttl: byte-identical to the ordinary encode.
        assert_eq!(template.materialize(77, true, 300), resp.encode());
    }

    #[test]
    fn patches_txid_rd_and_ttls() {
        let template = ResponseTemplate::from_message(&response()).unwrap();
        let bytes = template.materialize(0xBEEF, false, 123);
        let m = Message::decode(&bytes).unwrap();
        assert_eq!(m.header.id, 0xBEEF);
        assert!(!m.header.flags.recursion_desired);
        assert!(m.header.flags.recursion_available);
        assert!(m.answers.iter().all(|r| r.ttl == 123));
        // Non-patched content intact.
        assert_eq!(
            m.answer_a_addrs(),
            vec![
                Ipv4Addr::new(203, 0, 113, 50),
                Ipv4Addr::new(192, 0, 2, 200)
            ]
        );
    }

    #[test]
    fn wire_len_matches() {
        let resp = response();
        let template = ResponseTemplate::from_message(&resp).unwrap();
        assert_eq!(template.wire_len(), resp.encode().len());
    }
}
