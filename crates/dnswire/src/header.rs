//! The 12-byte DNS message header (RFC 1035 §4.1.1).

use crate::error::WireError;

/// Query/response operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query (QUERY).
    Query,
    /// Inverse query (IQUERY, obsolete but still seen in the wild).
    IQuery,
    /// Server status request (STATUS).
    Status,
    /// Zone change notification (NOTIFY).
    Notify,
    /// Dynamic update (UPDATE).
    Update,
    /// Any opcode this crate does not model, preserved verbatim.
    Other(u8),
}

impl Opcode {
    /// Wire value (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// From a 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// Response codes (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error — the server could not interpret the query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name error — the domain does not exist (NXDOMAIN).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused — e.g. a restricted resolver rejecting an off-net client,
    /// the case that forces transparent forwarders to target *open*
    /// resolvers (§2 of the paper).
    Refused,
    /// Any other RCODE, preserved verbatim.
    Other(u8),
}

impl Rcode {
    /// Wire value (4 bits).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// From a 4-bit wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The header flag word (bytes 2–3 of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// QR — true for responses.
    pub response: bool,
    /// OPCODE.
    pub opcode: Opcode,
    /// AA — authoritative answer.
    pub authoritative: bool,
    /// TC — truncation (response did not fit; scanners fall back to TCP,
    /// which the study deliberately does not do).
    pub truncated: bool,
    /// RD — recursion desired.
    pub recursion_desired: bool,
    /// RA — recursion available.
    pub recursion_available: bool,
    /// AD — authentic data (RFC 4035); carried through untouched.
    pub authentic_data: bool,
    /// CD — checking disabled (RFC 4035); carried through untouched.
    pub checking_disabled: bool,
    /// RCODE.
    pub rcode: Rcode,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            authentic_data: false,
            checking_disabled: false,
            rcode: Rcode::NoError,
        }
    }
}

impl Flags {
    /// Pack into the 16-bit wire representation.
    pub fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 0x8000;
        }
        v |= (self.opcode.to_u8() as u16) << 11;
        if self.authoritative {
            v |= 0x0400;
        }
        if self.truncated {
            v |= 0x0200;
        }
        if self.recursion_desired {
            v |= 0x0100;
        }
        if self.recursion_available {
            v |= 0x0080;
        }
        if self.authentic_data {
            v |= 0x0020;
        }
        if self.checking_disabled {
            v |= 0x0010;
        }
        v |= self.rcode.to_u8() as u16;
        v
    }

    /// Unpack from the 16-bit wire representation. The Z bit (0x0040) is
    /// ignored, as RFC 1035 requires.
    pub fn from_u16(v: u16) -> Self {
        Flags {
            response: v & 0x8000 != 0,
            opcode: Opcode::from_u8((v >> 11) as u8),
            authoritative: v & 0x0400 != 0,
            truncated: v & 0x0200 != 0,
            recursion_desired: v & 0x0100 != 0,
            recursion_available: v & 0x0080 != 0,
            authentic_data: v & 0x0020 != 0,
            checking_disabled: v & 0x0010 != 0,
            rcode: Rcode::from_u8(v as u8),
        }
    }
}

/// The full DNS header: ID, flags, and the four section counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction ID. The transactional scanner (§4.1) encodes probe
    /// identity into `(source port, id)` tuples, so uniqueness of this field
    /// within a port is load-bearing for the whole study.
    pub id: u16,
    /// Flag word.
    pub flags: Flags,
    /// QDCOUNT.
    pub qdcount: u16,
    /// ANCOUNT.
    pub ancount: u16,
    /// NSCOUNT.
    pub nscount: u16,
    /// ARCOUNT.
    pub arcount: u16,
}

/// Size of the header on the wire.
pub const HEADER_LEN: usize = 12;

impl Header {
    /// Encode into exactly 12 bytes ([`HEADER_LEN`]), appended to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        buf.extend_from_slice(&self.flags.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.qdcount.to_be_bytes());
        buf.extend_from_slice(&self.ancount.to_be_bytes());
        buf.extend_from_slice(&self.nscount.to_be_bytes());
        buf.extend_from_slice(&self.arcount.to_be_bytes());
    }

    /// Decode from the front of `msg`, advancing `pos`.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        if msg.len() < *pos + HEADER_LEN {
            return Err(WireError::Truncated { context: "header" });
        }
        let b = &msg[*pos..];
        let h = Header {
            id: u16::from_be_bytes([b[0], b[1]]),
            flags: Flags::from_u16(u16::from_be_bytes([b[2], b[3]])),
            qdcount: u16::from_be_bytes([b[4], b[5]]),
            ancount: u16::from_be_bytes([b[6], b[7]]),
            nscount: u16::from_be_bytes([b[8], b[9]]),
            arcount: u16::from_be_bytes([b[10], b[11]]),
        };
        *pos += HEADER_LEN;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip_all_bits() {
        let f = Flags {
            response: true,
            opcode: Opcode::Status,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
            rcode: Rcode::Refused,
        };
        assert_eq!(Flags::from_u16(f.to_u16()), f);
    }

    #[test]
    fn z_bit_ignored() {
        let with_z = 0x0040u16;
        let f = Flags::from_u16(with_z);
        assert_eq!(f, Flags::default());
        assert_eq!(f.to_u16() & 0x0040, 0, "Z bit never re-emitted");
    }

    #[test]
    fn opcode_rcode_unknown_values_preserved() {
        assert_eq!(Opcode::from_u8(9), Opcode::Other(9));
        assert_eq!(Opcode::Other(9).to_u8(), 9);
        assert_eq!(Rcode::from_u8(11), Rcode::Other(11));
        assert_eq!(Rcode::Other(11).to_u8(), 11);
    }

    #[test]
    fn header_encode_decode_roundtrip() {
        let h = Header {
            id: 0xBEEF,
            flags: Flags {
                response: true,
                recursion_available: true,
                ..Flags::default()
            },
            qdcount: 1,
            ancount: 2,
            nscount: 0,
            arcount: 1,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut pos = 0;
        let back = Header::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, h);
        assert_eq!(pos, HEADER_LEN);
    }

    #[test]
    fn header_decode_truncated() {
        let buf = [0u8; 11];
        let mut pos = 0;
        assert!(matches!(
            Header::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn known_wire_layout() {
        // ID=0x1234, QR=1 RD=1 RA=1 RCODE=NXDOMAIN, counts 1,0,0,0.
        let h = Header {
            id: 0x1234,
            flags: Flags {
                response: true,
                recursion_desired: true,
                recursion_available: true,
                rcode: Rcode::NxDomain,
                ..Flags::default()
            },
            qdcount: 1,
            ..Header::default()
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(
            buf,
            vec![0x12, 0x34, 0x81, 0x83, 0x00, 0x01, 0, 0, 0, 0, 0, 0]
        );
    }
}
