//! detlint — the workspace determinism lint.
//!
//! Every result this reproduction publishes (K-invariant shard censuses,
//! warm-world reuse, capture-driven replay) rests on a bit-identical
//! contract: the same seed and config must produce the same bytes, on
//! every run, at every shard count. Integration suites catch violations
//! *after* they happen; detlint refuses them statically. It scans every
//! `.rs` file in the workspace with its own lexer (no dependencies — the
//! build container has no registry access) and reports determinism
//! hazards with `file:line:col` diagnostics, a per-rule summary, and a
//! machine-readable JSON mode.
//!
//! Suppression is two-level and always justified:
//! - inline: an allow comment (`detlint` + `::allow(<rule>)`) followed by
//!   `: <why>`, on the offending line or the line above it;
//! - per-crate: a `[[policy]]` entry in `detlint.toml` with a `reason`.
//!
//! An allow without a justification is itself a finding
//! (`bad-suppression`), and an allow that suppresses nothing rots loudly
//! (`unused-suppression`).

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, Policy};
pub use rules::{Rule, RULES};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One finding, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    pub message: String,
    /// `Some(origin-and-justification)` when suppressed.
    pub suppressed: Option<String>,
}

/// The result of a scan.
#[derive(Debug, Default)]
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Outcome {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.unsuppressed_count()
    }

    /// Per-rule `(unsuppressed, suppressed)` counts, every registered
    /// rule present (zeros included) so summaries line up across runs.
    pub fn per_rule(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut map: BTreeMap<&'static str, (usize, usize)> =
            RULES.iter().map(|r| (r.id, (0, 0))).collect();
        for f in &self.findings {
            if let Some(slot) = map.get_mut(f.rule.as_str()) {
                if f.suppressed.is_none() {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
        map
    }

    /// Human diagnostics + per-rule summary table.
    pub fn render_human(&self, show_suppressed: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match (&f.suppressed, show_suppressed) {
                (None, _) => {
                    out.push_str(&format!(
                        "{}:{}:{}: {}: {}\n",
                        f.file, f.line, f.col, f.rule, f.message
                    ));
                }
                (Some(why), true) => {
                    out.push_str(&format!(
                        "{}:{}:{}: {}: suppressed ({why})\n",
                        f.file, f.line, f.col, f.rule
                    ));
                }
                (Some(_), false) => {}
            }
        }
        out.push_str(&format!(
            "\ndetlint: scanned {} files\n",
            self.files_scanned
        ));
        out.push_str("  rule                  unsuppressed  suppressed\n");
        for (rule, (unsup, sup)) in self.per_rule() {
            out.push_str(&format!("  {rule:<22} {unsup:>11} {sup:>11}\n"));
        }
        let (unsup, sup) = (self.unsuppressed_count(), self.suppressed_count());
        if unsup == 0 {
            out.push_str(&format!(
                "detlint: clean — 0 unsuppressed findings ({sup} suppressed by inline allows/policy)\n"
            ));
        } else {
            out.push_str(&format!(
                "detlint: FAILED — {unsup} unsuppressed finding(s), {sup} suppressed\n"
            ));
            out.push_str(
                "  suppress a benign site with `// detlint::allow(<rule>): <justification>`\n",
            );
        }
        out
    }

    /// Machine-readable summary (stable JSON, hand-rolled — no deps).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"unsuppressed\": {},\n  \"suppressed\": {},\n",
            self.unsuppressed_count(),
            self.suppressed_count()
        ));
        out.push_str("  \"per_rule\": {");
        let per_rule = self.per_rule();
        for (i, (rule, (unsup, sup))) in per_rule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{rule}\": {{\"unsuppressed\": {unsup}, \"suppressed\": {sup}}}"
            ));
        }
        out.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"suppressed\": {}}}",
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.rule),
                json_escape(&f.message),
                match &f.suppressed {
                    Some(s) => format!("\"{}\"", json_escape(s)),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Scan one file's source text under the given config.
pub fn scan_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let raw = rules::run_rules(&lexed, cfg.is_ordered(rel));
    let dirs = rules::directives(&lexed);
    let mut used = vec![false; dirs.len()];

    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let inline = dirs.iter().enumerate().find(|(_, d)| {
            d.error.is_none() && d.target == Some(f.line) && d.rules.iter().any(|r| r == f.rule)
        });
        let suppressed = match inline {
            Some((di, d)) => {
                used[di] = true;
                Some(format!(
                    "inline allow: {}",
                    d.justification.as_deref().unwrap_or("")
                ))
            }
            None => cfg
                .policy_allowing(rel, f.rule)
                .map(|p| format!("policy `{}`: {}", p.path, p.reason)),
        };
        findings.push(Finding {
            file: rel.to_string(),
            line: f.line,
            col: f.col,
            rule: f.rule.to_string(),
            message: f.message,
            suppressed,
        });
    }
    for (d, used) in dirs.iter().zip(used) {
        if let Some(err) = &d.error {
            findings.push(Finding {
                file: rel.to_string(),
                line: d.line,
                col: d.col,
                rule: "bad-suppression".into(),
                message: format!("malformed `detlint::allow`: {err}"),
                suppressed: None,
            });
        } else if !used {
            findings.push(Finding {
                file: rel.to_string(),
                line: d.line,
                col: d.col,
                rule: "unused-suppression".into(),
                message: format!(
                    "`detlint::allow({})` suppresses nothing — remove it or move it onto the \
                     offending line",
                    d.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }
    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    findings
}

/// Recursively collect `.rs` files under `root`, in sorted (deterministic)
/// order, skipping VCS/build directories and configured excludes.
fn walk_rs(root: &Path, cfg: &Config) -> Result<Vec<PathBuf>, String> {
    fn rec(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = rel_path(root, &path);
            if cfg.is_excluded(&rel) {
                continue;
            }
            let meta =
                std::fs::symlink_metadata(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            if meta.is_dir() {
                rec(&path, root, cfg, out)?;
            } else if meta.is_file() && name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    rec(root, root, cfg, &mut out)?;
    Ok(out)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan every `.rs` file under `root`, honouring `root/detlint.toml`.
pub fn scan_workspace(root: &Path) -> Result<Outcome, String> {
    let cfg = Config::load(&root.join("detlint.toml"))?;
    let files = walk_rs(root, &cfg)?;
    scan_paths(root, &cfg, &files)
}

/// Scan an explicit file list under a config rooted at `root`.
pub fn scan_paths(root: &Path, cfg: &Config, files: &[PathBuf]) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    for path in files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        outcome.findings.extend(scan_source(&rel, &src, cfg));
        outcome.files_scanned += 1;
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            ordered: vec!["ordered".into()],
            policies: vec![Policy {
                path: "bench".into(),
                allow: vec!["wall-clock".into()],
                reason: "timing is the point".into(),
            }],
            ..Config::default()
        }
    }

    #[test]
    fn inline_allow_suppresses_and_is_used() {
        let src = "// detlint::allow(wall-clock): harness self-timing\nlet t = Instant::now();\n";
        let fs = scan_source("src/a.rs", src, &cfg());
        assert_eq!(fs.len(), 1);
        assert!(fs[0]
            .suppressed
            .as_deref()
            .unwrap()
            .contains("harness self-timing"));
    }

    #[test]
    fn policy_suppresses_whole_crate() {
        let fs = scan_source("bench/src/lib.rs", "let t = Instant::now();", &cfg());
        assert_eq!(fs.len(), 1);
        assert!(fs[0]
            .suppressed
            .as_deref()
            .unwrap()
            .contains("timing is the point"));
        // …but only the allowed rule.
        let fs = scan_source("bench/src/lib.rs", "let r = thread_rng();", &cfg());
        assert!(fs[0].suppressed.is_none());
    }

    #[test]
    fn unjustified_allow_is_a_finding() {
        let src = "// detlint::allow(wall-clock)\nlet t = Instant::now();\n";
        let fs = scan_source("src/a.rs", src, &cfg());
        // The wall-clock finding stays unsuppressed AND the directive is bad.
        assert_eq!(fs.iter().filter(|f| f.suppressed.is_none()).count(), 2);
        assert!(fs.iter().any(|f| f.rule == "bad-suppression"));
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// detlint::allow(wall-clock): stale justification\nlet x = 1;\n";
        let fs = scan_source("src/a.rs", src, &cfg());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unused-suppression");
    }

    #[test]
    fn ordered_designation_comes_from_config() {
        let src = "use std::collections::HashMap;\n";
        assert!(scan_source("free/x.rs", src, &cfg()).is_empty());
        let fs = scan_source("ordered/x.rs", src, &cfg());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unordered-iter");
    }

    #[test]
    fn wrong_rule_in_allow_does_not_suppress() {
        let src = "// detlint::allow(env-dependent): wrong rule named\nlet t = Instant::now();\n";
        let fs = scan_source("src/a.rs", src, &cfg());
        let unsup: Vec<_> = fs.iter().filter(|f| f.suppressed.is_none()).collect();
        // wall-clock unsuppressed + the directive unused.
        assert_eq!(unsup.len(), 2);
        assert!(unsup.iter().any(|f| f.rule == "wall-clock"));
        assert!(unsup.iter().any(|f| f.rule == "unused-suppression"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let src = "let t = Instant::now();\n";
        let outcome = Outcome {
            findings: scan_source("src/a.rs", src, &Config::default()),
            files_scanned: 1,
        };
        let json = outcome.render_json();
        assert!(json.contains("\"unsuppressed\": 1"));
        assert!(json.contains("\"rule\": \"wall-clock\""));
        assert!(json.contains("\"suppressed\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn human_summary_counts() {
        let src = "// detlint::allow(wall-clock): justified\nlet t = Instant::now();\nlet r = thread_rng();\n";
        let outcome = Outcome {
            findings: scan_source("src/a.rs", src, &Config::default()),
            files_scanned: 1,
        };
        let text = outcome.render_human(false);
        assert!(text.contains("FAILED — 1 unsuppressed"));
        assert!(text.contains("unseeded-rng"));
        assert_eq!(outcome.suppressed_count(), 1);
    }
}
