//! `detlint.toml` — the per-workspace policy file.
//!
//! A deliberately small TOML subset (the container has no registry
//! access, so no real TOML crate): `[section]` / `[[array-of-tables]]`
//! headers, `key = "string"`, and `key = ["a", "b", …]` arrays that may
//! span lines. Comments start at `#` outside quotes.
//!
//! ```toml
//! [scan]
//! exclude = ["crates/detlint/fixtures"]
//!
//! [ordered]
//! paths = ["crates/analysis/src"]
//!
//! [[policy]]
//! path = "crates/bench"
//! allow = ["wall-clock"]
//! reason = "benchmark harness: measuring wall time is its purpose"
//! ```

/// One per-crate (really per-path-prefix) rule allowance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    /// Workspace-relative path prefix the policy covers.
    pub path: String,
    /// Rule ids allowed under that prefix.
    pub allow: Vec<String>,
    /// Mandatory one-line justification, echoed in suppressed findings.
    pub reason: String,
}

/// Parsed policy file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes never scanned (rule fixtures, generated code).
    pub exclude: Vec<String>,
    /// Ordered-output modules: the only places `unordered-iter` applies.
    pub ordered: Vec<String>,
    /// Per-path rule allowances.
    pub policies: Vec<Policy>,
}

/// `rel` is covered by prefix `p` when equal or a path-component child.
fn covered(rel: &str, p: &str) -> bool {
    rel == p || (rel.len() > p.len() && rel.starts_with(p) && rel.as_bytes()[p.len()] == b'/')
}

impl Config {
    /// Load from a file; a missing file yields the empty default.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    pub fn is_excluded(&self, rel: &str) -> bool {
        self.exclude.iter().any(|p| covered(rel, p))
    }

    pub fn is_ordered(&self, rel: &str) -> bool {
        self.ordered.iter().any(|p| covered(rel, p))
    }

    /// The policy allowing `rule` at `rel`, if any.
    pub fn policy_allowing(&self, rel: &str, rule: &str) -> Option<&Policy> {
        self.policies
            .iter()
            .find(|p| covered(rel, &p.path) && p.allow.iter().any(|r| r == rule))
    }

    /// Parse the TOML subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Scan,
            Ordered,
            Policy,
        }
        let mut cfg = Config::default();
        let mut section = Section::None;
        let mut pending = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if pending.is_empty() && line.starts_with('[') {
                section = match line {
                    "[scan]" => Section::Scan,
                    "[ordered]" => Section::Ordered,
                    "[[policy]]" => {
                        cfg.policies.push(Policy::default());
                        Section::Policy
                    }
                    other => return Err(format!("line {}: unknown section {other}", lineno + 1)),
                };
                continue;
            }
            if !pending.is_empty() {
                pending.push(' ');
            }
            pending.push_str(line);
            if !brackets_balanced(&pending) {
                continue; // array continues on the next line
            }
            let stmt = std::mem::take(&mut pending);
            let (key, value) = stmt
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            match (&section, key) {
                (Section::Scan, "exclude") => cfg.exclude = parse_array(value)?,
                (Section::Ordered, "paths") => cfg.ordered = parse_array(value)?,
                (Section::Policy, "path") => current_policy(&mut cfg)?.path = parse_string(value)?,
                (Section::Policy, "allow") => current_policy(&mut cfg)?.allow = parse_array(value)?,
                (Section::Policy, "reason") => {
                    current_policy(&mut cfg)?.reason = parse_string(value)?
                }
                _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
            }
        }
        if !pending.is_empty() {
            return Err("unterminated array at end of file".into());
        }
        for p in &cfg.policies {
            if p.path.is_empty() {
                return Err("[[policy]] without a `path`".into());
            }
            if p.reason.is_empty() {
                return Err(format!("[[policy]] for `{}` without a `reason`", p.path));
            }
        }
        Ok(cfg)
    }
}

fn current_policy(cfg: &mut Config) -> Result<&mut Policy, String> {
    cfg.policies
        .last_mut()
        .ok_or_else(|| "key outside a [[policy]] table".into())
}

/// Cut a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `"…"` with no escape support (policy paths and reasons never need it).
fn parse_string(v: &str) -> Result<String, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))?;
    if inner.contains('"') {
        return Err(format!("stray quote inside `{v}`"));
    }
    Ok(inner.to_string())
}

/// `["a", "b", …]`, possibly already joined from several lines.
fn parse_array(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for item in split_items(inner) {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

/// Split on commas outside quotes.
fn split_items(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Brackets balanced outside quotes — complete statement test.
fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# workspace policy
[scan]
exclude = ["crates/detlint/fixtures"]

[ordered]
paths = [
    "crates/analysis/src",  # report surfaces
    "crates/scanner/src/shard.rs",
]

[[policy]]
path = "crates/bench"
allow = ["wall-clock"]
reason = "benchmark harness"

[[policy]]
path = "vendor/criterion"
allow = ["wall-clock", "env-dependent"]
reason = "vendored timing shim"
"#,
        )
        .unwrap();
        assert!(cfg.is_excluded("crates/detlint/fixtures/wall_clock.rs"));
        assert!(!cfg.is_excluded("crates/detlint/src/lib.rs"));
        assert!(cfg.is_ordered("crates/analysis/src/ranking.rs"));
        assert!(cfg.is_ordered("crates/scanner/src/shard.rs"));
        assert!(!cfg.is_ordered("crates/scanner/src/transactional.rs"));
        assert!(cfg
            .policy_allowing("crates/bench/benches/x.rs", "wall-clock")
            .is_some());
        assert!(cfg
            .policy_allowing("crates/bench/benches/x.rs", "env-dependent")
            .is_none());
        assert_eq!(
            cfg.policy_allowing("vendor/criterion/src/lib.rs", "wall-clock")
                .unwrap()
                .reason,
            "vendored timing shim"
        );
    }

    #[test]
    fn prefix_matching_respects_component_boundaries() {
        let cfg = Config {
            ordered: vec!["crates/analysis/src".into()],
            ..Config::default()
        };
        assert!(!cfg.is_ordered("crates/analysis/srcx/evil.rs"));
        assert!(cfg.is_ordered("crates/analysis/src"));
    }

    #[test]
    fn policy_requires_reason() {
        let err = Config::parse("[[policy]]\npath = \"crates/x\"\nallow = [\"wall-clock\"]\n")
            .unwrap_err();
        assert!(err.contains("without a `reason`"), "{err}");
    }

    #[test]
    fn unknown_keys_and_sections_rejected() {
        assert!(Config::parse("[bogus]\n").is_err());
        assert!(Config::parse("[scan]\ninclude = [\"x\"]\n").is_err());
    }

    #[test]
    fn missing_file_is_default() {
        let cfg = Config::load(std::path::Path::new("/nonexistent/detlint.toml")).unwrap();
        assert_eq!(cfg, Config::default());
    }
}
