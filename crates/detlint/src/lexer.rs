//! A minimal Rust lexer — just enough fidelity that string and comment
//! *contents* are never mistaken for code.
//!
//! The rule engine matches identifier/punctuation sequences, so the lexer
//! must get the hard boundaries right: raw strings (`r#"…"#` with any
//! number of hashes), byte/C strings, nested block comments, escape
//! sequences, and the `'a'`-char vs `'a`-lifetime ambiguity. It does not
//! need to classify numbers precisely or validate syntax — a file that
//! does not compile is someone else's problem.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers surface without the `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`); the
    /// contents are deliberately discarded — rules must not see them.
    Str,
    /// A character or byte-character literal.
    Char,
    /// A numeric literal.
    Num,
    /// The path separator `::`.
    Sep,
    /// Any other single punctuation character.
    Punct(char),
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// A comment, kept separately from the token stream: suppression
/// directives live in comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text after the `//` / inside the `/* */` (nested delimiters kept).
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Whether code tokens precede the comment on its starting line — a
    /// trailing directive applies to its own line, a standalone one to
    /// the next code line.
    pub trailing: bool,
}

/// A fully lexed file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Sorted, deduplicated lines that carry at least one code token.
    pub code_lines: Vec<u32>,
}

impl Lexed {
    /// First line carrying code at or after `line` (for resolving what a
    /// standalone suppression comment applies to).
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        let idx = self.code_lines.partition_point(|l| *l < line);
        self.code_lines.get(idx).copied()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    src: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.src.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consume `"…"` starting at the opening quote, honouring escapes.
    fn lex_string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char — covers \" and \\
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consume a raw string starting at the first `#` (or the quote when
    /// `hashes == 0`): `#…#"` contents `"#…#`. No escapes inside.
    fn lex_raw_string(&mut self, hashes: usize) {
        self.bump_n(hashes); // the opening #s
        self.bump(); // opening "
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (0..hashes).all(|j| self.peek(1 + j) == Some('#'));
                if closed {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime), starting at `'`.
    fn lex_quote(&mut self) -> Tok {
        self.bump(); // '
        match self.peek(0) {
            Some('\\') => {
                self.bump(); // backslash
                self.bump(); // escaped char (first of \u{…} etc.)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                Tok::Char
            }
            Some(c) if is_ident_start(c) => {
                let mut k = 1;
                while self.peek(k).map(is_ident_continue).unwrap_or(false) {
                    k += 1;
                }
                if self.peek(k) == Some('\'') {
                    self.bump_n(k + 1); // ident chars + closing quote
                    Tok::Char
                } else {
                    self.bump_n(k); // lifetime — no closing quote
                    Tok::Lifetime
                }
            }
            Some(_) => {
                self.bump(); // the literal char, e.g. '(' or '1'
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                Tok::Char
            }
            None => Tok::Char,
        }
    }

    /// Consume a numeric literal greedily (prefixes, underscores, float
    /// dots, signed exponents, type suffixes). Exact classification is
    /// irrelevant — only "a number was here" matters.
    fn lex_number(&mut self) {
        self.bump();
        loop {
            match (self.peek(0), self.peek(1)) {
                // A dot only continues the number when a digit follows —
                // `0..10` must stay a range, not a float.
                (Some('.'), Some(d)) if d.is_ascii_digit() => {
                    self.bump();
                }
                (Some(c), _) if c.is_alphanumeric() || c == '_' => {
                    let was_exp = c == 'e' || c == 'E';
                    self.bump();
                    if was_exp {
                        if let (Some('+') | Some('-'), Some(d)) = (self.peek(0), self.peek(1)) {
                            if d.is_ascii_digit() {
                                self.bump();
                            }
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Handle identifiers that are actually literal prefixes: `r"…"`,
    /// `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `cr"…"`, `b'x'`, and the raw
    /// identifier `r#ident` (stripped, so the ident itself gets lexed).
    /// Returns `None` when the position holds a plain identifier.
    fn try_prefixed_literal(&mut self) -> Option<Tok> {
        let mut k = 0;
        while self.peek(k).map(is_ident_continue).unwrap_or(false) {
            k += 1;
            if k > 2 {
                return None; // prefixes are at most two chars
            }
        }
        let word: String = (0..k).filter_map(|j| self.peek(j)).collect();
        match (word.as_str(), self.peek(k)) {
            ("r" | "b" | "c" | "br" | "cr", Some('"')) => {
                self.bump_n(k);
                if word.contains('r') {
                    self.lex_raw_string(0);
                } else {
                    self.lex_string();
                }
                Some(Tok::Str)
            }
            ("r" | "br" | "cr", Some('#')) => {
                let mut h = 0;
                while self.peek(k + h) == Some('#') {
                    h += 1;
                }
                if self.peek(k + h) == Some('"') {
                    self.bump_n(k);
                    self.lex_raw_string(h);
                    Some(Tok::Str)
                } else if word == "r" {
                    // Raw identifier `r#type`: drop the prefix and let the
                    // caller lex `type` as an ordinary identifier.
                    self.bump_n(2);
                    None
                } else {
                    None
                }
            }
            ("b", Some('\'')) => {
                self.bump(); // the b
                Some(self.lex_quote())
            }
            _ => None,
        }
    }
}

/// Lex a whole file.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        src: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let trailing = |tokens: &[Token]| tokens.last().map(|t| t.line == line).unwrap_or(false);
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                lx.bump_n(2);
                let mut text = String::new();
                while let Some(c) = lx.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    lx.bump();
                }
                let trailing = trailing(&tokens);
                comments.push(Comment {
                    text,
                    line,
                    col,
                    trailing,
                });
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                let mut text = String::new();
                loop {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            lx.bump_n(2);
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                            if depth == 0 {
                                break;
                            }
                            text.push_str("*/");
                        }
                        (Some(c), _) => {
                            text.push(c);
                            lx.bump();
                        }
                        (None, _) => break, // unterminated — tolerate
                    }
                }
                let trailing = trailing(&tokens);
                comments.push(Comment {
                    text,
                    line,
                    col,
                    trailing,
                });
            }
            '"' => {
                lx.lex_string();
                tokens.push(Token {
                    tok: Tok::Str,
                    line,
                    col,
                });
            }
            '\'' => {
                let tok = lx.lex_quote();
                tokens.push(Token { tok, line, col });
            }
            ':' if lx.peek(1) == Some(':') => {
                lx.bump_n(2);
                tokens.push(Token {
                    tok: Tok::Sep,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                lx.lex_number();
                tokens.push(Token {
                    tok: Tok::Num,
                    line,
                    col,
                });
            }
            c if is_ident_start(c) => {
                if let Some(tok) = lx.try_prefixed_literal() {
                    tokens.push(Token { tok, line, col });
                } else {
                    let word = lx.lex_ident();
                    tokens.push(Token {
                        tok: Tok::Ident(word),
                        line,
                        col,
                    });
                }
            }
            c => {
                lx.bump();
                tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                    col,
                });
            }
        }
    }
    let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    code_lines.dedup(); // tokens are emitted in line order
    Lexed {
        tokens,
        comments,
        code_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_string_contents_are_opaque() {
        assert_eq!(idents(r#"let x = "Instant::now()";"#), ["let", "x"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        // The embedded \" must not terminate the literal early.
        assert_eq!(idents(r#"let s = "a \" Instant::now \\";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"thread_rng() \"quoted\" inside\"#; now();";
        assert_eq!(idents(src), ["let", "s", "now"]);
    }

    #[test]
    fn raw_string_hash_count_must_match() {
        // `"#` inside an `r##"…"##` literal is still literal.
        let src = "let s = r##\"x \"# SystemTime::now \"##; done";
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(
            idents(r#"let b = b"env::var"; let c = c"x";"#),
            ["let", "b", "let", "c"]
        );
        assert_eq!(idents("let b = br#\"thread::spawn\"#;"), ["let", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* thread_rng() */ still comment */ real_code();";
        assert_eq!(idents(src), ["real_code"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("thread_rng"));
    }

    #[test]
    fn line_comment_captured_with_trailing_flag() {
        let lexed = lex("let a = 1; // trailing note\n// standalone\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.next_code_line(2), Some(3));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks: Vec<Tok> = lex("'a' 'static x<'b> '\\n' '_'")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(
            toks,
            vec![
                Tok::Char,
                Tok::Lifetime,
                Tok::Ident("x".into()),
                Tok::Punct('<'),
                Tok::Lifetime,
                Tok::Punct('>'),
                Tok::Char,
                Tok::Char,
            ]
        );
    }

    #[test]
    fn char_escape_with_embedded_quote() {
        // '\'' is a char literal; the ident after it must still lex.
        assert_eq!(idents(r"let c = '\''; after();"), ["let", "c", "after"]);
    }

    #[test]
    fn raw_identifier_is_stripped() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn byte_char_literal() {
        assert_eq!(idents("let x = b'a'; next"), ["let", "x", "next"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks: Vec<Tok> = lex("0..10").tokens.into_iter().map(|t| t.tok).collect();
        assert_eq!(
            toks,
            vec![Tok::Num, Tok::Punct('.'), Tok::Punct('.'), Tok::Num]
        );
    }

    #[test]
    fn float_and_exponent_literals() {
        let toks: Vec<Tok> = lex("1e-9 1.5f64 0xFF")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(toks, vec![Tok::Num, Tok::Num, Tok::Num]);
    }

    #[test]
    fn path_separator_positions() {
        let lexed = lex("std::time::Instant::now()");
        let kinds: Vec<Tok> = lexed.tokens.iter().map(|t| t.tok.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("std".into()),
                Tok::Sep,
                Tok::Ident("time".into()),
                Tok::Sep,
                Tok::Ident("Instant".into()),
                Tok::Sep,
                Tok::Ident("now".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
            ]
        );
        assert_eq!(lexed.tokens[6].line, 1);
    }
}
