//! CLI: `cargo run -p detlint -- --workspace` (or the `cargo detlint`
//! alias). Exits 0 when the tree carries zero unsuppressed findings,
//! 1 on findings, 2 on usage or I/O errors.

use std::path::PathBuf;

const USAGE: &str = "\
detlint — workspace determinism lint

USAGE:
    detlint --workspace [--json] [--suppressed] [--root <dir>]
    detlint [--root <dir>] <file.rs>…

    --workspace    scan every .rs file under the workspace root
    --json         machine-readable output instead of diagnostics
    --suppressed   also print suppressed findings (human mode)
    --root <dir>   workspace root (default: nearest ancestor with a
                   detlint.toml, else the current directory)
";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut workspace = false;
    let mut json = false;
    let mut show_suppressed = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--suppressed" => show_suppressed = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path\n\n{USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`\n\n{USAGE}");
                return 2;
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("error: pass --workspace or at least one file\n\n{USAGE}");
        return 2;
    }
    if workspace && !files.is_empty() {
        eprintln!("error: --workspace and explicit files are mutually exclusive\n\n{USAGE}");
        return 2;
    }

    let root = root.unwrap_or_else(find_root);
    let outcome = if workspace {
        detlint::scan_workspace(&root)
    } else {
        detlint::Config::load(&root.join("detlint.toml"))
            .and_then(|cfg| detlint::scan_paths(&root, &cfg, &files))
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("detlint: error: {e}");
            return 2;
        }
    };

    if json {
        print!("{}", outcome.render_json());
    } else {
        print!("{}", outcome.render_human(show_suppressed));
    }
    if outcome.unsuppressed_count() == 0 {
        0
    } else {
        1
    }
}

/// Nearest ancestor of the current directory holding a `detlint.toml`
/// (the workspace root), else the current directory itself.
fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("detlint.toml").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}
