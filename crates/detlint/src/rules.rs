//! The determinism rule registry and the token-level matchers.
//!
//! Every rule is conservative: it over-approximates (a `.spawn(` call on
//! any receiver is flagged, every `HashMap` token in an ordered-output
//! module is flagged) and relies on justified suppressions for the rare
//! benign site. That bias is deliberate — a silent miss costs a flaky
//! determinism suite weeks later; a false positive costs one comment.

use crate::lexer::{Comment, Lexed, Tok};

/// A registered rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
}

/// The rule table. Doc tables are unit-tested against this list, so a
/// new rule must be registered here and documented in README.md.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "Instant::now / SystemTime::now — real time leaking into simulated time",
    },
    Rule {
        id: "unseeded-rng",
        summary:
            "thread_rng / from_entropy / OsRng / rand::random — OS entropy instead of a seeded RNG",
    },
    Rule {
        id: "unordered-iter",
        summary: "HashMap / HashSet inside a designated ordered-output module",
    },
    Rule {
        id: "env-dependent",
        summary: "env::var* / option_env! — behaviour keyed to the process environment",
    },
    Rule {
        id: "ad-hoc-spawn",
        summary: "thread::spawn / .spawn() outside the sanctioned run_sharded worker pool",
    },
    Rule {
        id: "derive-hash-key",
        summary: "floating-point key type in a map or set",
    },
    Rule {
        id: "fault-draw",
        summary: "gen_bool / gen_ratio — ad-hoc probability draw outside the netsim::fault plane",
    },
    Rule {
        id: "bad-suppression",
        summary: "detlint::allow without a justification, or naming an unknown rule",
    },
    Rule {
        id: "unused-suppression",
        summary: "detlint::allow that suppresses no finding",
    },
];

/// Is `id` a registered rule?
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One raw (pre-suppression) finding inside a single file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Run all syntactic rules over one lexed file. `ordered` enables the
/// `unordered-iter` rule (designated report/merge surfaces only).
pub fn run_rules(lexed: &Lexed, ordered: bool) -> Vec<RawFinding> {
    let t = &lexed.tokens;
    let ident = |k: usize| match t.get(k).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |k: usize, c: char| matches!(t.get(k).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let sep = |k: usize| matches!(t.get(k).map(|t| &t.tok), Some(Tok::Sep));
    // `name` is the final path segment at index i; is the previous
    // segment one of `heads` (e.g. `Instant` in `std::time::Instant::now`)?
    let path_head = |i: usize, heads: &[&str]| -> bool {
        i >= 2 && sep(i - 1) && ident(i - 2).map(|h| heads.contains(&h)).unwrap_or(false)
    };

    let mut out: Vec<RawFinding> = Vec::new();
    let mut push = |rule: &'static str, i: usize, message: String| {
        out.push(RawFinding {
            rule,
            line: t[i].line,
            col: t[i].col,
            message,
        });
    };

    for i in 0..t.len() {
        let Some(name) = ident(i) else { continue };
        match name {
            "now" if path_head(i, &["Instant", "SystemTime"]) => {
                let head = ident(i - 2).unwrap_or("?");
                push(
                    "wall-clock",
                    i - 2,
                    format!("`{head}::now()` reads the wall clock; derive time from `SimTime`"),
                );
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                push(
                    "unseeded-rng",
                    i,
                    format!("`{name}` draws OS entropy; use the vendored seeded `SmallRng`"),
                );
            }
            "random" if path_head(i, &["rand"]) => {
                push(
                    "unseeded-rng",
                    i - 2,
                    "`rand::random` draws OS entropy; use the vendored seeded `SmallRng`".into(),
                );
            }
            "var" | "var_os" | "vars" | "vars_os" if path_head(i, &["env"]) => {
                push(
                    "env-dependent",
                    i - 2,
                    format!("`env::{name}` makes behaviour depend on the process environment"),
                );
            }
            "option_env" if punct(i + 1, '!') => {
                push(
                    "env-dependent",
                    i,
                    "`option_env!` bakes the build environment into behaviour".into(),
                );
            }
            "gen_bool" | "gen_ratio" => {
                push(
                    "fault-draw",
                    i,
                    format!(
                        "`{name}` draws a probability ad hoc; packet-fate decisions must be \
                         flow-keyed through `netsim::fault` (`FaultPlan::decide`) so a lossy \
                         run stays bit-identical at any shard count"
                    ),
                );
            }
            "spawn" if path_head(i, &["thread"]) => {
                push(
                    "ad-hoc-spawn",
                    i - 2,
                    "`thread::spawn` outside the sanctioned `inetgen::run_sharded` worker pool"
                        .into(),
                );
            }
            "spawn" if i >= 1 && punct(i - 1, '.') && punct(i + 1, '(') => {
                push(
                    "ad-hoc-spawn",
                    i,
                    "`.spawn()` outside the sanctioned `inetgen::run_sharded` worker pool".into(),
                );
            }
            "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet" => {
                if ordered && (name == "HashMap" || name == "HashSet") {
                    push(
                        "unordered-iter",
                        i,
                        format!(
                            "`{name}` in an ordered-output module; its iteration order can leak \
                             into a report/merge surface — use BTreeMap/BTreeSet or sort before \
                             emitting"
                        ),
                    );
                }
                // Float key check: `Map<f64, …>` / `Map::<f64, …>`,
                // skipping references and lifetimes after the `<`.
                let mut j = i + 1;
                if sep(j) {
                    j += 1; // turbofish
                }
                if punct(j, '<') {
                    j += 1;
                    while punct(j, '&') || matches!(t.get(j).map(|t| &t.tok), Some(Tok::Lifetime)) {
                        j += 1;
                    }
                    if let Some(key @ ("f32" | "f64")) = ident(j) {
                        push(
                            "derive-hash-key",
                            i,
                            format!(
                                "floating-point key `{key}` in `{name}`; NaN and signed zero \
                                 make float keys a determinism hazard"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// A parsed suppression directive: the allow marker plus a parenthesised
/// rule list and a mandatory `: justification`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub line: u32,
    pub col: u32,
    /// Rule ids named in the parentheses.
    pub rules: Vec<String>,
    /// The mandatory free-text justification after the rule list.
    pub justification: Option<String>,
    /// The code line the directive applies to (its own line when the
    /// comment trails code; otherwise the next line carrying code).
    pub target: Option<u32>,
    /// Parse problem, reported as a `bad-suppression` finding.
    pub error: Option<String>,
}

/// Extract every suppression directive from a file's comments.
pub fn directives(lexed: &Lexed) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("detlint::allow") {
            rest = &rest[pos + "detlint::allow".len()..];
            out.push(parse_directive(c, rest, lexed));
        }
    }
    out
}

fn parse_directive(c: &Comment, after_allow: &str, lexed: &Lexed) -> Directive {
    let target = if c.trailing {
        Some(c.line)
    } else {
        // `>= line` also covers a block-comment directive with code
        // after it on the same line.
        lexed.next_code_line(c.line)
    };
    let mut d = Directive {
        line: c.line,
        col: c.col,
        rules: Vec::new(),
        justification: None,
        target,
        error: None,
    };
    let Some(open) = after_allow.strip_prefix('(') else {
        d.error = Some("expected `(` after `detlint::allow`".into());
        return d;
    };
    let Some(close) = open.find(')') else {
        d.error = Some("unclosed `(` in `detlint::allow`".into());
        return d;
    };
    for id in open[..close].split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if !is_rule(id) {
            d.error = Some(format!("unknown rule `{id}`"));
        }
        d.rules.push(id.to_string());
    }
    if d.rules.is_empty() && d.error.is_none() {
        d.error = Some("empty rule list".into());
    }
    // The justification is mandatory: `): <why>` (or an em/en dash).
    let after = open[close + 1..].trim_start();
    let just = after
        .strip_prefix(':')
        .or_else(|| after.strip_prefix('—'))
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .map(str::trim)
        .filter(|s| !s.is_empty());
    match just {
        Some(text) => d.justification = Some(text.to_string()),
        None if d.error.is_none() => {
            d.error =
                Some("missing justification — write `// detlint::allow(<rule>): <why>`".into());
        }
        None => {}
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_on(src: &str, ordered: bool) -> Vec<(String, u32)> {
        run_rules(&lex(src), ordered)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn wall_clock_both_clocks() {
        let found = rules_on(
            "let a = std::time::Instant::now();\nlet b = SystemTime::now();",
            false,
        );
        assert_eq!(
            found,
            vec![("wall-clock".to_string(), 1), ("wall-clock".to_string(), 2)]
        );
    }

    #[test]
    fn wall_clock_inside_string_is_ignored() {
        assert!(rules_on(r#"let s = "Instant::now()";"#, false).is_empty());
        assert!(rules_on("// Instant::now() in prose\nlet x = 1;", false).is_empty());
    }

    #[test]
    fn unseeded_rng_variants() {
        let found = rules_on(
            "let r = thread_rng();\nlet s = SmallRng::from_entropy();\nlet v: u8 = rand::random();",
            false,
        );
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|(r, _)| r == "unseeded-rng"));
    }

    #[test]
    fn seeded_rng_is_fine() {
        assert!(rules_on("let r = SmallRng::seed_from_u64(7);", false).is_empty());
    }

    #[test]
    fn fault_draw_variants() {
        let found = rules_on(
            "if rng.gen_bool(0.1) { drop(pkt); }\nlet dup = rng.gen_ratio(1, 20);",
            false,
        );
        assert_eq!(
            found,
            vec![("fault-draw".to_string(), 1), ("fault-draw".to_string(), 2)]
        );
    }

    #[test]
    fn flow_keyed_fault_decision_is_fine() {
        assert!(rules_on("let v = plan.decide(&key, country, kind);", false).is_empty());
        assert!(rules_on(r#"let s = "gen_bool in prose";"#, false).is_empty());
    }

    #[test]
    fn env_dependent_paths() {
        let found = rules_on(
            "let a = std::env::var(\"X\");\nlet b = env::var_os(\"Y\");\nlet c = option_env!(\"Z\");",
            false,
        );
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|(r, _)| r == "env-dependent"));
        // args/temp_dir are not environment *values* — unmatched.
        assert!(rules_on("let a = std::env::args();", false).is_empty());
    }

    #[test]
    fn spawn_paths_and_methods() {
        let found = rules_on("std::thread::spawn(|| {});\nscope.spawn(|| {});", false);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|(r, _)| r == "ad-hoc-spawn"));
        // A field or path named spawn without a call is not flagged.
        assert!(rules_on("let spawn = 3; use x::spawn;", false).is_empty());
    }

    #[test]
    fn unordered_iter_only_in_ordered_modules() {
        let src = "use std::collections::HashMap;\nlet m: HashSet<u32> = HashSet::new();";
        assert!(rules_on(src, false).is_empty());
        let found = rules_on(src, true);
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|(r, _)| r == "unordered-iter"));
    }

    #[test]
    fn float_keys_flagged_everywhere() {
        let found = rules_on(
            "let a: HashMap<f64, u32> = HashMap::new();\nlet b = BTreeMap::<f32, ()>::new();",
            false,
        );
        let floats: Vec<_> = found
            .iter()
            .filter(|(r, _)| r == "derive-hash-key")
            .collect();
        assert_eq!(floats.len(), 2);
        // Value-position floats are fine.
        assert!(rules_on("let c: BTreeMap<u32, f64> = BTreeMap::new();", false).is_empty());
    }

    #[test]
    fn directive_parsing_with_justification() {
        let lexed = lex(
            "// detlint::allow(wall-clock): bench harness measures wall time\nlet t = Instant::now();",
        );
        let ds = directives(&lexed);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rules, vec!["wall-clock"]);
        assert_eq!(ds[0].target, Some(2));
        assert!(ds[0].error.is_none());
        assert_eq!(
            ds[0].justification.as_deref(),
            Some("bench harness measures wall time")
        );
    }

    #[test]
    fn directive_without_justification_is_an_error() {
        let lexed = lex("// detlint::allow(wall-clock)\nlet t = Instant::now();");
        let ds = directives(&lexed);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].error.as_deref().unwrap().contains("justification"));
    }

    #[test]
    fn directive_with_unknown_rule_is_an_error() {
        let lexed = lex("// detlint::allow(not-a-rule): because\nlet x = 1;");
        let ds = directives(&lexed);
        assert!(ds[0].error.as_deref().unwrap().contains("unknown rule"));
    }

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let lexed =
            lex("let t = Instant::now(); // detlint::allow(wall-clock): timing shim internals");
        let ds = directives(&lexed);
        assert_eq!(ds[0].target, Some(1));
    }

    #[test]
    fn standalone_directive_skips_comment_lines() {
        let lexed = lex(
            "// detlint::allow(wall-clock): the next code line, two comment\n// lines down, is the target\nlet t = Instant::now();",
        );
        let ds = directives(&lexed);
        assert_eq!(ds[0].target, Some(3));
    }

    #[test]
    fn multi_rule_directive() {
        let lexed =
            lex("// detlint::allow(wall-clock, env-dependent): harness plumbing\nlet x = 1;");
        let ds = directives(&lexed);
        assert_eq!(ds[0].rules, vec!["wall-clock", "env-dependent"]);
        assert!(ds[0].error.is_none());
    }
}
