//! Fixture: hash collections inside an ordered-output module (this file
//! is designated `[ordered]` by the fixture-local detlint.toml).

use std::collections::{HashMap, HashSet};

fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for x in xs {
        *counts.entry(*x).or_insert(0) += 1;
        seen.insert(*x);
    }
    counts.into_iter().collect() // iteration order leaks into the report
}
