//! Fixture: hazard-shaped text in places the lexer must treat as opaque.
//! detlint must report ZERO findings here.

fn strings() -> Vec<String> {
    vec![
        "Instant::now()".to_string(),
        "std::env::var(\"HOME\")".to_string(),
        r#"thread_rng() and "HashMap" in a raw string"#.to_string(),
        r##"nested r#"SystemTime::now()"# raw"##.to_string(),
        "escaped \" then thread::spawn(".to_string(),
    ]
}

/* block comment: Instant::now()
   /* nested: std::env::var_os("X") and from_entropy() */
   still inside: HashMap::new()
*/

// line comment: SystemTime::now() is fine here (not a directive)

fn lifetimes_vs_chars<'a>(x: &'a str) -> (char, &'a str) {
    let c = 'a';
    let newline = '\n';
    let quote = '\'';
    let _ = (newline, quote);
    (c, x)
}

fn byte_strings() -> (&'static [u8], u8) {
    (b"Instant::now()", b'x')
}
