//! Fixture: every hazard carries a justified allow — detlint must exit 0.

fn profile() -> std::time::Duration {
    // detlint::allow(wall-clock): fixture exercising a justified inline
    // suppression on the line below.
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

fn switch() -> bool {
    std::env::var_os("X").is_some() // detlint::allow(env-dependent): trailing-comment form
}
