//! Fixture: wall-clock reads that would break bit-identical replay.

use std::time::{Instant, SystemTime};

fn elapsed() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}
