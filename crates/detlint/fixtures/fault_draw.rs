//! Fixture: packet fate decided by sequential RNG draws instead of the
//! flow-keyed fault plane. The draw order depends on event order, so a
//! lossy run stops being bit-identical across shard counts.

fn deliver(rng: &mut SmallRng, pkt: Packet) {
    if rng.gen_bool(0.05) {
        return; // dropped
    }
    if rng.gen_ratio(1, 50) {
        duplicate(pkt.clone());
    }
    forward(pkt);
}
