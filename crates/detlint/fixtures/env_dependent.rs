//! Fixture: behaviour keyed off the process environment.

fn mode() -> bool {
    std::env::var_os("SOME_SWITCH").is_some()
}

fn path() -> String {
    std::env::var("SOME_PATH").unwrap_or_default()
}

fn build_tag() -> Option<&'static str> {
    option_env!("SOME_TAG")
}
