//! Fixture: floating-point map keys (NaN-hostile, platform-rounding
//! sensitive — a census keyed this way cannot be bit-identical).

use std::collections::{BTreeMap, HashMap};

fn by_latency() -> HashMap<f64, u32> {
    HashMap::new()
}

fn by_share(shares: &[(f32, u32)]) -> BTreeMap<f32, u32> {
    shares.iter().copied().collect::<BTreeMap<f32, u32>>()
}
