//! Fixture: threads spawned outside the sanctioned worker pool.

fn fire_and_forget() {
    std::thread::spawn(|| {
        println!("nondeterministic interleaving");
    });
}

fn scoped(scope: &std::thread::Scope<'_, '_>) {
    scope.spawn(|| 42);
}
