//! Fixture: RNGs seeded from OS entropy instead of the experiment config.

fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

fn reseed() -> SmallRng {
    SmallRng::from_entropy()
}

fn sugar() -> f64 {
    rand::random()
}
