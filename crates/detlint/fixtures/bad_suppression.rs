//! Fixture: broken suppression directives — each is itself a finding.

fn unjustified() -> std::time::Duration {
    // detlint::allow(wall-clock)
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

fn unknown_rule() -> bool {
    // detlint::allow(no-such-rule): the rule id does not exist
    std::env::var_os("X").is_some()
}

fn stale() -> u32 {
    // detlint::allow(wall-clock): nothing on the next line trips this rule
    41 + 1
}
