//! README ↔ rule-registry sync: the "Correctness tooling" table must
//! list exactly the registered rule ids — no phantom docs, no
//! undocumented rules.

use std::collections::BTreeSet;

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    std::fs::read_to_string(path).expect("README.md at the workspace root")
}

/// Rule ids from the README table: rows of the form ``| `rule-id` | … |``
/// inside the "Correctness tooling" section.
fn documented_rules(readme: &str) -> BTreeSet<String> {
    let section = readme
        .split("## Correctness tooling")
        .nth(1)
        .expect("README has a Correctness tooling section")
        .split("\n## ")
        .next()
        .unwrap();
    section
        .lines()
        .filter_map(|line| {
            let cell = line.strip_prefix("| `")?;
            let id = cell.split('`').next()?;
            Some(id.to_string())
        })
        .collect()
}

#[test]
fn readme_table_matches_rule_registry() {
    let documented = documented_rules(&readme());
    let registered: BTreeSet<String> = detlint::RULES.iter().map(|r| r.id.to_string()).collect();
    assert!(!registered.is_empty(), "rule registry must not be empty");
    let phantom: Vec<_> = documented.difference(&registered).collect();
    let undocumented: Vec<_> = registered.difference(&documented).collect();
    assert!(
        phantom.is_empty() && undocumented.is_empty(),
        "README table out of sync with detlint::RULES — \
         documented-but-unregistered: {phantom:?}, \
         registered-but-undocumented: {undocumented:?}"
    );
}

#[test]
fn every_rule_has_a_summary() {
    for rule in detlint::RULES {
        assert!(
            !rule.summary.trim().is_empty(),
            "rule `{}` needs a summary (it is shown in diagnostics)",
            rule.id
        );
    }
}
