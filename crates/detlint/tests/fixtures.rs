//! End-to-end CLI runs against the seeded fixture violations: one test
//! per rule asserts a non-zero exit and the rule id in the diagnostics.

use std::path::PathBuf;
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Run the detlint binary over one fixture file with the fixtures dir as
/// root (its local detlint.toml marks `unordered_iter.rs` as ordered).
fn run_on(fixture: &str) -> (i32, String) {
    let root = fixtures_dir();
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--root")
        .arg(&root)
        .arg(root.join(fixture))
        .output()
        .expect("detlint binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

fn assert_flags(fixture: &str, rule: &str) {
    let (code, text) = run_on(fixture);
    assert_eq!(code, 1, "{fixture} must fail the lint:\n{text}");
    assert!(
        text.contains(&format!(" {rule}: ")),
        "{fixture} must report `{rule}`:\n{text}"
    );
}

#[test]
fn wall_clock_fixture_fails() {
    assert_flags("wall_clock.rs", "wall-clock");
}

#[test]
fn unseeded_rng_fixture_fails() {
    assert_flags("unseeded_rng.rs", "unseeded-rng");
}

#[test]
fn unordered_iter_fixture_fails() {
    assert_flags("unordered_iter.rs", "unordered-iter");
}

#[test]
fn env_dependent_fixture_fails() {
    assert_flags("env_dependent.rs", "env-dependent");
}

#[test]
fn ad_hoc_spawn_fixture_fails() {
    assert_flags("ad_hoc_spawn.rs", "ad-hoc-spawn");
}

#[test]
fn derive_hash_key_fixture_fails() {
    assert_flags("derive_hash_key.rs", "derive-hash-key");
}

#[test]
fn fault_draw_fixture_fails() {
    assert_flags("fault_draw.rs", "fault-draw");
}

#[test]
fn bad_suppression_fixture_fails() {
    assert_flags("bad_suppression.rs", "bad-suppression");
    // The same fixture carries a stale-but-well-formed allow: it must
    // surface as unused-suppression, and a broken directive must not
    // suppress the hazard it sits on.
    let (_, text) = run_on("bad_suppression.rs");
    assert!(text.contains(" unused-suppression: "), "{text}");
    assert!(text.contains(" wall-clock: "), "{text}");
}

#[test]
fn suppressed_fixture_is_clean() {
    let (code, text) = run_on("suppressed_clean.rs");
    assert_eq!(code, 0, "justified allows must silence the lint:\n{text}");
    assert!(text.contains("clean"), "{text}");
}

#[test]
fn lexer_tricky_fixture_is_clean() {
    let (code, text) = run_on("lexer_tricky.rs");
    assert_eq!(
        code, 0,
        "hazards inside strings/comments must not fire:\n{text}"
    );
}

#[test]
fn json_mode_reports_fixture_findings() {
    let root = fixtures_dir();
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--root")
        .arg(&root)
        .arg("--json")
        .arg(root.join("wall_clock.rs"))
        .output()
        .expect("detlint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"schema\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"wall-clock\""), "{json}");
    assert!(json.contains("\"file\": \"wall_clock.rs\""), "{json}");
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .output()
        .expect("detlint binary runs");
    assert_eq!(out.status.code(), Some(2), "no input is a usage error");
}
