//! The lint eats its own dog food: the real workspace must scan clean.
//! This is the tier-1 guard that keeps the zero-findings state from
//! rotting between CI runs.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/detlint/../.. — anchored to the source tree, not the cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_scans_clean() {
    let root = workspace_root();
    assert!(
        root.join("detlint.toml").is_file(),
        "workspace policy file present at {}",
        root.display()
    );
    let outcome = detlint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(
        outcome.files_scanned > 50,
        "the walk must actually cover the workspace (saw {} files)",
        outcome.files_scanned
    );
    let unsuppressed: Vec<_> = outcome
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .collect();
    assert!(
        unsuppressed.is_empty(),
        "workspace must be finding-free; fix or justify:\n{:#?}",
        unsuppressed
    );
}

#[test]
fn workspace_suppressions_all_used() {
    // scan_source already reports stale inline allows as findings; this
    // asserts the workspace-level policy entries pull their weight too —
    // every [[policy]] rule must actually suppress something.
    let root = workspace_root();
    let outcome = detlint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(
        outcome.findings.iter().any(|f| f.suppressed.is_some()),
        "policies exist, so suppressed findings must exist — otherwise \
         detlint.toml carries dead policy"
    );
}
