//! Consistency checks between a generated population and its calibration
//! targets — the generator's own quality control.

use crate::build::{GroundTruth, PlantedClass};
use crate::config::GenConfig;
use crate::countries::by_code;

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// What was checked.
    pub what: String,
    /// Target value (scaled).
    pub expected: f64,
    /// Observed value.
    pub observed: f64,
}

/// Compare planted counts against scaled calibration targets. Tolerance is
/// relative (e.g. `0.25` = ±25 %), floored at `min_abs` for small counts
/// where probabilistic rounding dominates.
pub fn check_marginals(
    truth: &GroundTruth,
    config: &GenConfig,
    tolerance: f64,
    min_abs: f64,
) -> Vec<Deviation> {
    let mut deviations = Vec::new();
    let scale = f64::from(config.scale);
    let mut check = |what: String, expected_full: f64, observed: f64| {
        let expected = expected_full / scale;
        let allowed = (expected * tolerance).max(min_abs);
        if (observed - expected).abs() > allowed {
            deviations.push(Deviation {
                what,
                expected,
                observed,
            });
        }
    };

    let by_country_t = truth.count_by_country(PlantedClass::TransparentForwarder);
    let by_country_r = truth.count_by_country(PlantedClass::RecursiveForwarder);
    for code in &truth.countries {
        let profile = by_code(code).expect("planted country is in the table");
        check(
            format!("{code} transparent"),
            f64::from(profile.transparent),
            *by_country_t.get(code).unwrap_or(&0) as f64,
        );
        check(
            format!("{code} recursive forwarders"),
            f64::from(profile.recursive_forwarders()),
            *by_country_r.get(code).unwrap_or(&0) as f64,
        );
    }

    let total_transparent: f64 = truth.count(PlantedClass::TransparentForwarder) as f64;
    let expected_transparent: f64 = truth
        .countries
        .iter()
        .map(|c| f64::from(by_code(c).expect("in table").transparent))
        .sum();
    check(
        "global transparent".to_string(),
        expected_transparent,
        total_transparent,
    );

    deviations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::generate;

    #[test]
    fn generated_population_matches_targets() {
        let config = GenConfig::test_small();
        let internet = generate(&config);
        let deviations = check_marginals(&internet.truth, &config, 0.35, 8.0);
        assert!(
            deviations.is_empty(),
            "population off target: {:#?}",
            deviations.iter().take(10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::test_small();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.truth.hosts.len(), b.truth.hosts.len());
        assert_eq!(a.targets, b.targets);
        for (x, y) in a.truth.hosts.iter().zip(&b.truth.hosts) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.class, y.class);
            assert_eq!(x.resolver_target, y.resolver_target);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::test_small());
        let b = generate(&GenConfig {
            seed: 7,
            ..GenConfig::test_small()
        });
        assert_ne!(a.targets, b.targets);
    }

    #[test]
    fn class_shares_roughly_match_table1() {
        let internet = generate(&GenConfig::test_small());
        let t = internet.truth.count(PlantedClass::TransparentForwarder) as f64;
        let r = internet.truth.count(PlantedClass::RecursiveForwarder) as f64;
        let v = internet.truth.count(PlantedClass::RecursiveResolver) as f64;
        let total = t + r + v;
        assert!(total > 500.0, "population too small: {total}");
        let t_share = t / total;
        let r_share = r / total;
        assert!(
            (0.20..0.33).contains(&t_share),
            "transparent share {t_share}"
        );
        assert!((0.62..0.80).contains(&r_share), "recursive share {r_share}");
    }

    #[test]
    fn geo_covers_all_planted_hosts() {
        let internet = generate(&GenConfig::test_small());
        let mut mapped = 0usize;
        for h in &internet.truth.hosts {
            if let Some(asn) = internet.geo.asn_of(h.ip) {
                assert_eq!(asn, h.asn, "geo must agree with ground truth for {}", h.ip);
                assert_eq!(internet.geo.country_of_asn(asn), Some(h.country));
                mapped += 1;
            }
        }
        let coverage = mapped as f64 / internet.truth.hosts.len() as f64;
        assert!(coverage > 0.99, "coverage {coverage} (paper: 99.9 %)");
        assert!(coverage < 1.0, "the 0.1 % Routeviews gap must exist");
    }

    #[test]
    fn targets_include_duds() {
        let internet = generate(&GenConfig::test_small());
        let duds = internet
            .targets
            .iter()
            .filter(|t| t.octets()[0] == 170)
            .count();
        assert!(duds > 0, "dud targets must be mixed in");
        assert!(internet.targets.len() > internet.truth.hosts.len());
    }
}
