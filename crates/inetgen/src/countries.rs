//! Per-country calibration targets, distilled from the paper.
//!
//! Sources:
//! * Table 5 — top-20 countries by #ODNS (this work vs Shadowserver);
//! * Figure 4 — top-50 countries by transparent forwarders, with the
//!   number of ASes hosting them and emerging-market flags;
//! * Figure 5 — per-country resolver-project mix behind transparent
//!   forwarders;
//! * Table 4 — "other"-share structure: number of local resolvers vs
//!   indirect consolidation through forwarding chains;
//! * §4.2/§6 — global marginals: 2.125 M ODNS = 26 % transparent + 72 %
//!   recursive forwarders + 2 % recursive resolvers; top-10 countries hold
//!   ~90 % of transparent forwarders; ~25 % of ODNS countries host none.
//!
//! Where the paper gives only a figure (no table), values are read off the
//! plots and reconciled so the global marginals hold; EXPERIMENTS.md
//! records every such approximation. The *shape* of the distributions is
//! what the reproduction must preserve, not the absolute counts.

/// World region, used for topology placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South and Central America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia and the Middle East.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

impl Region {
    /// All regions.
    pub fn all() -> [Region; 6] {
        [
            Region::NorthAmerica,
            Region::SouthAmerica,
            Region::Europe,
            Region::Asia,
            Region::Africa,
            Region::Oceania,
        ]
    }

    /// Dense index (for regional-transit lookup).
    pub fn index(self) -> usize {
        match self {
            Region::NorthAmerica => 0,
            Region::SouthAmerica => 1,
            Region::Europe => 2,
            Region::Asia => 3,
            Region::Africa => 4,
            Region::Oceania => 5,
        }
    }
}

/// Percent shares of the four public resolver projects among a country's
/// transparent forwarders (Figure 5); the remainder is "other".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverMix {
    /// Google share (%).
    pub google: u8,
    /// Cloudflare share (%).
    pub cloudflare: u8,
    /// Quad9 share (%).
    pub quad9: u8,
    /// OpenDNS share (%).
    pub opendns: u8,
}

impl ResolverMix {
    /// The "other" remainder (%).
    pub fn other(&self) -> u8 {
        100u8.saturating_sub(self.google + self.cloudflare + self.quad9 + self.opendns)
    }
}

/// Structure of the "other" share (Table 4): how many country-local open
/// resolvers absorb it, and which percentage of it travels through
/// forwarding chains that end at a big-4 project (indirect consolidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtherProfile {
    /// Number of local open resolvers (Turkey: effectively 1; "1 to 10
    /// local resolvers", §4.2).
    pub local_resolvers: u8,
    /// Percent of "other" responses whose `A_resolver` maps to a big-4 ASN
    /// (Table 4's indirect-consolidation column).
    pub indirect_pct: u8,
}

/// One country's calibration targets (full-scale counts).
#[derive(Debug, Clone, Copy)]
pub struct CountryProfile {
    /// ISO-alpha-3 code as displayed in the figures.
    pub code: &'static str,
    /// Topological region.
    pub region: Region,
    /// Emerging-market flag (Figure 4 asterisks).
    pub emerging: bool,
    /// ASes hosting transparent forwarders (Figure 4 parentheses).
    pub as_count: u16,
    /// Total ODNS components found by the study's method.
    pub odns_total: u32,
    /// Transparent forwarders thereof.
    pub transparent: u32,
    /// Recursive resolvers thereof.
    pub resolvers: u32,
    /// What Shadowserver reports for this country (Table 5; for countries
    /// outside it: `odns_total - transparent`).
    pub shadow_total: u32,
    /// Resolver-project mix of the transparent forwarders.
    pub mix: ResolverMix,
    /// Structure of the "other" share.
    pub other: OtherProfile,
}

impl CountryProfile {
    /// Recursive forwarders = total − transparent − resolvers.
    pub fn recursive_forwarders(&self) -> u32 {
        self.odns_total
            .saturating_sub(self.transparent + self.resolvers)
    }

    /// Hosts whose responses are manipulated in-path: counted by
    /// Shadowserver (single-record check) but discarded by the study's
    /// strict sanitization. Derived so the emulated Shadowserver pass
    /// reproduces Table 5: `shadow ≈ (total − transparent) + manipulated`.
    pub fn manipulated(&self) -> u32 {
        self.shadow_total
            .saturating_sub(self.odns_total.saturating_sub(self.transparent))
    }

    /// Share of the ODNS that is transparent forwarders, in percent.
    pub fn transparent_share_pct(&self) -> f64 {
        if self.odns_total == 0 {
            0.0
        } else {
            self.transparent as f64 * 100.0 / self.odns_total as f64
        }
    }
}

const fn mix(google: u8, cloudflare: u8, quad9: u8, opendns: u8) -> ResolverMix {
    ResolverMix {
        google,
        cloudflare,
        quad9,
        opendns,
    }
}

const fn other(local_resolvers: u8, indirect_pct: u8) -> OtherProfile {
    OtherProfile {
        local_resolvers,
        indirect_pct,
    }
}

macro_rules! country {
    ($code:literal, $region:ident, $emerging:literal, $ases:literal,
     odns $total:literal, transp $transp:literal, rsv $rsv:literal, shadow $shadow:literal,
     $mix:expr, $other:expr) => {
        CountryProfile {
            code: $code,
            region: Region::$region,
            emerging: $emerging,
            as_count: $ases,
            odns_total: $total,
            transparent: $transp,
            resolvers: $rsv,
            shadow_total: $shadow,
            mix: $mix,
            other: $other,
        }
    };
}

/// The calibrated world: Figure 4's top-50, Table 5's remainder, and a
/// tail of ODNS countries without any transparent forwarder.
pub const COUNTRIES: &[CountryProfile] = &[
    // ---- Figure 4 top-10 by transparent forwarders (≈90 % of all) ----
    country!("BRA", SouthAmerica, true, 1236, odns 297828, transp 250000, rsv 3500, shadow 49616, mix(45, 30, 3, 2), other(5, 48)),
    country!("IND", Asia, true, 298, odns 102910, transp 82500, rsv 1200, shadow 33510, mix(88, 5, 0, 1), other(3, 48)),
    country!("TUR", Europe, true, 35, odns 76168, transp 57000, rsv 900, shadow 19298, mix(8, 2, 0, 0), other(1, 0)),
    country!("POL", Europe, true, 121, odns 43431, transp 27000, rsv 520, shadow 29175, mix(10, 4, 0, 1), other(6, 1)),
    country!("ARG", SouthAmerica, true, 110, odns 43648, transp 26674, rsv 520, shadow 16974, mix(55, 30, 2, 3), other(4, 30)),
    country!("USA", NorthAmerica, false, 438, odns 144568, transp 26000, rsv 1700, shadow 137619, mix(30, 15, 4, 6), other(8, 18)),
    country!("IDN", Asia, true, 325, odns 59972, transp 14000, rsv 720, shadow 56319, mix(60, 20, 1, 2), other(4, 27)),
    country!("BGD", Asia, true, 118, odns 40917, transp 12500, rsv 490, shadow 22940, mix(70, 20, 1, 1), other(3, 15)),
    country!("CHN", Asia, true, 68, odns 632428, transp 11030, rsv 7500, shadow 717706, mix(4, 2, 0, 0), other(10, 1)),
    country!("MUS", Africa, false, 4, odns 9500, transp 9000, rsv 30, shadow 500, mix(85, 10, 0, 0), other(2, 10)),
    // ---- Figure 4 ranks 11-50 ----
    country!("FRA", Europe, false, 36, odns 25320, transp 5268, rsv 300, shadow 25763, mix(25, 10, 2, 3), other(4, 1)),
    country!("BGR", Europe, false, 46, odns 18443, transp 4800, rsv 220, shadow 16239, mix(45, 25, 3, 3), other(4, 10)),
    country!("RUS", Europe, true, 255, odns 93498, transp 4500, rsv 1100, shadow 102368, mix(35, 15, 2, 2), other(8, 5)),
    country!("ESP", Europe, false, 70, odns 16000, transp 4200, rsv 190, shadow 11800, mix(50, 25, 4, 4), other(3, 12)),
    country!("ITA", Europe, false, 87, odns 24766, transp 3900, rsv 300, shadow 24483, mix(30, 15, 3, 2), other(4, 35)),
    country!("ZAF", Africa, true, 91, odns 12000, transp 3600, rsv 140, shadow 8400, mix(55, 25, 3, 3), other(3, 15)),
    country!("CAN", NorthAmerica, false, 93, odns 15000, transp 3300, rsv 180, shadow 11700, mix(40, 20, 5, 5), other(4, 21)),
    country!("HUN", Europe, false, 16, odns 8000, transp 3000, rsv 95, shadow 5000, mix(50, 25, 3, 3), other(3, 10)),
    country!("UKR", Europe, false, 104, odns 20780, transp 2800, rsv 250, shadow 25307, mix(45, 25, 3, 2), other(6, 8)),
    country!("AFG", Asia, false, 9, odns 2800, transp 2600, rsv 10, shadow 200, mix(75, 15, 1, 1), other(1, 5)),
    country!("LVA", Europe, false, 13, odns 3500, transp 2400, rsv 40, shadow 1100, mix(55, 25, 3, 2), other(2, 10)),
    country!("PRY", SouthAmerica, false, 11, odns 3800, transp 2200, rsv 45, shadow 1600, mix(60, 25, 2, 2), other(2, 20)),
    country!("PSE", Asia, false, 8, odns 850, transp 800, rsv 10, shadow 50, mix(70, 20, 1, 1), other(1, 5)),
    country!("TTO", SouthAmerica, false, 3, odns 530, transp 500, rsv 10, shadow 30, mix(65, 25, 1, 1), other(1, 10)),
    country!("IRQ", Asia, false, 28, odns 6000, transp 1900, rsv 70, shadow 4100, mix(65, 20, 1, 1), other(3, 10)),
    country!("CZE", Europe, false, 69, odns 9000, transp 1800, rsv 110, shadow 7200, mix(45, 25, 5, 4), other(4, 10)),
    country!("GBR", Europe, false, 90, odns 14000, transp 1700, rsv 170, shadow 12300, mix(40, 25, 6, 6), other(5, 15)),
    country!("BLZ", SouthAmerica, false, 5, odns 600, transp 260, rsv 10, shadow 340, mix(60, 25, 2, 2), other(1, 10)),
    country!("COD", Africa, false, 5, odns 800, transp 240, rsv 10, shadow 560, mix(70, 20, 1, 1), other(1, 5)),
    country!("BDI", Africa, false, 2, odns 300, transp 120, rsv 10, shadow 180, mix(70, 20, 1, 1), other(1, 5)),
    country!("SRB", Europe, false, 13, odns 4000, transp 1500, rsv 50, shadow 2500, mix(50, 25, 3, 3), other(3, 10)),
    country!("PHL", Asia, true, 26, odns 8000, transp 1400, rsv 95, shadow 6600, mix(60, 25, 2, 2), other(3, 15)),
    country!("COL", SouthAmerica, true, 29, odns 9000, transp 1300, rsv 110, shadow 7700, mix(60, 25, 2, 2), other(3, 20)),
    country!("ECU", SouthAmerica, false, 15, odns 4500, transp 1200, rsv 55, shadow 3300, mix(60, 25, 2, 2), other(2, 15)),
    country!("SVK", Europe, false, 30, odns 5000, transp 1100, rsv 60, shadow 3900, mix(45, 25, 4, 4), other(3, 10)),
    country!("THA", Asia, true, 25, odns 19694, transp 1000, rsv 235, shadow 20474, mix(55, 25, 2, 2), other(4, 10)),
    country!("HRV", Europe, false, 8, odns 2500, transp 950, rsv 30, shadow 1550, mix(50, 25, 3, 3), other(2, 10)),
    country!("AUS", Oceania, false, 54, odns 9000, transp 900, rsv 110, shadow 8100, mix(45, 25, 5, 5), other(4, 15)),
    country!("URY", SouthAmerica, false, 24, odns 2600, transp 850, rsv 30, shadow 1750, mix(55, 30, 2, 2), other(2, 15)),
    country!("HKG", Asia, false, 27, odns 7000, transp 800, rsv 85, shadow 6200, mix(50, 25, 4, 4), other(3, 12)),
    country!("NLD", Europe, false, 38, odns 10000, transp 750, rsv 120, shadow 9250, mix(40, 25, 6, 6), other(4, 15)),
    country!("ISR", Asia, false, 11, odns 5000, transp 700, rsv 60, shadow 4300, mix(50, 25, 4, 4), other(2, 10)),
    country!("PRI", SouthAmerica, false, 11, odns 1500, transp 650, rsv 20, shadow 850, mix(55, 30, 2, 2), other(1, 10)),
    country!("EGY", Africa, true, 8, odns 7000, transp 600, rsv 85, shadow 6400, mix(60, 20, 2, 2), other(2, 10)),
    country!("CHL", SouthAmerica, false, 17, odns 5500, transp 550, rsv 65, shadow 4950, mix(55, 30, 2, 2), other(2, 15)),
    country!("GTM", SouthAmerica, false, 5, odns 2200, transp 500, rsv 25, shadow 1700, mix(60, 25, 2, 2), other(1, 10)),
    country!("PAK", Asia, false, 39, odns 11000, transp 480, rsv 130, shadow 10520, mix(65, 20, 1, 1), other(3, 10)),
    country!("MYS", Asia, true, 13, odns 6000, transp 460, rsv 70, shadow 5540, mix(55, 25, 2, 2), other(2, 10)),
    country!("IRN", Asia, true, 55, odns 36659, transp 440, rsv 440, shadow 33444, mix(25, 10, 1, 1), other(6, 5)),
    country!("JPN", Asia, false, 35, odns 13000, transp 420, rsv 160, shadow 12580, mix(40, 25, 5, 5), other(4, 10)),
    // ---- Table 5 countries below the Figure 4 top-50 cut ----
    country!("KOR", Asia, false, 20, odns 49143, transp 300, rsv 590, shadow 73790, mix(40, 20, 3, 3), other(6, 5)),
    country!("TWN", Asia, false, 15, odns 37550, transp 200, rsv 450, shadow 38525, mix(45, 20, 3, 3), other(5, 5)),
    country!("VNM", Asia, true, 25, odns 21407, transp 250, rsv 255, shadow 24266, mix(55, 20, 2, 2), other(4, 8)),
    country!("DEU", Europe, false, 40, odns 16243, transp 150, rsv 195, shadow 17788, mix(35, 25, 8, 6), other(5, 10)),
    // ---- A >90 %-transparent country outside the top-50 (the paper's
    //      fifth such country) ----
    country!("FSM", Oceania, false, 1, odns 95, transp 90, rsv 1, shadow 5, mix(80, 15, 0, 0), other(1, 0)),
    // ---- ODNS countries with no transparent forwarders (~25 % of all
    //      ODNS countries, the gray region of Figure 3) ----
    country!("NOR", Europe, false, 12, odns 3000, transp 0, rsv 40, shadow 2960, mix(40, 30, 6, 6), other(3, 0)),
    country!("SWE", Europe, false, 14, odns 4200, transp 0, rsv 50, shadow 4150, mix(40, 30, 6, 6), other(3, 0)),
    country!("FIN", Europe, false, 10, odns 2500, transp 0, rsv 30, shadow 2470, mix(40, 30, 6, 6), other(3, 0)),
    country!("DNK", Europe, false, 9, odns 2300, transp 0, rsv 30, shadow 2270, mix(40, 30, 6, 6), other(3, 0)),
    country!("CHE", Europe, false, 11, odns 2800, transp 0, rsv 35, shadow 2765, mix(40, 30, 6, 6), other(3, 0)),
    country!("AUT", Europe, false, 10, odns 2600, transp 0, rsv 30, shadow 2570, mix(40, 30, 6, 6), other(3, 0)),
    country!("BEL", Europe, false, 9, odns 2400, transp 0, rsv 30, shadow 2370, mix(40, 30, 6, 6), other(3, 0)),
    country!("PRT", Europe, false, 10, odns 3200, transp 0, rsv 40, shadow 3160, mix(45, 30, 4, 4), other(3, 0)),
    country!("GRC", Europe, false, 9, odns 2900, transp 0, rsv 35, shadow 2865, mix(45, 30, 4, 4), other(3, 0)),
    country!("IRL", Europe, false, 7, odns 1800, transp 0, rsv 25, shadow 1775, mix(40, 30, 6, 6), other(2, 0)),
    country!("NZL", Oceania, false, 8, odns 1900, transp 0, rsv 25, shadow 1875, mix(45, 30, 4, 4), other(2, 0)),
    country!("SGP", Asia, false, 10, odns 3100, transp 0, rsv 40, shadow 3060, mix(45, 30, 4, 4), other(3, 0)),
    country!("KEN", Africa, false, 8, odns 2100, transp 0, rsv 25, shadow 2075, mix(55, 25, 2, 2), other(2, 0)),
    country!("MAR", Africa, false, 7, odns 1900, transp 0, rsv 25, shadow 1875, mix(55, 25, 2, 2), other(2, 0)),
    country!("PER", SouthAmerica, false, 9, odns 2700, transp 0, rsv 35, shadow 2665, mix(55, 30, 2, 2), other(2, 0)),
];

/// Look up a profile by country code.
pub fn by_code(code: &str) -> Option<&'static CountryProfile> {
    COUNTRIES.iter().find(|c| c.code == code)
}

/// Countries sorted by transparent-forwarder count, descending (Figure 4's
/// x-axis order).
pub fn by_transparent_desc() -> Vec<&'static CountryProfile> {
    let mut v: Vec<_> = COUNTRIES.iter().collect();
    v.sort_by(|a, b| b.transparent.cmp(&a.transparent).then(a.code.cmp(b.code)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_marginals_match_paper() {
        let total: u64 = COUNTRIES.iter().map(|c| u64::from(c.odns_total)).sum();
        let transparent: u64 = COUNTRIES.iter().map(|c| u64::from(c.transparent)).sum();
        let resolvers: u64 = COUNTRIES.iter().map(|c| u64::from(c.resolvers)).sum();
        // Table 1: 2.125 M total, 26 % transparent, 2 % resolvers.
        assert!(
            (1_900_000..2_300_000).contains(&total),
            "total ODNS {total}"
        );
        let t_share = transparent as f64 / total as f64;
        assert!(
            (0.22..0.30).contains(&t_share),
            "transparent share {t_share}"
        );
        let r_share = resolvers as f64 / total as f64;
        assert!(
            (0.010..0.030).contains(&r_share),
            "resolver share {r_share}"
        );
    }

    #[test]
    fn top10_hold_about_ninety_percent() {
        let ordered = by_transparent_desc();
        let total: u64 = COUNTRIES.iter().map(|c| u64::from(c.transparent)).sum();
        let top10: u64 = ordered
            .iter()
            .take(10)
            .map(|c| u64::from(c.transparent))
            .sum();
        let share = top10 as f64 / total as f64;
        assert!((0.85..0.95).contains(&share), "top-10 share {share}");
    }

    #[test]
    fn brazil_and_india_over_80_percent_transparent() {
        assert!(by_code("BRA").unwrap().transparent_share_pct() > 80.0);
        assert!(by_code("IND").unwrap().transparent_share_pct() > 80.0);
    }

    #[test]
    fn five_countries_over_90_percent() {
        let over90: Vec<_> = COUNTRIES
            .iter()
            .filter(|c| c.transparent_share_pct() > 90.0)
            .map(|c| c.code)
            .collect();
        assert_eq!(over90.len(), 5, "got {over90:?}");
        // Four are in the top-50 by transparent count; FSM is the fifth.
        assert!(over90.contains(&"FSM"));
    }

    #[test]
    fn nine_countries_over_10k_eight_emerging() {
        let over10k: Vec<_> = COUNTRIES
            .iter()
            .filter(|c| c.transparent > 10_000)
            .collect();
        assert_eq!(
            over10k.len(),
            9,
            "{:?}",
            over10k.iter().map(|c| c.code).collect::<Vec<_>>()
        );
        let emerging = over10k.iter().filter(|c| c.emerging).count();
        assert_eq!(emerging, 8, "all but the USA are emerging markets");
    }

    #[test]
    fn about_a_quarter_of_countries_have_no_transparent_forwarders() {
        let zero = COUNTRIES.iter().filter(|c| c.transparent == 0).count();
        let share = zero as f64 / COUNTRIES.len() as f64;
        assert!(
            (0.18..0.30).contains(&share),
            "zero-transparent share {share}"
        );
    }

    #[test]
    fn china_manipulation_explains_shadowserver_excess() {
        let chn = by_code("CHN").unwrap();
        // Table 5: Shadowserver counts ~85k more hosts in China than the
        // strict method; those are the manipulated responders.
        assert!(
            chn.manipulated() > 80_000,
            "manipulated {}",
            chn.manipulated()
        );
        let bra = by_code("BRA").unwrap();
        assert!(
            bra.manipulated() < 5_000,
            "Brazil is dominated by missing transparents"
        );
    }

    #[test]
    fn mix_percentages_are_sane() {
        for c in COUNTRIES {
            let sum = c.mix.google + c.mix.cloudflare + c.mix.quad9 + c.mix.opendns;
            assert!(sum <= 100, "{}: mix sums to {sum}", c.code);
            assert_eq!(c.mix.other(), 100 - sum);
            assert!(
                c.other.local_resolvers >= 1,
                "{}: needs at least one local resolver",
                c.code
            );
            assert!(
                c.other.local_resolvers <= 10,
                "{}: 1-10 local resolvers (§4.2)",
                c.code
            );
            assert!(c.other.indirect_pct <= 100);
            assert!(
                c.recursive_forwarders() > 0,
                "{}: no recursive forwarders",
                c.code
            );
        }
    }

    #[test]
    fn india_relays_overwhelmingly_to_google() {
        assert!(
            by_code("IND").unwrap().mix.google >= 85,
            "Figure 5: almost all of India → Google"
        );
    }

    #[test]
    fn turkey_uses_one_local_resolver() {
        let tur = by_code("TUR").unwrap();
        assert_eq!(
            tur.other.local_resolvers, 1,
            "195.175.39.69 serves almost all of Turkey"
        );
        assert!(tur.mix.other() >= 85);
    }

    #[test]
    fn lookup_and_ordering() {
        assert!(by_code("BRA").is_some());
        assert!(by_code("XXX").is_none());
        let ordered = by_transparent_desc();
        assert_eq!(ordered[0].code, "BRA");
        for w in ordered.windows(2) {
            assert!(w[0].transparent >= w[1].transparent);
        }
    }
}
