//! The generator: turns the calibration table into a running simulated
//! Internet with the full ODNS population planted in it.
//!
//! Layout (AS level):
//!
//! ```text
//!   4 tier-1 transits (full mesh)
//!        │
//!   6 regional transits (one per region)
//!        │
//!   per-country eyeball ASes  ← transparent/recursive forwarders,
//!        │                       local resolvers, manipulated CPE
//!   project ASes (Google, Cloudflare, Quad9, OpenDNS) with
//!   peering density modeling their anycast footprint
//!   + fixture ASes: scanner, study infrastructure (root/TLD/auth),
//!     sensor network (no SAV, direct Google peering), victim
//! ```
//!
//! The generator plants ground truth; the measurement pipeline must
//! *re-discover* it through wire-level scanning only.

use crate::config::{CountrySelection, GenConfig};
use crate::countries::{CountryProfile, Region, COUNTRIES};
use crate::geodb::GeoDb;
use crate::shard::{shard_of_country, ShardSpec};
use netsim::shard::derive_seed;
use netsim::{
    AsId, AsKind, AsSpec, CountryCode, HostSpec, NodeId, Relationship, SimConfig, SimDuration,
    Simulator, TopologyBuilder,
};
use odns::{
    AuthConfig, DeviceProfile, Manipulation, RecursiveForwarder, RecursiveResolver, ResolverConfig,
    ResolverProject, StudyNodes, TransparentForwarder, Vendor,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What kind of ODNS host was planted at an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlantedClass {
    /// Spoofing relay.
    TransparentForwarder,
    /// Address-rewriting forwarder.
    RecursiveForwarder,
    /// Open recursive resolver.
    RecursiveResolver,
    /// Recursive forwarder whose responses are manipulated in-path —
    /// counted by Shadowserver, discarded by the strict method.
    ManipulatedForwarder,
}

/// Ground truth for one planted address. Middlebox /24s produce one entry
/// per address, all sharing a node.
#[derive(Debug, Clone)]
pub struct PlantedHost {
    /// The address the scanner can probe.
    pub ip: Ipv4Addr,
    /// The simulator node serving it.
    pub node: NodeId,
    /// Its true class.
    pub class: PlantedClass,
    /// Hosting country.
    pub country: &'static str,
    /// Hosting ASN.
    pub asn: u32,
    /// Device vendor, if a CPE profile was attached.
    pub vendor: Option<Vendor>,
    /// Where it forwards (None for resolvers).
    pub resolver_target: Option<Ipv4Addr>,
    /// True when the address belongs to a whole-/24 middlebox.
    pub middlebox: bool,
}

/// Everything the generator planted.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// All planted addresses.
    pub hosts: Vec<PlantedHost>,
    /// Instantiated country codes.
    pub countries: Vec<&'static str>,
}

impl GroundTruth {
    /// Count planted addresses of a class.
    pub fn count(&self, class: PlantedClass) -> usize {
        self.hosts.iter().filter(|h| h.class == class).count()
    }

    /// Planted transparent-forwarder addresses.
    pub fn transparent_ips(&self) -> Vec<Ipv4Addr> {
        self.hosts
            .iter()
            .filter(|h| h.class == PlantedClass::TransparentForwarder)
            .map(|h| h.ip)
            .collect()
    }

    /// Per-country count of a class.
    pub fn count_by_country(&self, class: PlantedClass) -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for h in self.hosts.iter().filter(|h| h.class == class) {
            *m.entry(h.country).or_insert(0) += 1;
        }
        m
    }
}

/// Pre-created nodes for the standard experiments. Hosts (scanner logic,
/// sensors, campaign emulators) are installed by the caller — the
/// generator only reserves addressed nodes in the right networks.
#[derive(Debug, Clone)]
pub struct Fixtures {
    /// The study's scanner (SAV-protected network).
    pub scanner: NodeId,
    /// Scanner address (192.0.2.1).
    pub scanner_ip: Ipv4Addr,
    /// Campaign emulator nodes (Shadowserver, Censys, Shodan).
    pub campaign_scanners: [NodeId; 3],
    /// Root name server address.
    pub root_ip: Ipv4Addr,
    /// TLD server address.
    pub tld_ip: Ipv4Addr,
    /// Study authoritative server address.
    pub auth_ip: Ipv4Addr,
    /// Authoritative server node (for log extraction).
    pub auth: NodeId,
    /// Sensor 1 node (`IP1`).
    pub sensor1: NodeId,
    /// Sensor 2 node (owns `IP2` and `IP3`).
    pub sensor2: NodeId,
    /// Sensor 3 node (`IP4`).
    pub sensor3: NodeId,
    /// Sensor addresses per Table 3.
    pub sensor_addrs: scanner_addrs::SensorAddrs,
    /// A victim host for the amplification study.
    pub victim: NodeId,
    /// Victim address.
    pub victim_ip: Ipv4Addr,
}

/// Local module to avoid a dependency on the `scanner` crate: the four
/// observable sensor addresses of Table 3.
pub mod scanner_addrs {
    use std::net::Ipv4Addr;

    /// `IP1..IP4` of the controlled experiment.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SensorAddrs {
        /// Sensor 1 (recursive-resolver sensor).
        pub ip1: Ipv4Addr,
        /// Sensor 2 receive address.
        pub ip2: Ipv4Addr,
        /// Sensor 2 reply address (same /24).
        pub ip3: Ipv4Addr,
        /// Sensor 3 (exterior transparent forwarder).
        pub ip4: Ipv4Addr,
    }
}

/// A generated Internet: simulator with population installed, ground
/// truth, measurement databases, and a scan target list.
pub struct Internet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Reinstall recipe for [`Internet::reset`].
    blueprint: WorldBlueprint,
    /// Standard experiment nodes.
    pub fixtures: Fixtures,
    /// What was planted where.
    pub truth: GroundTruth,
    /// Routeviews/MaxMind-style lookup data for the analysis stage.
    pub geo: GeoDb,
    /// Scan target list: every planted address plus unresponsive duds,
    /// deterministically shuffled.
    pub targets: Vec<Ipv4Addr>,
}

impl Internet {
    /// Restore a scanned world to its pre-scan state: the simulator
    /// rewinds (clock, queue, RNG, stats — see [`Simulator::reset`]) and
    /// every host reinstalls from the generation blueprint. The result
    /// runs any experiment bit-identically to a freshly generated world,
    /// while keeping the expensive topology, route caches, ground truth,
    /// geo database, and target list. This is the generate-once/scan-many
    /// hook [`crate::ShardWorldCache`] relies on.
    pub fn reset(&mut self) {
        self.sim.reset(&self.blueprint.config);
        install_hosts(&mut self.sim, &self.blueprint);
    }
}

const SCANNER_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const ROOT_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const TLD_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 1, 4);
const AUTH_IP: Ipv4Addr = Ipv4Addr::new(198, 41, 2, 4);
const VICTIM_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 99, 1);

/// Population space starts at 11.0.0.0; fixture/special ranges live
/// elsewhere (1/8, 8/8, 9/8, 10/8, 192/8, 198/8, 203/8, 208/8), so no
/// collisions.
const POPULATION_BASE: u32 = 0x0B00_0000;

/// /24 blocks reserved per country. Every country owns a fixed region of
/// `COUNTRY_BLOCK_SPAN` consecutive /24s starting at
/// `POPULATION_BASE + index · COUNTRY_BLOCK_SPAN · 256`, where `index` is
/// its position in [`COUNTRIES`]. Fixed disjoint regions are what make a
/// country's addresses independent of which other countries share its
/// shard — the prefix partition a sharded census relies on. The span
/// covers the worst case (Brazil's sparse transparent prefixes at
/// `scale = 1` can burn one block per host: 0.26 · 250 000 ≈ 65 k
/// blocks).
const COUNTRY_BLOCK_SPAN: u32 = 0x1_8000;

// The 11/8..125/8 pool holds 0x73_0000 /24 blocks — room for 76 country
// regions. Grow the pool before growing the calibration table past that.
const _: () = assert!(
    COUNTRIES.len() <= 76,
    "country regions exceed the population pool"
);

/// Per-country /24 allocator over the country's fixed region.
struct Allocator {
    next_block: u32,
    limit: u32,
}

impl Allocator {
    fn for_country(global_index: usize) -> Self {
        let base = POPULATION_BASE + global_index as u32 * COUNTRY_BLOCK_SPAN * 0x100;
        let limit = base + COUNTRY_BLOCK_SPAN * 0x100;
        assert!(
            limit <= 0x7E00_0000,
            "country region exceeded the 11/8..125/8 pool"
        );
        Allocator {
            next_block: base,
            limit,
        }
    }

    fn next(&mut self) -> u32 {
        let b = self.next_block;
        self.next_block += 0x100;
        assert!(
            self.next_block <= self.limit,
            "population exceeded the country's /24 region"
        );
        b
    }
}

/// Router-space (10/8) allocator: one /24 block per `take` call, from a
/// fixed per-owner region so that a country's router addresses never
/// depend on which other ASes exist in the same topology.
struct RouterAlloc {
    next: u32,
    limit: u32,
}

/// Router blocks reserved for the backbone + fixtures (they use ~20).
const BACKBONE_ROUTER_BLOCKS: u32 = 64;

impl RouterAlloc {
    fn backbone() -> Self {
        RouterAlloc {
            next: 0,
            limit: BACKBONE_ROUTER_BLOCKS,
        }
    }

    fn for_country(global_index: usize) -> Self {
        // Regions sized by the country's full-scale AS count — the hard
        // ceiling on how many ASes `scaled_ases` can ever request.
        let base = BACKBONE_ROUTER_BLOCKS
            + COUNTRIES[..global_index]
                .iter()
                .map(|c| u32::from(c.as_count))
                .sum::<u32>();
        let limit = base + u32::from(COUNTRIES[global_index].as_count);
        assert!(limit <= 0x1_0000, "router space exhausted");
        RouterAlloc { next: base, limit }
    }

    fn take(&mut self, n: usize) -> Vec<Ipv4Addr> {
        let block = self.next;
        self.next += 1;
        assert!(self.next <= self.limit, "router region exhausted");
        (0..n)
            .map(|i| Ipv4Addr::new(10, (block >> 8) as u8, (block & 0xFF) as u8, (i + 1) as u8))
            .collect()
    }
}

/// First 16-bit ASN for a country's region (again sized by `as_count`).
fn country_asn16_base(global_index: usize) -> u32 {
    20_000
        + COUNTRIES[..global_index]
            .iter()
            .map(|c| u32::from(c.as_count))
            .sum::<u32>()
}

/// 32-bit ASN regions: 10 000 per country, far above any `as_count`.
const ASN32_BASE: u32 = 4_200_000_000;
const ASN32_SPAN: u32 = 10_000;

/// RNG stream tags for [`derive_seed`] — one namespace per purpose, so a
/// country stream can never collide with a shard's target stream.
const COUNTRY_STREAM: u64 = 0xC0_0000_0000;
const TARGET_STREAM: u64 = 0x7A_0000_0000;

#[derive(Debug, Clone)]
enum HostPlan {
    Transparent {
        resolver: Ipv4Addr,
        device: Option<DeviceProfile>,
    },
    Recursive {
        resolver: Ipv4Addr,
        manipulation: Manipulation,
        device: Option<DeviceProfile>,
    },
    Resolver,
}

/// Everything needed to reinstall a shard's hosts onto a reset simulator:
/// the sim config (for the RNG reseed), the study-stack nodes, the public
/// resolver nodes, and the full population plan. Kept by [`Internet`] so
/// [`Internet::reset`] can restore a scanned world to its pre-scan state
/// without regenerating the topology.
#[derive(Debug, Clone)]
struct WorldBlueprint {
    config: SimConfig,
    study: StudyNodes,
    project_resolvers: Vec<NodeId>,
    plans: Vec<(NodeId, HostPlan)>,
}

/// Install the study stack, public resolvers, and population onto a
/// simulator that has no hosts yet (fresh or just reset). Shared by first
/// generation and every [`Internet::reset`], so a reset world is rebuilt
/// by the exact code path that built it.
fn install_hosts(sim: &mut Simulator, bp: &WorldBlueprint) {
    odns::install_study_stack(
        sim,
        bp.study,
        AuthConfig {
            keep_log: false,
            rate_limit_pps: None,
            ..AuthConfig::default()
        },
    );
    for node in &bp.project_resolvers {
        sim.install(
            *node,
            RecursiveResolver::new(ResolverConfig {
                cache_capacity: 4096,
                ..ResolverConfig::open(vec![ROOT_IP])
            }),
        );
    }
    for (node, plan) in &bp.plans {
        match plan {
            HostPlan::Transparent { resolver, device } => {
                let mut fwd = TransparentForwarder::new(*resolver);
                if let Some(d) = device {
                    fwd = fwd.with_device(d.clone());
                }
                sim.install(*node, fwd);
            }
            HostPlan::Recursive {
                resolver,
                manipulation,
                device,
            } => {
                let mut fwd = RecursiveForwarder::new(*resolver).with_manipulation(*manipulation);
                if let Some(d) = device {
                    fwd = fwd.with_device(d.clone());
                }
                sim.install(*node, fwd);
            }
            HostPlan::Resolver => {
                sim.install(
                    *node,
                    RecursiveResolver::new(ResolverConfig {
                        cache_capacity: 256,
                        ..ResolverConfig::open(vec![ROOT_IP])
                    }),
                );
            }
        }
    }
}

/// Generate a simulated Internet per `config` — the single-simulator
/// world. Exactly shard 0 of a 1-way partition, so the sharded and
/// unsharded paths share every line of generation code.
pub fn generate(config: &GenConfig) -> Internet {
    generate_shard(config, ShardSpec::solo())
}

/// Generate one shard of a `spec.count`-way partition of the world.
///
/// The shard is a complete, self-contained Internet: the structural
/// backbone, public resolver projects, and fixture networks (scanner,
/// study servers, sensors, victim) are replicated in every shard, while
/// the per-country ODNS population is split by
/// [`shard_of_country`]. Per-country RNG streams derive only from
/// `(config.seed, country index)`, so the same country is planted
/// byte-identically no matter the partition — `spec.count = 1` *is* the
/// classic single-simulator world.
pub fn generate_shard(config: &GenConfig, spec: ShardSpec) -> Internet {
    let mut b = TopologyBuilder::new();
    let mut geo = GeoDb::new();
    let mut plans: Vec<(NodeId, HostPlan)> = Vec::new();
    let mut truth = GroundTruth::default();

    // ---- Structural backbone -------------------------------------------------
    // Every AS gets its own /24 of router space inside 10/8 so the geo
    // database can map any hop to exactly one ASN (DNSRoute++ depends on
    // this being unambiguous). The backbone draws no randomness: it is
    // byte-identical in every shard.
    let mut backbone_routers = RouterAlloc::backbone();
    let mut make_routers = |n: usize| -> Vec<Ipv4Addr> { backbone_routers.take(n) };

    let tier1: Vec<AsId> = (0..4)
        .map(|i| {
            b.add_as(AsSpec {
                asn: 64601 + i,
                country: CountryCode::new("USA"),
                kind: AsKind::Transit,
                sav_outbound: true,
                transit_routers: make_routers(2),
            })
        })
        .collect();
    for i in 0..tier1.len() {
        for j in (i + 1)..tier1.len() {
            b.connect(tier1[i], tier1[j], Relationship::Peer);
        }
    }

    let regional: Vec<AsId> = Region::all()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            b.add_as(AsSpec {
                asn: 64611 + i as u32,
                country: CountryCode::new("USA"),
                kind: AsKind::Transit,
                sav_outbound: true,
                // Three routers per regional backbone: calibrated so the
                // Figure 6 means land near the paper's 6.3/7.9/9.3 hops.
                transit_routers: make_routers(3),
            })
        })
        .collect();
    for (i, &r) in regional.iter().enumerate() {
        b.connect(tier1[i % 4], r, Relationship::ProviderCustomer);
        b.connect(tier1[(i + 1) % 4], r, Relationship::ProviderCustomer);
    }

    // ---- Public resolver projects --------------------------------------------
    // PoP footprint is modeled as peering density: Cloudflare peers with
    // everything (plus a share of eyeball ASes below), Google with every
    // regional, Quad9 with a subset, OpenDNS barely — yielding the
    // Figure 6 path-length ordering Cloudflare < Google < OpenDNS.
    let google_as = b.add_as(AsSpec {
        asn: ResolverProject::Google.asn(),
        country: CountryCode::new("USA"),
        kind: AsKind::Content,
        sav_outbound: true,
        transit_routers: make_routers(2),
    });
    for &r in &regional {
        b.connect(google_as, r, Relationship::Peer);
    }
    b.connect(google_as, tier1[0], Relationship::Peer);
    b.connect(google_as, tier1[1], Relationship::Peer);

    let cloudflare_as = b.add_as(AsSpec {
        asn: ResolverProject::Cloudflare.asn(),
        country: CountryCode::new("USA"),
        kind: AsKind::Content,
        sav_outbound: true,
        transit_routers: make_routers(1),
    });
    for &r in regional.iter().chain(&tier1) {
        b.connect(cloudflare_as, r, Relationship::Peer);
    }

    let quad9_as = b.add_as(AsSpec {
        asn: ResolverProject::Quad9.asn(),
        country: CountryCode::new("USA"),
        kind: AsKind::Content,
        sav_outbound: true,
        transit_routers: make_routers(2),
    });
    b.connect(
        quad9_as,
        regional[Region::Europe.index()],
        Relationship::Peer,
    );
    b.connect(
        quad9_as,
        regional[Region::NorthAmerica.index()],
        Relationship::Peer,
    );
    b.connect(quad9_as, tier1[2], Relationship::Peer);

    let opendns_as = b.add_as(AsSpec {
        asn: ResolverProject::OpenDns.asn(),
        country: CountryCode::new("USA"),
        kind: AsKind::Content,
        sav_outbound: true,
        transit_routers: make_routers(3),
    });
    b.connect(tier1[3], opendns_as, Relationship::ProviderCustomer);
    b.connect(
        opendns_as,
        regional[Region::NorthAmerica.index()],
        Relationship::Peer,
    );

    let project_egress = [
        (
            ResolverProject::Google,
            google_as,
            Ipv4Addr::new(8, 8, 4, 1),
        ),
        (
            ResolverProject::Cloudflare,
            cloudflare_as,
            Ipv4Addr::new(1, 0, 0, 1),
        ),
        (ResolverProject::Quad9, quad9_as, Ipv4Addr::new(9, 9, 9, 10)),
        (
            ResolverProject::OpenDns,
            opendns_as,
            Ipv4Addr::new(208, 67, 220, 1),
        ),
    ];
    let mut project_nodes = Vec::new();
    for (project, as_id, egress) in project_egress {
        let node = b.add_host(
            as_id,
            HostSpec {
                ip: egress,
                extra_ips: vec![],
                access_routers: vec![],
                link_latency: SimDuration::from_micros(500),
            },
        );
        b.add_anycast_instance(project.service_ip(), node);
        project_nodes.push((project, node));
        geo.add_prefix24(egress, project.asn());
        geo.add_anycast(project.service_ip(), project.asn());
        geo.add_asn(project.asn(), "USA", AsKind::Content);
    }

    // ---- Fixture networks -----------------------------------------------------
    let scanner_as = b.add_as(AsSpec {
        asn: 64496,
        country: CountryCode::new("DEU"),
        kind: AsKind::Education,
        sav_outbound: true,
        transit_routers: make_routers(1),
    });
    b.connect(tier1[0], scanner_as, Relationship::ProviderCustomer);
    b.connect(
        scanner_as,
        regional[Region::Europe.index()],
        Relationship::Peer,
    );
    let scanner = b.add_host(scanner_as, HostSpec::simple(SCANNER_IP));
    let campaign_scanners = [
        b.add_host(scanner_as, HostSpec::simple(Ipv4Addr::new(192, 0, 2, 11))),
        b.add_host(scanner_as, HostSpec::simple(Ipv4Addr::new(192, 0, 2, 12))),
        b.add_host(scanner_as, HostSpec::simple(Ipv4Addr::new(192, 0, 2, 13))),
    ];
    geo.add_prefix24(SCANNER_IP, 64496);
    geo.add_asn(64496, "DEU", AsKind::Education);

    let infra_as = b.add_as(AsSpec {
        asn: 64500,
        country: CountryCode::new("DEU"),
        kind: AsKind::Content,
        sav_outbound: true,
        transit_routers: make_routers(1),
    });
    b.connect(tier1[0], infra_as, Relationship::ProviderCustomer);
    b.connect(tier1[1], infra_as, Relationship::ProviderCustomer);
    let root_node = b.add_host(infra_as, HostSpec::simple(ROOT_IP));
    let tld_node = b.add_host(infra_as, HostSpec::simple(TLD_IP));
    let auth_node = b.add_host(infra_as, HostSpec::simple(AUTH_IP));
    for ip in [ROOT_IP, TLD_IP, AUTH_IP] {
        geo.add_prefix24(ip, 64500);
    }
    geo.add_asn(64500, "DEU", AsKind::Content);

    // The sensor network of §3.1: no outbound SAV, and a direct IXP
    // peering with Google's AS ("our network peers directly with Google at
    // an IXP, so we are not exposed to filters from upstream providers").
    let sensor_as = b.add_as(AsSpec {
        asn: 64497,
        country: CountryCode::new("DEU"),
        kind: AsKind::Education,
        sav_outbound: false,
        transit_routers: make_routers(1),
    });
    b.connect(
        regional[Region::Europe.index()],
        sensor_as,
        Relationship::ProviderCustomer,
    );
    b.connect(sensor_as, google_as, Relationship::Peer);
    let sensor_addrs = scanner_addrs::SensorAddrs {
        ip1: Ipv4Addr::new(203, 0, 113, 11),
        ip2: Ipv4Addr::new(203, 0, 113, 22),
        ip3: Ipv4Addr::new(203, 0, 113, 23),
        ip4: Ipv4Addr::new(203, 0, 113, 44),
    };
    let sensor1 = b.add_host(sensor_as, HostSpec::simple(sensor_addrs.ip1));
    let sensor2 = b.add_host(
        sensor_as,
        HostSpec {
            ip: sensor_addrs.ip2,
            extra_ips: vec![sensor_addrs.ip3],
            access_routers: vec![],
            link_latency: SimDuration::from_millis(2),
        },
    );
    let sensor3 = b.add_host(sensor_as, HostSpec::simple(sensor_addrs.ip4));
    geo.add_prefix24(sensor_addrs.ip1, 64497);
    geo.add_asn(64497, "DEU", AsKind::Education);

    let victim_as = b.add_as(AsSpec {
        asn: 64498,
        country: CountryCode::new("DEU"),
        kind: AsKind::EyeballIsp,
        sav_outbound: true,
        transit_routers: make_routers(1),
    });
    b.connect(
        regional[Region::Europe.index()],
        victim_as,
        Relationship::ProviderCustomer,
    );
    let victim = b.add_host(victim_as, HostSpec::simple(VICTIM_IP));
    geo.add_prefix24(VICTIM_IP, 64498);
    geo.add_asn(64498, "DEU", AsKind::EyeballIsp);

    // ---- Per-country population ----------------------------------------------
    // Selection keeps each country's index in the full COUNTRIES table:
    // that index — not the position within the selection — keys its
    // address region, ASN region, router region, and RNG stream, so a
    // country is planted identically whatever subset or shard it is in.
    let selected: Vec<(usize, &CountryProfile)> = match &config.countries {
        CountrySelection::All => COUNTRIES.iter().enumerate().collect(),
        CountrySelection::TopByTransparent(n) => {
            let mut v: Vec<(usize, &CountryProfile)> = COUNTRIES.iter().enumerate().collect();
            v.sort_by_key(|(_, c)| std::cmp::Reverse(c.transparent));
            v.truncate(*n);
            v
        }
        CountrySelection::Codes(codes) => COUNTRIES
            .iter()
            .enumerate()
            .filter(|(_, c)| codes.contains(&c.code))
            .collect(),
    };
    let selected: Vec<(usize, &CountryProfile)> = selected
        .into_iter()
        .filter(|(i, _)| shard_of_country(*i, spec.count) == spec.index)
        .collect();

    for &(global_index, profile) in &selected {
        truth.countries.push(profile.code);
        // Everything this country draws comes from its own stream and its
        // own fixed regions — the sharding determinism contract.
        let mut rng = SmallRng::seed_from_u64(derive_seed(
            config.seed,
            COUNTRY_STREAM | global_index as u64,
        ));
        let mut alloc = Allocator::for_country(global_index);
        let mut routers = RouterAlloc::for_country(global_index);
        let mut asn_counter_32bit = ASN32_BASE + global_index as u32 * ASN32_SPAN;
        let mut asn_counter_16bit = country_asn16_base(global_index);
        let n_ases = config.scaled_ases(profile.as_count) as usize;
        let mut country_ases = Vec::with_capacity(n_ases);
        for _ in 0..n_ases {
            let asn = if rng.gen_bool(0.6) {
                asn_counter_32bit += 1;
                asn_counter_32bit
            } else {
                asn_counter_16bit += 1;
                asn_counter_16bit
            };
            // Appendix E: of the top ASes by transparent forwarders, 79 %
            // are eyeball ISPs, 7 % other types, 14 % unclassified.
            let kind = match rng.gen_range(0..100) {
                0..=78 => AsKind::EyeballIsp,
                79..=85 => AsKind::Content,
                _ => AsKind::Unclassified,
            };
            let as_id = b.add_as(AsSpec {
                asn,
                country: CountryCode::new(profile.code),
                kind,
                // ASes hosting transparent forwarders cannot filter
                // spoofed egress; model the country's eyeball space as
                // mostly SAV-free when it hosts transparents.
                sav_outbound: if profile.transparent > 0 {
                    false
                } else {
                    rng.gen_bool(0.5)
                },
                transit_routers: routers.take(1),
            });
            b.connect(
                regional[profile.region.index()],
                as_id,
                Relationship::ProviderCustomer,
            );
            if rng.gen_bool(0.3) {
                let t = tier1[rng.gen_range(0..tier1.len())];
                b.connect(t, as_id, Relationship::ProviderCustomer);
            }
            // Cloudflare's IXP omnipresence: direct peering with a share
            // of eyeball networks (drives its short Figure 6 paths).
            if rng.gen_bool(0.35) {
                b.connect(as_id, cloudflare_as, Relationship::Peer);
            }
            // Google peers at far fewer IXPs than Cloudflare — the gap
            // behind Figure 6's Cloudflare < Google ordering.
            if rng.gen_bool(0.04) {
                b.connect(as_id, google_as, Relationship::Peer);
            }
            geo.add_asn(asn, profile.code, kind);
            country_ases.push((as_id, asn));
        }

        // Zipf-ish AS weights: the first AS dominates (Table 4's "Top ASN"
        // concentration).
        let weights: Vec<f64> = (0..country_ases.len())
            .map(|i| 1.0 / (i as f64 + 1.0).powf(1.1))
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let pick_as = |rng: &mut SmallRng| -> (AsId, u32) {
            let mut x = rng.gen_range(0.0..weight_sum);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return country_ases[i];
                }
                x -= w;
            }
            country_ases[country_ases.len() - 1]
        };

        // --- Resolvers (incl. the local "other" pool) ---
        let n_resolvers = config
            .scaled(profile.resolvers, &mut rng)
            .max(u32::from(profile.other.local_resolvers.min(2)));
        let mut pool = Vec::new();
        let mut placed = 0u32;
        while placed < n_resolvers {
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            let in_block = (n_resolvers - placed).min(254);
            for i in 0..in_block {
                let ip = Ipv4Addr::from(block + i + 1);
                let node = b.add_host(as_id, HostSpec::simple(ip));
                plans.push((node, HostPlan::Resolver));
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::RecursiveResolver,
                    country: profile.code,
                    asn,
                    vendor: None,
                    resolver_target: None,
                    middlebox: false,
                });
                if pool.len() < profile.other.local_resolvers as usize {
                    pool.push(ip);
                }
            }
            placed += in_block;
        }
        if pool.is_empty() {
            // Degenerate scale: fall back to Google so forwarders always
            // have a live upstream.
            pool.push(ResolverProject::Google.service_ip());
        }

        // --- Chain heads: country-local recursive forwarders that relay
        //     to Google — the "indirect consolidation" hop (Table 4) ---
        let n_transparent = config.scaled(profile.transparent, &mut rng);
        let other_share = f64::from(profile.mix.other()) / 100.0;
        let indirect = f64::from(profile.other.indirect_pct) / 100.0;
        let expected_chain_clients = (n_transparent as f64 * other_share * indirect).round() as u32;
        let n_chain_heads = if expected_chain_clients > 0 {
            (expected_chain_clients / 80).max(1)
        } else {
            0
        };
        let mut heads = Vec::new();
        for _ in 0..n_chain_heads {
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            let ip = Ipv4Addr::from(block + 1);
            let node = b.add_host(as_id, HostSpec::simple(ip));
            plans.push((
                node,
                HostPlan::Recursive {
                    resolver: ResolverProject::Google.service_ip(),
                    manipulation: Manipulation::None,
                    device: None,
                },
            ));
            truth.hosts.push(PlantedHost {
                ip,
                node,
                class: PlantedClass::RecursiveForwarder,
                country: profile.code,
                asn,
                vendor: None,
                resolver_target: Some(ResolverProject::Google.service_ip()),
                middlebox: false,
            });
            heads.push(ip);
        }

        // --- Transparent forwarders with the Figure 8 density model ---
        let pick_resolver =
            |rng: &mut SmallRng, pool: &[Ipv4Addr], heads: &[Ipv4Addr]| -> Ipv4Addr {
                let x = rng.gen_range(0..100u32);
                let m = &profile.mix;
                let g = u32::from(m.google);
                let c = g + u32::from(m.cloudflare);
                let q = c + u32::from(m.quad9);
                let o = q + u32::from(m.opendns);
                if x < g {
                    ResolverProject::Google.service_ip()
                } else if x < c {
                    ResolverProject::Cloudflare.service_ip()
                } else if x < q {
                    ResolverProject::Quad9.service_ip()
                } else if x < o {
                    ResolverProject::OpenDns.service_ip()
                } else if !heads.is_empty()
                    && rng.gen_range(0..100u32) < u32::from(profile.other.indirect_pct)
                {
                    heads[rng.gen_range(0..heads.len())]
                } else {
                    pool[rng.gen_range(0..pool.len())]
                }
            };

        let pick_vendor = |rng: &mut SmallRng, middlebox: bool| -> Option<DeviceProfile> {
            if !config.with_devices {
                return None;
            }
            // §6: ~23 % MikroTik overall, with half of the MikroTik
            // population in whole-/24 middlebox deployments: with 36 % of
            // addresses in middleboxes, 0.36·0.32 ≈ 0.64·0.18 ≈ 11.5 %
            // each side, totalling ≈23 %.
            let mikrotik_p = if middlebox { 0.32 } else { 0.18 };
            Some(if rng.gen_bool(mikrotik_p) {
                DeviceProfile::mikrotik()
            } else if rng.gen_bool(0.12) {
                DeviceProfile::with_mgmt(Vendor::Zyxel)
            } else if rng.gen_bool(0.1) {
                DeviceProfile::with_mgmt(Vendor::DLink)
            } else if rng.gen_bool(0.05) {
                DeviceProfile::with_mgmt(Vendor::Huawei)
            } else {
                DeviceProfile::generic()
            })
        };

        let heads_ref = heads;
        // Full /24 middleboxes: 36 % of transparent addresses at full
        // scale. Probabilistic rounding of the fractional part keeps the
        // *expected* share on target even when single countries are too
        // small for a whole middlebox; the hard cap keeps country totals
        // exact.
        let mb_expect = (n_transparent as f64 * 0.36) / 254.0;
        let mut n_middleboxes = mb_expect.floor() as u32;
        if rng.gen_bool(mb_expect.fract().clamp(0.0, 1.0)) {
            n_middleboxes += 1;
        }
        n_middleboxes = n_middleboxes.min(n_transparent / 254);
        let mut remaining = n_transparent.saturating_sub(n_middleboxes * 254);
        for _ in 0..n_middleboxes {
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            let primary = Ipv4Addr::from(block + 1);
            let extras: Vec<Ipv4Addr> = (2..=254).map(|i| Ipv4Addr::from(block + i)).collect();
            let node = b.add_host(
                as_id,
                HostSpec {
                    ip: primary,
                    extra_ips: extras.clone(),
                    access_routers: vec![],
                    link_latency: SimDuration::from_millis(2),
                },
            );
            let resolver = pick_resolver(&mut rng, &pool, &heads_ref);
            let device = pick_vendor(&mut rng, true);
            let vendor = device.as_ref().map(|d| d.vendor);
            plans.push((node, HostPlan::Transparent { resolver, device }));
            for ip in std::iter::once(primary).chain(extras) {
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::TransparentForwarder,
                    country: profile.code,
                    asn,
                    vendor,
                    resolver_target: Some(resolver),
                    middlebox: true,
                });
            }
        }
        // Sparse (1..=25 per /24, 26 % of addresses) and medium prefixes.
        let sparse_budget = (n_transparent as f64 * 0.26).round() as u32;
        let mut sparse_left = sparse_budget.min(remaining);
        while sparse_left > 0 {
            let density = rng.gen_range(1..=25u32).min(sparse_left);
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            for i in 0..density {
                let ip = Ipv4Addr::from(block + i + 1);
                let node = b.add_host(as_id, HostSpec::simple(ip));
                let resolver = pick_resolver(&mut rng, &pool, &heads_ref);
                let device = pick_vendor(&mut rng, false);
                let vendor = device.as_ref().map(|d| d.vendor);
                plans.push((node, HostPlan::Transparent { resolver, device }));
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::TransparentForwarder,
                    country: profile.code,
                    asn,
                    vendor,
                    resolver_target: Some(resolver),
                    middlebox: false,
                });
            }
            sparse_left -= density;
            remaining -= density;
        }
        while remaining > 0 {
            let density = rng.gen_range(26..=253u32).min(remaining);
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            for i in 0..density {
                let ip = Ipv4Addr::from(block + i + 1);
                let node = b.add_host(as_id, HostSpec::simple(ip));
                let resolver = pick_resolver(&mut rng, &pool, &heads_ref);
                let device = pick_vendor(&mut rng, false);
                let vendor = device.as_ref().map(|d| d.vendor);
                plans.push((node, HostPlan::Transparent { resolver, device }));
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::TransparentForwarder,
                    country: profile.code,
                    asn,
                    vendor,
                    resolver_target: Some(resolver),
                    middlebox: false,
                });
            }
            remaining -= density;
        }

        // --- Recursive forwarders (the 72 % majority) ---
        let n_recursive = config
            .scaled(profile.recursive_forwarders(), &mut rng)
            .saturating_sub(n_chain_heads);
        let mut left = n_recursive;
        while left > 0 {
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            let in_block = left.min(200);
            for i in 0..in_block {
                let ip = Ipv4Addr::from(block + i + 1);
                let node = b.add_host(as_id, HostSpec::simple(ip));
                let resolver = match rng.gen_range(0..100) {
                    0..=39 => ResolverProject::Google.service_ip(),
                    40..=54 => ResolverProject::Cloudflare.service_ip(),
                    _ => pool[rng.gen_range(0..pool.len())],
                };
                let device = if config.with_devices && rng.gen_bool(0.05) {
                    Some(DeviceProfile::mikrotik())
                } else {
                    None
                };
                let vendor = device.as_ref().map(|d| d.vendor);
                plans.push((
                    node,
                    HostPlan::Recursive {
                        resolver,
                        manipulation: Manipulation::None,
                        device,
                    },
                ));
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::RecursiveForwarder,
                    country: profile.code,
                    asn,
                    vendor,
                    resolver_target: Some(resolver),
                    middlebox: false,
                });
            }
            left -= in_block;
        }

        // --- Manipulated forwarders (Shadowserver-only hosts) ---
        let n_manipulated = config.scaled(profile.manipulated(), &mut rng);
        let mut left = n_manipulated;
        while left > 0 {
            let (as_id, asn) = pick_as(&mut rng);
            let block = alloc.next();
            geo.add_prefix24(Ipv4Addr::from(block), asn);
            let in_block = left.min(200);
            for i in 0..in_block {
                let ip = Ipv4Addr::from(block + i + 1);
                let node = b.add_host(as_id, HostSpec::simple(ip));
                let resolver = pool[rng.gen_range(0..pool.len())];
                plans.push((
                    node,
                    HostPlan::Recursive {
                        resolver,
                        manipulation: Manipulation::ReplaceARecords(Ipv4Addr::new(
                            100,
                            66,
                            rng.gen_range(0..255),
                            rng.gen_range(1..255),
                        )),
                        device: None,
                    },
                ));
                truth.hosts.push(PlantedHost {
                    ip,
                    node,
                    class: PlantedClass::ManipulatedForwarder,
                    country: profile.code,
                    asn,
                    vendor: None,
                    resolver_target: Some(resolver),
                    middlebox: false,
                });
            }
            left -= in_block;
        }
    }

    // Router space in 10/8 belongs to the backbone for geo purposes.
    geo.add_asn(64601, "USA", AsKind::Transit);
    geo.add_asn(64602, "USA", AsKind::Transit);
    geo.add_asn(64603, "USA", AsKind::Transit);
    geo.add_asn(64604, "USA", AsKind::Transit);
    for i in 0..6u32 {
        geo.add_asn(64611 + i, "USA", AsKind::Transit);
    }

    // ---- Build & install -------------------------------------------------------
    let topo = b.build().expect("generated topology is valid");
    // Register router prefixes now that the topology assigned them.
    for as_idx in 0..topo.as_count() {
        let spec = topo.as_spec(AsId(as_idx as u32));
        for r in &spec.transit_routers {
            geo.add_prefix24(*r, spec.asn);
        }
    }

    // The fault plan is salted from the *generation* seed, which is shared
    // by every shard — per-flow fault verdicts are therefore invariant
    // under the shard count even though per-shard sim seeds differ.
    let mut sim_config = SimConfig::for_shard(config.seed, spec.index);
    sim_config.faults = config.faults.clone().salted(config.seed);
    let mut sim = Simulator::new(topo, sim_config.clone());

    // Study infrastructure: every shard deploys its own full root → TLD →
    // authoritative stack, so recursive resolution never crosses shards.
    // Public resolvers and the population install through the blueprint,
    // which [`Internet::reset`] replays onto the reset simulator.
    let blueprint = WorldBlueprint {
        config: sim_config,
        study: StudyNodes {
            root: root_node,
            tld: tld_node,
            tld_ip: TLD_IP,
            auth: auth_node,
            auth_ip: AUTH_IP,
        },
        project_resolvers: project_nodes.iter().map(|(_, n)| *n).collect(),
        plans,
    };
    install_hosts(&mut sim, &blueprint);

    // ---- Scan target list -------------------------------------------------------
    // Duds and shuffle order draw from a per-shard stream: the shard's
    // probe order is deterministic, and reordering never changes *which*
    // hosts are probed — only the offline correlation sees the order.
    let mut trng = SmallRng::seed_from_u64(derive_seed(
        config.seed,
        TARGET_STREAM | u64::from(spec.index),
    ));
    let mut targets: Vec<Ipv4Addr> = truth.hosts.iter().map(|h| h.ip).collect();
    let dud_count = (targets.len() as f64 * config.dud_fraction) as usize;
    for _ in 0..dud_count {
        // 170/8 is never allocated by the generator: guaranteed silence.
        targets.push(Ipv4Addr::new(
            170,
            trng.gen_range(0..=255),
            trng.gen_range(0..=255),
            trng.gen_range(1..=254),
        ));
    }
    // Fisher-Yates with the shard's target RNG: deterministic shuffle.
    for i in (1..targets.len()).rev() {
        let j = trng.gen_range(0..=i);
        targets.swap(i, j);
    }

    Internet {
        sim,
        blueprint,
        fixtures: Fixtures {
            scanner,
            scanner_ip: SCANNER_IP,
            campaign_scanners,
            root_ip: ROOT_IP,
            tld_ip: TLD_IP,
            auth_ip: AUTH_IP,
            auth: auth_node,
            sensor1,
            sensor2,
            sensor3,
            sensor_addrs,
            victim,
            victim_ip: VICTIM_IP,
        },
        truth,
        geo,
        targets,
    }
}
