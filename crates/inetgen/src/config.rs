//! Generator configuration and scaling.

use netsim::FaultPlan;
use rand::Rng;

/// Which countries to instantiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountrySelection {
    /// Everything in the calibration table.
    All,
    /// The top `n` countries by transparent-forwarder count (plus the
    /// zero-transparent tail is excluded) — for focused experiments.
    TopByTransparent(usize),
    /// An explicit list of country codes.
    Codes(Vec<&'static str>),
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; the same seed yields a bit-identical Internet.
    pub seed: u64,
    /// Population scale denominator: a country with `N` full-scale hosts
    /// of a class receives `N / scale` (with probabilistic rounding of the
    /// remainder). `scale = 1` reproduces the full 2.1 M-host population;
    /// the default keeps benches in the seconds range.
    pub scale: u32,
    /// AS-count divisor. AS structure shrinks more gently than host
    /// counts so per-country AS diversity survives scaling.
    pub as_divisor: u32,
    /// Fraction of extra, unresponsive probe targets mixed into the scan
    /// target list (the real scan probes the whole IPv4 space; almost all
    /// targets never answer).
    pub dud_fraction: f64,
    /// Attach device profiles (MikroTik et al.) to forwarders.
    pub with_devices: bool,
    /// Country subset.
    pub countries: CountrySelection,
    /// Fault plane injected into every shard's simulator. The plan is
    /// salted from the *generation* seed (not the per-shard sim seed), so
    /// a given flow sees the same fault verdicts for any shard count.
    pub faults: FaultPlan,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xC0DE_2021,
            scale: 500,
            as_divisor: 25,
            dud_fraction: 0.10,
            with_devices: true,
            countries: CountrySelection::All,
            faults: FaultPlan::none(),
        }
    }
}

impl GenConfig {
    /// A small configuration for unit/integration tests (≈1k ODNS hosts).
    pub fn test_small() -> Self {
        GenConfig {
            scale: 2_000,
            as_divisor: 60,
            dud_fraction: 0.05,
            ..Self::default()
        }
    }

    /// A denser configuration for the prefix-density experiment: whole
    /// /24 middleboxes (254 forwarders behind one device) only materialize
    /// in countries whose scaled population clears several hundred hosts,
    /// so Figure 8 runs closer to full scale than the other experiments.
    pub fn density_scale() -> Self {
        GenConfig {
            scale: 60,
            as_divisor: 25,
            ..Self::default()
        }
    }

    /// Scale a full-scale count down, probabilistically rounding the
    /// remainder so expectations are preserved across many countries.
    pub fn scaled<R: Rng>(&self, full: u32, rng: &mut R) -> u32 {
        if self.scale <= 1 {
            return full;
        }
        let q = full / self.scale;
        let rem = full % self.scale;
        if rem > 0 && rng.gen_range(0..self.scale) < rem {
            q + 1
        } else {
            q
        }
    }

    /// Scale an AS count (at least 1).
    pub fn scaled_ases(&self, full: u16) -> u32 {
        (u32::from(full) / self.as_divisor).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn scaled_preserves_expectation() {
        let cfg = GenConfig {
            scale: 100,
            ..GenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 10_000;
        let total: u64 = (0..trials)
            .map(|_| u64::from(cfg.scaled(250, &mut rng)))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (2.3..2.7).contains(&mean),
            "mean {mean} should approximate 2.5"
        );
    }

    #[test]
    fn scale_one_is_identity() {
        let cfg = GenConfig {
            scale: 1,
            ..GenConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(cfg.scaled(123_456, &mut rng), 123_456);
    }

    #[test]
    fn ases_never_zero() {
        let cfg = GenConfig::default();
        assert_eq!(cfg.scaled_ases(1), 1);
        assert_eq!(cfg.scaled_ases(1236), 1236 / 25);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = GenConfig {
            scale: 100,
            ..GenConfig::default()
        };
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for full in [1u32, 99, 100, 101, 12345] {
            assert_eq!(cfg.scaled(full, &mut a), cfg.scaled(full, &mut b));
        }
    }
}
