//! Prefix-sharded world generation.
//!
//! A sharded census partitions the synthetic Internet into `K` disjoint
//! shards and builds one self-contained [`crate::Internet`] (with its own
//! [`netsim::Simulator`]) per shard. The partition key is the country:
//! every country owns a fixed, disjoint region of probe-address space
//! (see `build::Allocator`), so assigning countries to shards *is* a
//! disjoint prefix partition.
//!
//! Determinism contract: every per-country random decision is drawn from
//! a stream derived only from `(config.seed, country index)` via
//! [`netsim::shard::derive_seed`] — never from the shard count or from
//! other countries. Re-partitioning the same seed therefore replants the
//! byte-identical population in every country, which is what makes the
//! sharded census produce identical classification counts for any `K`
//! (`generate(config)` is exactly `generate_shard(config,
//! ShardSpec::solo())`).

use crate::build::{generate_shard, Internet};
use crate::config::GenConfig;

/// Which shard of how many a generated world is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's index, in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// The unsharded (single-simulator) world.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "a partition needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        ShardSpec { index, count }
    }

    /// All shards of a `count`-way partition.
    pub fn partition(count: u32) -> Vec<ShardSpec> {
        (0..count).map(|i| ShardSpec::new(i, count)).collect()
    }
}

/// Which shard a country (by its index in [`crate::COUNTRIES`]) belongs
/// to. Round-robin keeps the large head countries spread across shards so
/// shard workloads stay balanced.
pub fn shard_of_country(global_index: usize, shard_count: u32) -> u32 {
    (global_index as u32) % shard_count.max(1)
}

/// Generate every shard of a `count`-way partition, sequentially. Worker
/// pools that want generation *and* scanning off-thread should instead
/// call [`crate::generate_shard`] from their own threads.
pub fn generate_partition(config: &GenConfig, count: u32) -> Vec<Internet> {
    ShardSpec::partition(count)
        .into_iter()
        .map(|s| generate_shard(config, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_shard_zero_of_one() {
        assert_eq!(ShardSpec::solo(), ShardSpec::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let _ = ShardSpec::new(3, 3);
    }

    #[test]
    fn every_country_lands_in_exactly_one_shard() {
        for k in [1u32, 2, 3, 8] {
            for idx in 0..crate::COUNTRIES.len() {
                let s = shard_of_country(idx, k);
                assert!(s < k);
            }
            // Round-robin: all shards non-empty once indexes >= k exist.
            let hit: std::collections::HashSet<u32> = (0..crate::COUNTRIES.len())
                .map(|i| shard_of_country(i, k))
                .collect();
            assert_eq!(hit.len(), k as usize);
        }
    }
}
