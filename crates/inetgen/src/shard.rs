//! Prefix-sharded world generation.
//!
//! A sharded census partitions the synthetic Internet into `K` disjoint
//! shards and builds one self-contained [`crate::Internet`] (with its own
//! [`netsim::Simulator`]) per shard. The partition key is the country:
//! every country owns a fixed, disjoint region of probe-address space
//! (see `build::Allocator`), so assigning countries to shards *is* a
//! disjoint prefix partition.
//!
//! Determinism contract: every per-country random decision is drawn from
//! a stream derived only from `(config.seed, country index)` via
//! [`netsim::shard::derive_seed`] — never from the shard count or from
//! other countries. Re-partitioning the same seed therefore replants the
//! byte-identical population in every country, which is what makes the
//! sharded census produce identical classification counts for any `K`
//! (`generate(config)` is exactly `generate_shard(config,
//! ShardSpec::solo())`).

use crate::build::{generate_shard, Internet};
use crate::config::GenConfig;
use crate::geodb::GeoDb;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Which shard of how many a generated world is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's index, in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// The unsharded (single-simulator) world.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "a partition needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        ShardSpec { index, count }
    }

    /// All shards of a `count`-way partition.
    pub fn partition(count: u32) -> Vec<ShardSpec> {
        (0..count).map(|i| ShardSpec::new(i, count)).collect()
    }
}

/// Which shard a country (by its index in [`crate::COUNTRIES`]) belongs
/// to. Round-robin keeps the large head countries spread across shards so
/// shard workloads stay balanced.
///
/// Panics on `shard_count == 0`, exactly like [`ShardSpec::new`]: a
/// zero-way partition is a caller bug, and quietly mapping every country
/// to shard 0 would mask it.
pub fn shard_of_country(global_index: usize, shard_count: u32) -> u32 {
    assert!(shard_count >= 1, "a partition needs at least one shard");
    (global_index as u32) % shard_count
}

/// Generate every shard of a `count`-way partition, sequentially. Worker
/// pools that want generation *and* scanning off-thread should instead
/// call [`crate::generate_shard`] from their own threads — or use
/// [`run_sharded`], which owns that worker pool.
pub fn generate_partition(config: &GenConfig, count: u32) -> Vec<Internet> {
    ShardSpec::partition(count)
        .into_iter()
        .map(|s| generate_shard(config, s))
        .collect()
}

/// The merged result of driving one experiment over every shard of a
/// partition — what [`run_sharded`] returns.
#[derive(Debug)]
pub struct ShardedRun<T> {
    /// One experiment output per shard, in ascending shard order
    /// regardless of worker scheduling.
    pub outputs: Vec<T>,
    /// The union lookup database, merged in shard order. Disjoint
    /// per-country regions make the merge collision-free by construction.
    pub geo: GeoDb,
}

/// The sharded experiment runner: generate one self-contained world per
/// shard on a worker-thread pool, run `experiment` against it in place,
/// and hand back the outputs in deterministic shard order plus the merged
/// [`GeoDb`].
///
/// This is the generate-shard → run-on-worker → deterministic-merge
/// skeleton every sharded experiment driver shares; the census
/// (`analysis::run_census_sharded`) and the DNSRoute++ sweep
/// (`analysis::run_dnsroute_sharded`) both run on it. Each shard's
/// simulator lives and dies on one worker thread — worker `w` handles
/// shards `w, w + workers, w + 2·workers, …` — so the wall-clock cost of
/// a large experiment divides by the worker count while the partition
/// invariance of [`generate_shard`] keeps results independent of `K`.
///
/// The experiment closure receives the shard's [`ShardSpec`] and its
/// fully-generated [`Internet`] (mutable: scans and sweeps drive the
/// shard's own simulator). Only the closure's output and the shard's geo
/// database survive the worker; experiment-specific merging (record
/// streams, trace concatenation) is the caller's job.
pub fn run_sharded<T, F>(config: &GenConfig, shards: u32, experiment: F) -> ShardedRun<T>
where
    T: Send,
    F: Fn(ShardSpec, &mut Internet) -> T + Sync,
{
    let per_shard = drive_shards(shards, |index| {
        let spec = ShardSpec::new(index, shards);
        let mut world = generate_shard(config, spec);
        let output = experiment(spec, &mut world);
        // The world dies here, on the worker — only the output and the
        // geo database survive, keeping peak memory at one world per
        // worker however many shards run.
        (output, world.geo)
    });
    let mut geo: Option<GeoDb> = None;
    let mut outputs = Vec::with_capacity(per_shard.len());
    for (_, (output, shard_geo)) in per_shard {
        match &mut geo {
            None => geo = Some(shard_geo),
            Some(merged) => merged.merge(shard_geo),
        }
        outputs.push(output);
    }
    ShardedRun {
        outputs,
        geo: geo.expect("at least one shard"),
    }
}

/// The worker pool every sharded runner drives: `job(index)` runs once
/// per shard (worker `w` handles shards `w, w + workers, …`), and the
/// collected `(shard, output)` pairs come back sorted by shard index.
///
/// Panic handling: the first failing shard is recorded immediately, every
/// surviving worker stops picking up new shards at its next boundary
/// (prompt propagation — no burning minutes generating worlds for a run
/// that already failed), and the final panic names the failing shard.
fn drive_shards<T, F>(shards: u32, job: F) -> Vec<(u32, T)>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    assert!(shards >= 1, "a sharded run needs at least one shard");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .min(shards)
        .max(1);

    let failure: Mutex<Option<(u32, String)>> = Mutex::new(None);
    let mut per_shard: Vec<(u32, T)> = std::thread::scope(|scope| {
        let job = &job;
        let failure = &failure;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // detlint::allow(ad-hoc-spawn): this IS the sanctioned
                // run_sharded worker pool; outputs are re-sorted by shard
                // index below, so scheduling order cannot escape.
                scope.spawn(move || {
                    let mut collected = Vec::new();
                    let mut index = w;
                    while index < shards {
                        if failure.lock().unwrap().is_some() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| job(index))) {
                            Ok(output) => collected.push((index, output)),
                            Err(payload) => {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".to_string());
                                let mut slot = failure.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some((index, msg));
                                }
                                break;
                            }
                        }
                        index += workers;
                    }
                    collected
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker died outside a job"))
            .collect()
    });
    if let Some((shard, msg)) = failure.into_inner().unwrap() {
        panic!("shard {shard} worker panicked: {msg}");
    }
    // Deterministic order regardless of worker scheduling.
    per_shard.sort_by_key(|(shard, _)| *shard);
    per_shard
}

/// Generate-once, scan-many: a cache of warm per-shard worlds.
///
/// The first [`ShardWorldCache::run`] at a shard count generates each
/// shard's [`Internet`] exactly like [`run_sharded`] would; every later
/// run at the same count takes the warm world, [`Internet::reset`]s it to
/// its pre-scan state, and drives the experiment again — skipping world
/// generation entirely. Repeated sweeps (the scaling benches, parameter
/// studies, the million-target census) pay generation once instead of
/// once per sweep, and the reset contract keeps every run bit-identical
/// to a run over freshly generated worlds (property-tested in
/// `tests/warm_world_reuse.rs`).
///
/// Changing the shard count rebuilds the cache: shard worlds are
/// partition-specific. A shard whose experiment panics leaves its slot
/// empty, so the next run regenerates that world from scratch rather
/// than reusing one in an unknown state.
pub struct ShardWorldCache {
    config: GenConfig,
    count: u32,
    slots: Vec<Mutex<Option<Internet>>>,
    geo: Option<GeoDb>,
}

impl ShardWorldCache {
    /// A cache that generates worlds from `config`. No worlds are built
    /// until the first [`ShardWorldCache::run`].
    pub fn new(config: GenConfig) -> Self {
        ShardWorldCache {
            config,
            count: 0,
            slots: Vec::new(),
            geo: None,
        }
    }

    /// The generation config worlds are built from.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// How many shard worlds are currently cached (warm slots).
    pub fn warm_shards(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.lock().unwrap().is_some())
            .count()
    }

    /// Drop every cached world (e.g. to bound memory between phases).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.count = 0;
        self.geo = None;
    }

    /// Run `experiment` over every shard of a `shards`-way partition,
    /// exactly like [`run_sharded`] — but over cached worlds when warm
    /// ones exist. Semantics match [`run_sharded`] bit for bit: same
    /// outputs, same merged geo, same prompt panic propagation.
    pub fn run<T, F>(&mut self, shards: u32, experiment: F) -> ShardedRun<T>
    where
        T: Send,
        F: Fn(ShardSpec, &mut Internet) -> T + Sync,
    {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        if self.count != shards {
            self.slots = (0..shards).map(|_| Mutex::new(None)).collect();
            self.geo = None;
            self.count = shards;
        }
        let need_geo = self.geo.is_none();
        let config = &self.config;
        let slots = &self.slots;
        let per_shard = drive_shards(shards, |index| {
            // Take the world OUT of its slot for the experiment: no lock
            // is held while it runs, and a panicking experiment leaves
            // the slot empty (regenerate next run) instead of poisoned.
            let taken = slots[index as usize].lock().unwrap().take();
            let mut world = match taken {
                Some(mut warm) => {
                    warm.reset();
                    warm
                }
                None => generate_shard(config, ShardSpec::new(index, shards)),
            };
            let output = experiment(ShardSpec::new(index, shards), &mut world);
            let geo = need_geo.then(|| world.geo.clone());
            *slots[index as usize].lock().unwrap() = Some(world);
            (output, geo)
        });
        if need_geo {
            let mut merged: Option<GeoDb> = None;
            for (_, (_, shard_geo)) in &per_shard {
                let shard_geo = shard_geo.clone().expect("first run clones every shard geo");
                match &mut merged {
                    None => merged = Some(shard_geo),
                    Some(m) => m.merge(shard_geo),
                }
            }
            self.geo = Some(merged.expect("at least one shard"));
        }
        ShardedRun {
            outputs: per_shard.into_iter().map(|(_, (out, _))| out).collect(),
            geo: self.geo.clone().expect("merged geo cached above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_shard_zero_of_one() {
        assert_eq!(ShardSpec::solo(), ShardSpec::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let _ = ShardSpec::new(3, 3);
    }

    #[test]
    fn run_sharded_outputs_in_shard_order() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let run = run_sharded(&config, 3, |spec, world| (spec.index, world.targets.len()));
        assert_eq!(run.outputs.len(), 3);
        for (i, (index, _)) in run.outputs.iter().enumerate() {
            assert_eq!(*index, i as u32, "outputs sorted by shard index");
        }
        // The merged geo covers every shard's population.
        let total: usize = run.outputs.iter().map(|(_, n)| n).sum();
        assert!(total > 0);
        let solo = crate::generate(&config);
        assert_eq!(total, solo.targets.len());
        for host in &solo.truth.hosts {
            assert_eq!(run.geo.asn_of(host.ip), Some(host.asn));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_country_rejects_zero_shards() {
        let _ = shard_of_country(0, 0);
    }

    #[test]
    #[should_panic(expected = "shard 1 worker panicked: boom in shard 1")]
    fn worker_panic_names_the_failing_shard() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        run_sharded(&config, 2, |spec, _world| {
            if spec.index == 1 {
                panic!("boom in shard {}", spec.index);
            }
            0u32
        });
    }

    #[test]
    fn cached_worlds_rerun_identically_and_survive_count_changes() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut cache = ShardWorldCache::new(config.clone());
        let experiment = |_: ShardSpec, world: &mut Internet| world.targets.clone();
        let cold = cache.run(2, experiment);
        assert_eq!(cache.warm_shards(), 2);
        let warm = cache.run(2, experiment);
        assert_eq!(cold.outputs, warm.outputs, "warm rerun matches cold");
        let fresh = run_sharded(&config, 2, experiment);
        assert_eq!(cold.outputs, fresh.outputs, "cache matches run_sharded");
        assert_eq!(warm.geo.prefix_count(), fresh.geo.prefix_count());
        assert_eq!(warm.geo.asn_count(), fresh.geo.asn_count());
        for ip in fresh.outputs.iter().flatten() {
            assert_eq!(warm.geo.asn_of(*ip), fresh.geo.asn_of(*ip));
        }
        // Count change rebuilds the partition.
        let three = cache.run(3, experiment);
        assert_eq!(cache.warm_shards(), 3);
        let total: usize = three.outputs.iter().map(|t| t.len()).sum();
        let total2: usize = cold.outputs.iter().map(|t| t.len()).sum();
        assert_eq!(total, total2, "partition change keeps the population");
    }

    #[test]
    fn cache_regenerates_a_slot_after_an_experiment_panic() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut cache = ShardWorldCache::new(config);
        let baseline = cache.run(2, |_, world| world.targets.clone());
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.run(2, |spec, _world: &mut Internet| {
                if spec.index == 1 {
                    panic!("mid-experiment failure");
                }
                0u32
            })
        }));
        assert!(boom.is_err());
        assert!(cache.warm_shards() < 2, "failed shard's slot is empty");
        let after = cache.run(2, |_, world| world.targets.clone());
        assert_eq!(baseline.outputs, after.outputs, "regenerated identically");
    }

    #[test]
    fn every_country_lands_in_exactly_one_shard() {
        for k in [1u32, 2, 3, 8] {
            for idx in 0..crate::COUNTRIES.len() {
                let s = shard_of_country(idx, k);
                assert!(s < k);
            }
            // Round-robin: all shards non-empty once indexes >= k exist.
            let hit: std::collections::HashSet<u32> = (0..crate::COUNTRIES.len())
                .map(|i| shard_of_country(i, k))
                .collect();
            assert_eq!(hit.len(), k as usize);
        }
    }
}
