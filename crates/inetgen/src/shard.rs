//! Prefix-sharded world generation.
//!
//! A sharded census partitions the synthetic Internet into `K` disjoint
//! shards and builds one self-contained [`crate::Internet`] (with its own
//! [`netsim::Simulator`]) per shard. The partition key is the country:
//! every country owns a fixed, disjoint region of probe-address space
//! (see `build::Allocator`), so assigning countries to shards *is* a
//! disjoint prefix partition.
//!
//! Determinism contract: every per-country random decision is drawn from
//! a stream derived only from `(config.seed, country index)` via
//! [`netsim::shard::derive_seed`] — never from the shard count or from
//! other countries. Re-partitioning the same seed therefore replants the
//! byte-identical population in every country, which is what makes the
//! sharded census produce identical classification counts for any `K`
//! (`generate(config)` is exactly `generate_shard(config,
//! ShardSpec::solo())`).

use crate::build::{generate_shard, Internet};
use crate::config::GenConfig;
use crate::geodb::GeoDb;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Which shard of how many a generated world is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's index, in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// The unsharded (single-simulator) world.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "a partition needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        ShardSpec { index, count }
    }

    /// All shards of a `count`-way partition.
    pub fn partition(count: u32) -> Vec<ShardSpec> {
        (0..count).map(|i| ShardSpec::new(i, count)).collect()
    }
}

/// Which shard a country (by its index in [`crate::COUNTRIES`]) belongs
/// to. Round-robin keeps the large head countries spread across shards so
/// shard workloads stay balanced.
///
/// Panics on `shard_count == 0`, exactly like [`ShardSpec::new`]: a
/// zero-way partition is a caller bug, and quietly mapping every country
/// to shard 0 would mask it.
pub fn shard_of_country(global_index: usize, shard_count: u32) -> u32 {
    assert!(shard_count >= 1, "a partition needs at least one shard");
    (global_index as u32) % shard_count
}

/// Generate every shard of a `count`-way partition, sequentially. Worker
/// pools that want generation *and* scanning off-thread should instead
/// call [`crate::generate_shard`] from their own threads — or use
/// [`run_sharded`], which owns that worker pool.
pub fn generate_partition(config: &GenConfig, count: u32) -> Vec<Internet> {
    ShardSpec::partition(count)
        .into_iter()
        .map(|s| generate_shard(config, s))
        .collect()
}

/// The merged result of driving one experiment over every shard of a
/// partition — what [`run_sharded`] returns.
#[derive(Debug)]
pub struct ShardedRun<T> {
    /// One experiment output per shard, in ascending shard order
    /// regardless of worker scheduling.
    pub outputs: Vec<T>,
    /// The union lookup database, merged in shard order. Disjoint
    /// per-country regions make the merge collision-free by construction.
    pub geo: GeoDb,
}

/// The sharded experiment runner: generate one self-contained world per
/// shard on a worker-thread pool, run `experiment` against it in place,
/// and hand back the outputs in deterministic shard order plus the merged
/// [`GeoDb`].
///
/// This is the generate-shard → run-on-worker → deterministic-merge
/// skeleton every sharded experiment driver shares; the census
/// (`analysis::run_census_sharded`) and the DNSRoute++ sweep
/// (`analysis::run_dnsroute_sharded`) both run on it. Each shard's
/// simulator lives and dies on one worker thread — worker `w` handles
/// shards `w, w + workers, w + 2·workers, …` — so the wall-clock cost of
/// a large experiment divides by the worker count while the partition
/// invariance of [`generate_shard`] keeps results independent of `K`.
///
/// The experiment closure receives the shard's [`ShardSpec`] and its
/// fully-generated [`Internet`] (mutable: scans and sweeps drive the
/// shard's own simulator). Only the closure's output and the shard's geo
/// database survive the worker; experiment-specific merging (record
/// streams, trace concatenation) is the caller's job.
pub fn run_sharded<T, F>(config: &GenConfig, shards: u32, experiment: F) -> ShardedRun<T>
where
    T: Send,
    F: Fn(ShardSpec, &mut Internet) -> T + Sync,
{
    let per_shard = drive_shards(shards, |index| {
        let spec = ShardSpec::new(index, shards);
        let mut world = generate_shard(config, spec);
        let output = experiment(spec, &mut world);
        // The world dies here, on the worker — only the output and the
        // geo database survive, keeping peak memory at one world per
        // worker however many shards run.
        (output, world.geo)
    });
    let mut geo: Option<GeoDb> = None;
    let mut outputs = Vec::with_capacity(per_shard.len());
    for (_, (output, shard_geo)) in per_shard {
        match &mut geo {
            None => geo = Some(shard_geo),
            Some(merged) => merged.merge(shard_geo),
        }
        outputs.push(output);
    }
    ShardedRun {
        outputs,
        geo: geo.expect("at least one shard"),
    }
}

/// The outcome of a gracefully-degraded sharded run: partial results plus
/// a ledger of the shards that failed (twice — every job gets one retry).
///
/// Unlike [`ShardedRun`], outputs carry their shard index explicitly,
/// because failed shards leave gaps; [`DegradedRun::coverage`] quantifies
/// how much of the partition the surviving outputs represent.
#[derive(Debug)]
pub struct DegradedRun<T> {
    /// `(shard, output)` for every shard that completed, in ascending
    /// shard order.
    pub outputs: Vec<(u32, T)>,
    /// The union lookup database over the *surviving* shards only.
    pub geo: GeoDb,
    /// Shards whose job panicked twice, in ascending shard order, each
    /// with the retried panic's message.
    pub failures: Vec<ShardFailure>,
    /// How many shards the partition had in total.
    pub total_shards: u32,
}

impl<T> DegradedRun<T> {
    /// Fraction of the partition that completed, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.outputs.len() as f64 / f64::from(self.total_shards)
    }

    /// Whether every shard completed (no degradation happened).
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// [`run_sharded`] with graceful degradation: a shard whose job panics is
/// retried once, and a shard that fails twice is *recorded* rather than
/// aborting the run — every surviving shard still completes, and the
/// caller gets partial results plus the failure ledger.
///
/// Use this for long campaigns where losing 1 shard of 64 should cost
/// 1/64th of the census, not the whole night's run. Callers must treat a
/// [`DegradedRun`] with failures as a *lower bound*: absolute counts are
/// missing the failed shards' populations (rates within surviving shards
/// are unaffected, because shards are disjoint by construction).
pub fn run_sharded_degraded<T, F>(config: &GenConfig, shards: u32, experiment: F) -> DegradedRun<T>
where
    T: Send,
    F: Fn(ShardSpec, &mut Internet) -> T + Sync,
{
    let (per_shard, failures) = drive_shards_inner(shards, FailureMode::Degrade, |index| {
        let spec = ShardSpec::new(index, shards);
        let mut world = generate_shard(config, spec);
        let output = experiment(spec, &mut world);
        (output, world.geo)
    });
    let mut geo: Option<GeoDb> = None;
    let mut outputs = Vec::with_capacity(per_shard.len());
    for (shard, (output, shard_geo)) in per_shard {
        match &mut geo {
            None => geo = Some(shard_geo),
            Some(merged) => merged.merge(shard_geo),
        }
        outputs.push((shard, output));
    }
    // An all-shards-failed run still reports the paper's 99.9 % geo
    // coverage semantics, not the derived (full-miss) default.
    let geo = match geo {
        Some(geo) => geo,
        None => GeoDb::new(),
    };
    DegradedRun {
        outputs,
        geo,
        failures,
        total_shards: shards,
    }
}

/// A shard whose job failed — panicked twice, once on the original run
/// and once on the automatic retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The failing shard's index.
    pub shard: u32,
    /// The panic message of the *second* (retried) failure.
    pub message: String,
}

/// What a sharded runner does when a shard job fails even after retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureMode {
    /// Record the first failure, stop every worker at its next boundary,
    /// and panic after the pool drains (the [`drive_shards`] contract).
    FailFast,
    /// Record every failure and keep the surviving shards running; the
    /// caller receives partial results plus the failure ledger.
    Degrade,
}

/// The worker pool every sharded runner drives: `job(index)` runs once
/// per shard (worker `w` handles shards `w, w + workers, …`), and the
/// collected `(shard, output)` pairs come back sorted by shard index.
///
/// Panic handling: a panicking job is retried exactly once on the same
/// worker — a transient failure (resource blip, once-flaky experiment)
/// costs one extra world generation instead of the whole run. A shard
/// that fails twice is deterministic-broken: the first such shard is
/// recorded, every surviving worker stops picking up new shards at its
/// next boundary (prompt propagation — no burning minutes generating
/// worlds for a run that already failed), and the final panic names the
/// failing shard.
fn drive_shards<T, F>(shards: u32, job: F) -> Vec<(u32, T)>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let (per_shard, failures) = drive_shards_inner(shards, FailureMode::FailFast, job);
    if let Some(ShardFailure { shard, message }) = failures.into_iter().next() {
        panic!("shard {shard} worker panicked: {message}");
    }
    per_shard
}

fn drive_shards_inner<T, F>(
    shards: u32,
    mode: FailureMode,
    job: F,
) -> (Vec<(u32, T)>, Vec<ShardFailure>)
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    assert!(shards >= 1, "a sharded run needs at least one shard");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .min(shards)
        .max(1);

    // Failures in the order they were *recorded*; under FailFast only the
    // first entry matters (workers stop once it exists).
    let failures: Mutex<Vec<ShardFailure>> = Mutex::new(Vec::new());
    let mut per_shard: Vec<(u32, T)> = std::thread::scope(|scope| {
        let job = &job;
        let failures = &failures;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // detlint::allow(ad-hoc-spawn): this IS the sanctioned
                // run_sharded worker pool; outputs are re-sorted by shard
                // index below, so scheduling order cannot escape.
                scope.spawn(move || {
                    let mut collected = Vec::new();
                    let mut index = w;
                    while index < shards {
                        if mode == FailureMode::FailFast && !failures.lock().unwrap().is_empty() {
                            break;
                        }
                        let attempt = || catch_unwind(AssertUnwindSafe(|| job(index)));
                        // Retry a panicked job once before giving up on
                        // the shard: transient blips recover, determinis-
                        // tic failures reproduce and get recorded.
                        match attempt().or_else(|_first| attempt()) {
                            Ok(output) => collected.push((index, output)),
                            Err(payload) => {
                                let message = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".to_string());
                                failures.lock().unwrap().push(ShardFailure {
                                    shard: index,
                                    message,
                                });
                                if mode == FailureMode::FailFast {
                                    break;
                                }
                            }
                        }
                        index += workers;
                    }
                    collected
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker died outside a job"))
            .collect()
    });
    // Deterministic order regardless of worker scheduling.
    per_shard.sort_by_key(|(shard, _)| *shard);
    let mut failed = failures.into_inner().unwrap();
    if mode == FailureMode::Degrade {
        failed.sort_by_key(|f| f.shard);
    }
    (per_shard, failed)
}

/// Generate-once, scan-many: a cache of warm per-shard worlds.
///
/// The first [`ShardWorldCache::run`] at a shard count generates each
/// shard's [`Internet`] exactly like [`run_sharded`] would; every later
/// run at the same count takes the warm world, [`Internet::reset`]s it to
/// its pre-scan state, and drives the experiment again — skipping world
/// generation entirely. Repeated sweeps (the scaling benches, parameter
/// studies, the million-target census) pay generation once instead of
/// once per sweep, and the reset contract keeps every run bit-identical
/// to a run over freshly generated worlds (property-tested in
/// `tests/warm_world_reuse.rs`).
///
/// Changing the shard count rebuilds the cache: shard worlds are
/// partition-specific. A shard whose experiment panics leaves its slot
/// empty, so the next run regenerates that world from scratch rather
/// than reusing one in an unknown state.
pub struct ShardWorldCache {
    config: GenConfig,
    count: u32,
    slots: Vec<Mutex<Option<Internet>>>,
    geo: Option<GeoDb>,
}

impl ShardWorldCache {
    /// A cache that generates worlds from `config`. No worlds are built
    /// until the first [`ShardWorldCache::run`].
    pub fn new(config: GenConfig) -> Self {
        ShardWorldCache {
            config,
            count: 0,
            slots: Vec::new(),
            geo: None,
        }
    }

    /// The generation config worlds are built from.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// How many shard worlds are currently cached (warm slots).
    pub fn warm_shards(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.lock().unwrap().is_some())
            .count()
    }

    /// Drop every cached world (e.g. to bound memory between phases).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.count = 0;
        self.geo = None;
    }

    /// Run `experiment` over every shard of a `shards`-way partition,
    /// exactly like [`run_sharded`] — but over cached worlds when warm
    /// ones exist. Semantics match [`run_sharded`] bit for bit: same
    /// outputs, same merged geo, same prompt panic propagation.
    pub fn run<T, F>(&mut self, shards: u32, experiment: F) -> ShardedRun<T>
    where
        T: Send,
        F: Fn(ShardSpec, &mut Internet) -> T + Sync,
    {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        if self.count != shards {
            self.slots = (0..shards).map(|_| Mutex::new(None)).collect();
            self.geo = None;
            self.count = shards;
        }
        let need_geo = self.geo.is_none();
        let config = &self.config;
        let slots = &self.slots;
        let per_shard = drive_shards(shards, |index| {
            // Take the world OUT of its slot for the experiment: no lock
            // is held while it runs, and a panicking experiment leaves
            // the slot empty (regenerate next run) instead of poisoned.
            let taken = slots[index as usize].lock().unwrap().take();
            let mut world = match taken {
                Some(mut warm) => {
                    warm.reset();
                    warm
                }
                None => generate_shard(config, ShardSpec::new(index, shards)),
            };
            let output = experiment(ShardSpec::new(index, shards), &mut world);
            let geo = need_geo.then(|| world.geo.clone());
            *slots[index as usize].lock().unwrap() = Some(world);
            (output, geo)
        });
        if need_geo {
            let mut merged: Option<GeoDb> = None;
            for (_, (_, shard_geo)) in &per_shard {
                let shard_geo = shard_geo.clone().expect("first run clones every shard geo");
                match &mut merged {
                    None => merged = Some(shard_geo),
                    Some(m) => m.merge(shard_geo),
                }
            }
            self.geo = Some(merged.expect("at least one shard"));
        }
        ShardedRun {
            outputs: per_shard.into_iter().map(|(_, (out, _))| out).collect(),
            geo: self.geo.clone().expect("merged geo cached above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_shard_zero_of_one() {
        assert_eq!(ShardSpec::solo(), ShardSpec::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let _ = ShardSpec::new(3, 3);
    }

    #[test]
    fn run_sharded_outputs_in_shard_order() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let run = run_sharded(&config, 3, |spec, world| (spec.index, world.targets.len()));
        assert_eq!(run.outputs.len(), 3);
        for (i, (index, _)) in run.outputs.iter().enumerate() {
            assert_eq!(*index, i as u32, "outputs sorted by shard index");
        }
        // The merged geo covers every shard's population.
        let total: usize = run.outputs.iter().map(|(_, n)| n).sum();
        assert!(total > 0);
        let solo = crate::generate(&config);
        assert_eq!(total, solo.targets.len());
        for host in &solo.truth.hosts {
            assert_eq!(run.geo.asn_of(host.ip), Some(host.asn));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_country_rejects_zero_shards() {
        let _ = shard_of_country(0, 0);
    }

    #[test]
    #[should_panic(expected = "shard 1 worker panicked: boom in shard 1")]
    fn worker_panic_names_the_failing_shard() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        run_sharded(&config, 2, |spec, _world| {
            if spec.index == 1 {
                panic!("boom in shard {}", spec.index);
            }
            0u32
        });
    }

    #[test]
    fn one_transient_panic_recovers_via_retry() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let tripped = AtomicBool::new(false);
        let run = run_sharded(&config, 2, |spec, world| {
            if spec.index == 1 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient blip in shard {}", spec.index);
            }
            world.targets.len()
        });
        assert!(tripped.load(Ordering::SeqCst), "the flaky path ran");
        assert_eq!(run.outputs.len(), 2, "retry recovered the flaky shard");
        let clean = run_sharded(&config, 2, |_, world| world.targets.len());
        assert_eq!(run.outputs, clean.outputs, "retried run matches clean run");
    }

    #[test]
    fn degraded_run_reports_partial_results_and_failures() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let run = run_sharded_degraded(&config, 3, |spec, world| {
            if spec.index == 1 {
                panic!("deterministic failure in shard {}", spec.index);
            }
            world.targets.clone()
        });
        assert!(!run.is_complete());
        assert_eq!(run.total_shards, 3);
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].shard, 1);
        assert!(run.failures[0].message.contains("deterministic failure"));
        let shards: Vec<u32> = run.outputs.iter().map(|(s, _)| *s).collect();
        assert_eq!(shards, vec![0, 2], "surviving shards, in order");
        assert!((run.coverage() - 2.0 / 3.0).abs() < 1e-9);
        // Surviving shards' outputs are bit-identical to a healthy run's.
        let healthy = run_sharded(&config, 3, |_, world| world.targets.clone());
        assert_eq!(run.outputs[0].1, healthy.outputs[0]);
        assert_eq!(run.outputs[1].1, healthy.outputs[2]);
        // The geo covers exactly the surviving populations.
        for (_, targets) in &run.outputs {
            for ip in targets {
                assert_eq!(run.geo.asn_of(*ip), healthy.geo.asn_of(*ip));
            }
        }
    }

    #[test]
    fn degraded_run_with_no_failures_matches_run_sharded() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let degraded = run_sharded_degraded(&config, 2, |_, world| world.targets.clone());
        assert!(degraded.is_complete());
        assert_eq!(degraded.coverage(), 1.0);
        let full = run_sharded(&config, 2, |_, world| world.targets.clone());
        let outputs: Vec<_> = degraded.outputs.into_iter().map(|(_, t)| t).collect();
        assert_eq!(outputs, full.outputs);
    }

    #[test]
    fn cached_worlds_rerun_identically_and_survive_count_changes() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut cache = ShardWorldCache::new(config.clone());
        let experiment = |_: ShardSpec, world: &mut Internet| world.targets.clone();
        let cold = cache.run(2, experiment);
        assert_eq!(cache.warm_shards(), 2);
        let warm = cache.run(2, experiment);
        assert_eq!(cold.outputs, warm.outputs, "warm rerun matches cold");
        let fresh = run_sharded(&config, 2, experiment);
        assert_eq!(cold.outputs, fresh.outputs, "cache matches run_sharded");
        assert_eq!(warm.geo.prefix_count(), fresh.geo.prefix_count());
        assert_eq!(warm.geo.asn_count(), fresh.geo.asn_count());
        for ip in fresh.outputs.iter().flatten() {
            assert_eq!(warm.geo.asn_of(*ip), fresh.geo.asn_of(*ip));
        }
        // Count change rebuilds the partition.
        let three = cache.run(3, experiment);
        assert_eq!(cache.warm_shards(), 3);
        let total: usize = three.outputs.iter().map(|t| t.len()).sum();
        let total2: usize = cold.outputs.iter().map(|t| t.len()).sum();
        assert_eq!(total, total2, "partition change keeps the population");
    }

    #[test]
    fn cache_regenerates_a_slot_after_an_experiment_panic() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let mut cache = ShardWorldCache::new(config);
        let baseline = cache.run(2, |_, world| world.targets.clone());
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.run(2, |spec, _world: &mut Internet| {
                if spec.index == 1 {
                    panic!("mid-experiment failure");
                }
                0u32
            })
        }));
        assert!(boom.is_err());
        assert!(cache.warm_shards() < 2, "failed shard's slot is empty");
        let after = cache.run(2, |_, world| world.targets.clone());
        assert_eq!(baseline.outputs, after.outputs, "regenerated identically");
    }

    #[test]
    fn every_country_lands_in_exactly_one_shard() {
        for k in [1u32, 2, 3, 8] {
            for idx in 0..crate::COUNTRIES.len() {
                let s = shard_of_country(idx, k);
                assert!(s < k);
            }
            // Round-robin: all shards non-empty once indexes >= k exist.
            let hit: std::collections::HashSet<u32> = (0..crate::COUNTRIES.len())
                .map(|i| shard_of_country(i, k))
                .collect();
            assert_eq!(hit.len(), k as usize);
        }
    }
}
