//! Prefix-sharded world generation.
//!
//! A sharded census partitions the synthetic Internet into `K` disjoint
//! shards and builds one self-contained [`crate::Internet`] (with its own
//! [`netsim::Simulator`]) per shard. The partition key is the country:
//! every country owns a fixed, disjoint region of probe-address space
//! (see `build::Allocator`), so assigning countries to shards *is* a
//! disjoint prefix partition.
//!
//! Determinism contract: every per-country random decision is drawn from
//! a stream derived only from `(config.seed, country index)` via
//! [`netsim::shard::derive_seed`] — never from the shard count or from
//! other countries. Re-partitioning the same seed therefore replants the
//! byte-identical population in every country, which is what makes the
//! sharded census produce identical classification counts for any `K`
//! (`generate(config)` is exactly `generate_shard(config,
//! ShardSpec::solo())`).

use crate::build::{generate_shard, Internet};
use crate::config::GenConfig;
use crate::geodb::GeoDb;

/// Which shard of how many a generated world is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's index, in `0..count`.
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
}

impl ShardSpec {
    /// The unsharded (single-simulator) world.
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "a partition needs at least one shard");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        ShardSpec { index, count }
    }

    /// All shards of a `count`-way partition.
    pub fn partition(count: u32) -> Vec<ShardSpec> {
        (0..count).map(|i| ShardSpec::new(i, count)).collect()
    }
}

/// Which shard a country (by its index in [`crate::COUNTRIES`]) belongs
/// to. Round-robin keeps the large head countries spread across shards so
/// shard workloads stay balanced.
pub fn shard_of_country(global_index: usize, shard_count: u32) -> u32 {
    (global_index as u32) % shard_count.max(1)
}

/// Generate every shard of a `count`-way partition, sequentially. Worker
/// pools that want generation *and* scanning off-thread should instead
/// call [`crate::generate_shard`] from their own threads — or use
/// [`run_sharded`], which owns that worker pool.
pub fn generate_partition(config: &GenConfig, count: u32) -> Vec<Internet> {
    ShardSpec::partition(count)
        .into_iter()
        .map(|s| generate_shard(config, s))
        .collect()
}

/// The merged result of driving one experiment over every shard of a
/// partition — what [`run_sharded`] returns.
#[derive(Debug)]
pub struct ShardedRun<T> {
    /// One experiment output per shard, in ascending shard order
    /// regardless of worker scheduling.
    pub outputs: Vec<T>,
    /// The union lookup database, merged in shard order. Disjoint
    /// per-country regions make the merge collision-free by construction.
    pub geo: GeoDb,
}

/// The sharded experiment runner: generate one self-contained world per
/// shard on a worker-thread pool, run `experiment` against it in place,
/// and hand back the outputs in deterministic shard order plus the merged
/// [`GeoDb`].
///
/// This is the generate-shard → run-on-worker → deterministic-merge
/// skeleton every sharded experiment driver shares; the census
/// (`analysis::run_census_sharded`) and the DNSRoute++ sweep
/// (`analysis::run_dnsroute_sharded`) both run on it. Each shard's
/// simulator lives and dies on one worker thread — worker `w` handles
/// shards `w, w + workers, w + 2·workers, …` — so the wall-clock cost of
/// a large experiment divides by the worker count while the partition
/// invariance of [`generate_shard`] keeps results independent of `K`.
///
/// The experiment closure receives the shard's [`ShardSpec`] and its
/// fully-generated [`Internet`] (mutable: scans and sweeps drive the
/// shard's own simulator). Only the closure's output and the shard's geo
/// database survive the worker; experiment-specific merging (record
/// streams, trace concatenation) is the caller's job.
pub fn run_sharded<T, F>(config: &GenConfig, shards: u32, experiment: F) -> ShardedRun<T>
where
    T: Send,
    F: Fn(ShardSpec, &mut Internet) -> T + Sync,
{
    assert!(shards >= 1, "a sharded run needs at least one shard");
    let workers = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .min(shards)
        .max(1);

    let mut per_shard: Vec<(u32, T, GeoDb)> = std::thread::scope(|scope| {
        let experiment = &experiment;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut collected = Vec::new();
                    let mut index = w;
                    while index < shards {
                        let spec = ShardSpec::new(index, shards);
                        let mut world = generate_shard(config, spec);
                        let output = experiment(spec, &mut world);
                        collected.push((index, output, world.geo));
                        index += workers;
                    }
                    collected
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Deterministic merge order regardless of worker scheduling.
    per_shard.sort_by_key(|(shard, _, _)| *shard);
    let mut geo: Option<GeoDb> = None;
    let mut outputs = Vec::with_capacity(per_shard.len());
    for (_, output, shard_geo) in per_shard {
        match &mut geo {
            None => geo = Some(shard_geo),
            Some(merged) => merged.merge(shard_geo),
        }
        outputs.push(output);
    }
    ShardedRun {
        outputs,
        geo: geo.expect("at least one shard"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_shard_zero_of_one() {
        assert_eq!(ShardSpec::solo(), ShardSpec::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let _ = ShardSpec::new(3, 3);
    }

    #[test]
    fn run_sharded_outputs_in_shard_order() {
        let config = GenConfig {
            countries: crate::CountrySelection::Codes(vec!["MUS", "FSM", "AFG"]),
            scale: 5_000,
            dud_fraction: 0.0,
            ..GenConfig::default()
        };
        let run = run_sharded(&config, 3, |spec, world| (spec.index, world.targets.len()));
        assert_eq!(run.outputs.len(), 3);
        for (i, (index, _)) in run.outputs.iter().enumerate() {
            assert_eq!(*index, i as u32, "outputs sorted by shard index");
        }
        // The merged geo covers every shard's population.
        let total: usize = run.outputs.iter().map(|(_, n)| n).sum();
        assert!(total > 0);
        let solo = crate::generate(&config);
        assert_eq!(total, solo.targets.len());
        for host in &solo.truth.hosts {
            assert_eq!(run.geo.asn_of(host.ip), Some(host.asn));
        }
    }

    #[test]
    fn every_country_lands_in_exactly_one_shard() {
        for k in [1u32, 2, 3, 8] {
            for idx in 0..crate::COUNTRIES.len() {
                let s = shard_of_country(idx, k);
                assert!(s < k);
            }
            // Round-robin: all shards non-empty once indexes >= k exist.
            let hit: std::collections::HashSet<u32> = (0..crate::COUNTRIES.len())
                .map(|i| shard_of_country(i, k))
                .collect();
            assert_eq!(hit.len(), k as usize);
        }
    }
}
