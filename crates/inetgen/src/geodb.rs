//! The measurement-side mapping databases: Routeviews-style IP→ASN and
//! whois/MaxMind-style ASN→country.
//!
//! The paper "successfully map\[s\] 99.9 % \[of\] IP addresses to ASes based
//! on Routeviews dumps" and then maps ASes to countries "with whois data
//! und MaxMind" (§4.2). The generator exports exactly such a database from
//! its ground truth — including the 0.1 % coverage gap, modeled as a
//! deterministic pseudo-random miss so analyses must tolerate unmapped
//! addresses just like the real pipeline.

use netsim::AsKind;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-ASN registry information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnInfo {
    /// ISO-alpha-3 country code.
    pub country: &'static str,
    /// Network type (PeeringDB-style; `Unclassified` for the share the
    /// paper had to classify manually).
    pub kind: AsKind,
}

/// The lookup database handed to the analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    /// /24-granular prefix table: `prefix24 → asn`.
    prefix_to_asn: HashMap<u32, u32>,
    /// ASN registry.
    asn_info: HashMap<u32, AsnInfo>,
    /// Anycast service addresses and their operating ASN (these are not
    /// announced like unicast space; the study attributes them by
    /// well-known address).
    anycast: HashMap<Ipv4Addr, u32>,
    /// 1-in-`miss_denominator` addresses are unmapped (0 disables).
    miss_denominator: u32,
}

fn prefix24(ip: Ipv4Addr) -> u32 {
    u32::from(ip) & 0xFFFF_FF00
}

impl GeoDb {
    /// Empty database with the paper's 99.9 % coverage (1/1000 misses).
    pub fn new() -> Self {
        GeoDb {
            miss_denominator: 1000,
            ..GeoDb::default()
        }
    }

    /// Full-coverage variant (for tests needing exactness).
    pub fn perfect() -> Self {
        GeoDb {
            miss_denominator: 0,
            ..GeoDb::default()
        }
    }

    /// Register a /24 block as originated by `asn`.
    pub fn add_prefix24(&mut self, block: Ipv4Addr, asn: u32) {
        self.prefix_to_asn.insert(prefix24(block), asn);
    }

    /// Register a whole /16-aligned run of /24s (router infrastructure).
    pub fn add_prefix16(&mut self, block: Ipv4Addr, asn: u32) {
        let base = u32::from(block) & 0xFFFF_0000;
        for i in 0..256u32 {
            self.prefix_to_asn.insert(base | (i << 8), asn);
        }
    }

    /// Register ASN registry data.
    pub fn add_asn(&mut self, asn: u32, country: &'static str, kind: AsKind) {
        self.asn_info.insert(asn, AsnInfo { country, kind });
    }

    /// Register an anycast service address.
    pub fn add_anycast(&mut self, service: Ipv4Addr, asn: u32) {
        self.anycast.insert(service, asn);
    }

    /// Deterministic pseudo-random miss: mimics route-collector gaps.
    fn missing(&self, ip: Ipv4Addr) -> bool {
        if self.miss_denominator == 0 {
            return false;
        }
        // FNV-1a over the octets — stable across runs and platforms.
        let mut h: u32 = 0x811C_9DC5;
        for b in ip.octets() {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h.is_multiple_of(self.miss_denominator)
    }

    /// Origin ASN for an address, Routeviews-style.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<u32> {
        if let Some(&asn) = self.anycast.get(&ip) {
            return Some(asn);
        }
        if self.missing(ip) {
            return None;
        }
        self.prefix_to_asn.get(&prefix24(ip)).copied()
    }

    /// Country for an ASN, whois/MaxMind-style.
    pub fn country_of_asn(&self, asn: u32) -> Option<&'static str> {
        self.asn_info.get(&asn).map(|i| i.country)
    }

    /// Network kind for an ASN, PeeringDB-style.
    pub fn kind_of_asn(&self, asn: u32) -> Option<AsKind> {
        self.asn_info.get(&asn).map(|i| i.kind)
    }

    /// Country for an address (composition of the two mappings).
    pub fn country_of(&self, ip: Ipv4Addr) -> Option<&'static str> {
        self.country_of_asn(self.asn_of(ip)?)
    }

    /// Absorb another database — the merge step of a sharded census.
    ///
    /// Shard databases are disjoint over population space by
    /// construction (each country owns a fixed prefix region) and agree
    /// exactly on the replicated backbone/fixture/anycast entries, so
    /// merging is a plain union. Overlapping keys must map identically;
    /// a mismatch means the shards were generated from different seeds.
    pub fn merge(&mut self, other: GeoDb) {
        assert_eq!(
            self.miss_denominator, other.miss_denominator,
            "shard GeoDbs disagree on coverage model"
        );
        for (prefix, asn) in other.prefix_to_asn {
            let old = self.prefix_to_asn.insert(prefix, asn);
            assert!(
                old.is_none_or(|o| o == asn),
                "shard GeoDbs disagree on prefix {}: {old:?} vs {asn}",
                Ipv4Addr::from(prefix)
            );
        }
        for (asn, info) in other.asn_info {
            let old = self.asn_info.insert(asn, info.clone());
            assert!(
                old.as_ref().is_none_or(|o| *o == info),
                "shard GeoDbs disagree on ASN {asn}: {old:?} vs {info:?}"
            );
        }
        for (service, asn) in other.anycast {
            let old = self.anycast.insert(service, asn);
            assert!(
                old.is_none_or(|o| o == asn),
                "shard GeoDbs disagree on anycast {service}: {old:?} vs {asn}"
            );
        }
    }

    /// Number of registered /24 prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefix_to_asn.len()
    }

    /// Number of registered ASNs.
    pub fn asn_count(&self) -> usize {
        self.asn_info.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_lookup() {
        let mut db = GeoDb::perfect();
        db.add_prefix24(Ipv4Addr::new(203, 0, 113, 0), 65001);
        db.add_asn(65001, "BRA", AsKind::EyeballIsp);
        assert_eq!(db.asn_of(Ipv4Addr::new(203, 0, 113, 77)), Some(65001));
        assert_eq!(db.asn_of(Ipv4Addr::new(203, 0, 114, 1)), None);
        assert_eq!(db.country_of(Ipv4Addr::new(203, 0, 113, 5)), Some("BRA"));
        assert_eq!(db.kind_of_asn(65001), Some(AsKind::EyeballIsp));
    }

    #[test]
    fn prefix16_registers_run() {
        let mut db = GeoDb::perfect();
        db.add_prefix16(Ipv4Addr::new(10, 7, 0, 0), 64601);
        assert_eq!(db.asn_of(Ipv4Addr::new(10, 7, 200, 9)), Some(64601));
        assert_eq!(db.asn_of(Ipv4Addr::new(10, 8, 0, 1)), None);
        assert_eq!(db.prefix_count(), 256);
    }

    #[test]
    fn anycast_resolves_even_with_misses() {
        let mut db = GeoDb::new();
        db.add_anycast(Ipv4Addr::new(8, 8, 8, 8), 15169);
        assert_eq!(db.asn_of(Ipv4Addr::new(8, 8, 8, 8)), Some(15169));
    }

    #[test]
    fn miss_rate_is_about_one_permille() {
        let mut db = GeoDb::new();
        // Register everything in 11.0.0.0/8's first 4096 /24s.
        for i in 0..4096u32 {
            db.add_prefix24(Ipv4Addr::from(0x0B00_0000 + (i << 8)), 65000);
        }
        let mut misses = 0u32;
        let mut total = 0u32;
        for i in 0..4096u32 {
            for host in [1u32, 99, 200] {
                let ip = Ipv4Addr::from(0x0B00_0000 + (i << 8) + host);
                total += 1;
                if db.asn_of(ip).is_none() {
                    misses += 1;
                }
            }
        }
        let rate = f64::from(misses) / f64::from(total);
        assert!(
            (0.0002..0.003).contains(&rate),
            "miss rate {rate} (misses {misses}/{total})"
        );
    }

    #[test]
    fn misses_are_deterministic() {
        let db = GeoDb::new();
        let ip = Ipv4Addr::new(11, 22, 33, 44);
        assert_eq!(db.missing(ip), db.missing(ip));
    }
}
