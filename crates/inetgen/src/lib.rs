//! # inetgen — a synthetic Internet calibrated to the paper
//!
//! The study measured the real IPv4 Internet; this crate substitutes a
//! deterministic, seedable population whose *aggregates* match what the
//! paper published:
//!
//! * Table 1's global composition (26 % transparent forwarders, 72 %
//!   recursive forwarders, 2 % recursive resolvers);
//! * Figures 3/4's country skew (top-10 countries ≈ 90 % of transparent
//!   forwarders; Brazil/India > 80 % transparent; emerging-market bias);
//! * Figure 5's resolver mixes (India → Google, Turkey → one local
//!   resolver, …) including Table 4's indirect-consolidation chains;
//! * Figure 8's /24 density mixture (sparse CPE vs whole-prefix
//!   middleboxes) and §6's device attribution (≈23 % MikroTik);
//! * Table 5's Shadowserver divergences, via in-path response manipulators
//!   that only single-record pipelines count.
//!
//! The generator plants ground truth and returns the Routeviews/MaxMind
//! style lookup data the analysis needs — the measurement pipeline then
//! has to *re-discover* the population through wire-level scanning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod config;
pub mod countries;
pub mod geodb;
pub mod shard;
pub mod validate;

pub use build::{
    generate, generate_shard, Fixtures, GroundTruth, Internet, PlantedClass, PlantedHost,
};
pub use config::{CountrySelection, GenConfig};
pub use countries::{
    by_code, by_transparent_desc, CountryProfile, OtherProfile, Region, ResolverMix, COUNTRIES,
};
pub use geodb::{AsnInfo, GeoDb};
pub use shard::{
    generate_partition, run_sharded, run_sharded_degraded, shard_of_country, DegradedRun,
    ShardFailure, ShardSpec, ShardWorldCache, ShardedRun,
};
pub use validate::{check_marginals, Deviation};
