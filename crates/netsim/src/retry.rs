//! Retransmission policy for scanners and traceroute sweeps.
//!
//! The paper's census sends one probe per target and waits; on a lossy
//! network that conflates "no ODNS component" with "probe or answer
//! lost". [`RetryPolicy`] describes how a prober retransmits: how many
//! attempts, the initial retransmission timeout, an integer backoff
//! multiplier, and an optional deterministic per-probe jitter. All retry
//! scheduling is a pure function of `(policy, probe index, attempt)` —
//! no RNG — so lossy scans stay bit-identical across shard counts and
//! warm reruns.

use crate::fault::mix64;
use crate::time::SimDuration;

/// How a prober retransmits unanswered probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmissions per probe, including the original. `1` means
    /// no retries (the pre-retry behavior, and the default).
    pub max_attempts: u8,
    /// Retransmission timeout before the first retry.
    pub initial_rto: SimDuration,
    /// Integer multiplier applied to the RTO per retry round: `1` keeps
    /// it constant, `2` doubles it (classic exponential backoff).
    pub backoff: u32,
    /// Maximum deterministic extra delay added per retransmission,
    /// hash-keyed by `(probe index, attempt)` to decorrelate retry
    /// bursts. Zero (the default) disables it.
    pub jitter: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retransmissions — single-shot probing.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_rto: SimDuration::from_secs(2),
            backoff: 2,
            jitter: SimDuration::ZERO,
        }
    }

    /// `retries` retransmissions (so `retries + 1` attempts total) with a
    /// 2 s initial RTO and exponential doubling.
    pub fn retries(retries: u8) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..Self::none()
        }
    }

    /// Builder: set the initial RTO.
    pub fn with_rto(mut self, rto: SimDuration) -> Self {
        self.initial_rto = rto;
        self
    }

    /// Builder: set the backoff multiplier.
    pub fn with_backoff(mut self, backoff: u32) -> Self {
        self.backoff = backoff;
        self
    }

    /// Builder: set the per-retransmission jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// True when the policy actually retransmits.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Reject nonsensical policies loudly at installation.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1 (1 = no retries)".into());
        }
        if self.backoff == 0 {
            return Err("backoff multiplier must be >= 1".into());
        }
        if self.enabled() && self.initial_rto == SimDuration::ZERO {
            return Err("initial_rto must be positive when retries are enabled".into());
        }
        Ok(())
    }

    /// Panicking form of [`RetryPolicy::validate`].
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid RetryPolicy: {e}");
        }
    }

    /// The timeout armed after transmission `attempt` (0 = original):
    /// `initial_rto * backoff^attempt`, saturating.
    pub fn rto_after(&self, attempt: u8) -> SimDuration {
        let mut rto = self.initial_rto.as_micros();
        for _ in 0..attempt {
            rto = rto.saturating_mul(u64::from(self.backoff));
        }
        SimDuration(rto)
    }

    /// Deterministic jitter for retransmission `attempt` of probe
    /// `index`, in `[0, jitter]`. A pure hash — no RNG state.
    pub fn jitter_for(&self, index: u64, attempt: u8) -> SimDuration {
        if self.jitter == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let h = mix64(mix64(index ^ 0x5E7B_A0FF) ^ (u64::from(attempt) << 56));
        SimDuration(h % (self.jitter.as_micros() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_single_shot() {
        let p = RetryPolicy::none();
        assert!(!p.enabled());
        assert_eq!(p.max_attempts, 1);
        assert!(p.validate().is_ok());
        assert_eq!(RetryPolicy::default(), p);
    }

    #[test]
    fn retries_counts_total_attempts() {
        let p = RetryPolicy::retries(2);
        assert!(p.enabled());
        assert_eq!(p.max_attempts, 3);
        assert_eq!(RetryPolicy::retries(255).max_attempts, 255, "saturates");
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let p = RetryPolicy::retries(3)
            .with_rto(SimDuration::from_secs(1))
            .with_backoff(2);
        assert_eq!(p.rto_after(0), SimDuration::from_secs(1));
        assert_eq!(p.rto_after(1), SimDuration::from_secs(2));
        assert_eq!(p.rto_after(2), SimDuration::from_secs(4));
        let constant = p.with_backoff(1);
        assert_eq!(constant.rto_after(5), SimDuration::from_secs(1));
    }

    #[test]
    fn rto_saturates_instead_of_overflowing() {
        let p = RetryPolicy::retries(200)
            .with_rto(SimDuration(u64::MAX / 2))
            .with_backoff(u32::MAX);
        assert_eq!(p.rto_after(100), SimDuration(u64::MAX));
    }

    #[test]
    fn validation_rejects_degenerate_policies() {
        let zero_attempts = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::none()
        };
        assert!(zero_attempts.validate().is_err());
        let zero_backoff = RetryPolicy::retries(1).with_backoff(0);
        assert!(zero_backoff.validate().is_err());
        let zero_rto = RetryPolicy::retries(1).with_rto(SimDuration::ZERO);
        assert!(zero_rto.validate().is_err());
        // Single-shot with zero RTO is fine — the RTO is never armed.
        let single = RetryPolicy::none().with_rto(SimDuration::ZERO);
        assert!(single.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid RetryPolicy")]
    fn assert_valid_panics() {
        RetryPolicy::retries(1).with_backoff(0).assert_valid();
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_keyed() {
        let p = RetryPolicy::retries(2).with_jitter(SimDuration::from_millis(10));
        let mut distinct = false;
        for i in 0..200u64 {
            let j = p.jitter_for(i, 1);
            assert!(j <= SimDuration::from_millis(10));
            assert_eq!(j, p.jitter_for(i, 1), "pure function of (index, attempt)");
            if p.jitter_for(i, 1) != p.jitter_for(i, 2) {
                distinct = true;
            }
        }
        assert!(distinct, "attempts draw different jitter");
        assert_eq!(
            RetryPolicy::none().jitter_for(3, 1),
            SimDuration::ZERO,
            "zero bound disables jitter"
        );
    }
}
