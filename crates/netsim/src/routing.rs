//! Path computation: AS-level BFS expanded to router-level hop lists.
//!
//! A route is resolved once per packet as:
//!
//! ```text
//! src host ── [src access routers] ── [transit routers of every AS on the
//! AS path, in traversal order] ── [dst access routers, reversed] ── dst host
//! ```
//!
//! TTL expiry is then evaluated arithmetically against the hop list, so a
//! 30-probe DNSRoute++ TTL sweep costs no more events than 30 plain sends.
//! Anycast destinations resolve to the instance whose AS is closest (in AS
//! hops) to the source AS — the mechanism behind Figure 6's ranking of
//! Cloudflare < Google < OpenDNS path lengths: more PoPs means a closer
//! nearest PoP.

use crate::time::SimDuration;
use crate::topology::{AsId, IpOwner, NodeId, Topology};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Per-router forwarding latency (one way).
const HOP_LATENCY: SimDuration = SimDuration(1_000);
/// Extra latency for crossing an AS boundary (peering/transit link).
const AS_CROSS_LATENCY: SimDuration = SimDuration(4_000);

/// One router hop on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Router address (sources ICMP Time Exceeded when TTL dies here).
    pub ip: Ipv4Addr,
    /// AS the router belongs to.
    pub as_id: AsId,
    /// Cumulative one-way latency from the source to this router.
    pub latency: SimDuration,
}

/// A fully resolved unidirectional path.
#[derive(Debug, Clone)]
pub struct Path {
    /// Destination node (for anycast: the selected instance).
    pub dst_node: NodeId,
    /// Router hops in order; does not include the destination host.
    pub hops: Vec<Hop>,
    /// Total one-way latency source → destination host.
    pub total_latency: SimDuration,
    /// AS-level path (src AS first, dst AS last).
    pub as_path: Vec<AsId>,
}

impl Path {
    /// Number of IP hops a probe must survive to be *delivered*: each
    /// router decrements once; the destination host does not decrement.
    /// A packet sent with TTL `t` is delivered iff `t > self.hops.len()`,
    /// and the remaining TTL on arrival is `t - self.hops.len()`.
    pub fn router_hops(&self) -> usize {
        self.hops.len()
    }

    /// Where a packet with initial TTL `t` dies, if it does: the index of
    /// the router that drops it and emits Time Exceeded.
    pub fn expiry_hop(&self, ttl: u8) -> Option<&Hop> {
        let t = ttl as usize;
        if t == 0 {
            return self.hops.first();
        }
        if t <= self.hops.len() {
            Some(&self.hops[t - 1])
        } else {
            None
        }
    }
}

/// Why a route could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Destination IP is not assigned to any host or anycast group.
    NoSuchHost,
    /// Destination is a router address (we only deliver to hosts).
    RouterAddress,
    /// The AS graph has no path between the endpoints.
    Unreachable,
}

/// Route resolver with layered caches.
///
/// Three layers, innermost first:
///
/// * **AS paths** keyed `(src AS, dst AS)` — an Internet-wide scan reuses
///   the scanner-AS entry for every target in the same destination AS;
/// * **anycast selection** keyed `(src AS, service IP)` — one BFS serves
///   every PoP-proximity query from the same source AS;
/// * **full router-level paths** keyed `(src node, dst node)` and returned
///   as `Arc<Path>` — an N-probe census materializes each unique route
///   (hop list, latencies, AS path) exactly once; every later packet on
///   that route borrows the cached hops instead of rebuilding them.
#[derive(Debug, Default)]
pub struct RouteResolver {
    as_path_cache: HashMap<(AsId, AsId), Option<Arc<Vec<AsId>>>>,
    distance_cache: HashMap<AsId, Arc<Vec<Option<u32>>>>,
    path_cache: HashMap<(NodeId, NodeId), Arc<Path>>,
    anycast_cache: HashMap<(AsId, Ipv4Addr), Option<NodeId>>,
    path_hits: u64,
    path_misses: u64,
}

impl RouteResolver {
    /// Fresh resolver with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached AS-path entries.
    pub fn cache_len(&self) -> usize {
        self.as_path_cache.len()
    }

    /// Number of cached full router-level paths. Bounded by the number of
    /// distinct `(src node, dst node)` pairs ever resolved.
    pub fn path_cache_len(&self) -> usize {
        self.path_cache.len()
    }

    /// Cumulative full-path cache hits (steady-state resolves that
    /// performed no hop-list allocation).
    pub fn path_cache_hits(&self) -> u64 {
        self.path_hits
    }

    /// Cumulative full-path cache misses (each materialized one `Path`).
    pub fn path_cache_misses(&self) -> u64 {
        self.path_misses
    }

    /// Zero the hit/miss counters while keeping every cached entry.
    /// Routes are a pure function of the immutable topology, so a
    /// simulator reset keeps the warm caches (that reuse is the point of
    /// resetting instead of rebuilding) and restarts only the counters.
    pub fn reset_counters(&mut self) {
        self.path_hits = 0;
        self.path_misses = 0;
    }

    /// Shortest AS path (inclusive of endpoints) via BFS with deterministic
    /// tie-breaking (adjacency lists are sorted at topology build).
    pub fn as_path(&mut self, topo: &Topology, src: AsId, dst: AsId) -> Option<Arc<Vec<AsId>>> {
        if let Some(cached) = self.as_path_cache.get(&(src, dst)) {
            return cached.clone();
        }
        let result = bfs_as_path(topo, src, dst).map(Arc::new);
        self.as_path_cache.insert((src, dst), result.clone());
        result
    }

    /// AS-hop distance between two ASes (0 when identical).
    pub fn as_distance(&mut self, topo: &Topology, src: AsId, dst: AsId) -> Option<usize> {
        self.as_path(topo, src, dst).map(|p| p.len() - 1)
    }

    /// BFS distances from `src` to every AS, cached. One BFS serves every
    /// anycast PoP-selection query from the same source AS — the hot path
    /// of an Internet-wide census.
    pub fn distances_from(&mut self, topo: &Topology, src: AsId) -> Arc<Vec<Option<u32>>> {
        if let Some(d) = self.distance_cache.get(&src) {
            return d.clone();
        }
        let n = topo.as_count();
        let mut dist: Vec<Option<u32>> = vec![None; n];
        if (src.0 as usize) < n {
            dist[src.0 as usize] = Some(0);
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(cur) = queue.pop_front() {
                if cur != src && !provides_transit(topo, cur) {
                    continue; // valley-free: see bfs_as_path
                }
                let d = dist[cur.0 as usize].expect("visited");
                for &(next, _) in topo.as_neighbors(cur) {
                    if dist[next.0 as usize].is_none() {
                        dist[next.0 as usize] = Some(d + 1);
                        queue.push_back(next);
                    }
                }
            }
        }
        let arc = Arc::new(dist);
        self.distance_cache.insert(src, arc.clone());
        arc
    }

    /// Select the anycast instance nearest to `src_as` (min AS distance,
    /// then lowest node id for determinism).
    pub fn select_anycast_instance(
        &mut self,
        topo: &Topology,
        src_as: AsId,
        service_ip: Ipv4Addr,
    ) -> Option<NodeId> {
        let group = topo.anycast_group(service_ip)?;
        let distances = self.distances_from(topo, src_as);
        let mut best: Option<(u32, NodeId)> = None;
        for &inst in &group.instances {
            let inst_as = topo.as_of_node(inst);
            if let Some(d) = distances[inst_as.0 as usize] {
                let candidate = (d, inst);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
        }
        best.map(|(_, n)| n)
    }

    /// Resolve the full router-level path from host `src_node` to IP `dst`.
    ///
    /// Returns a shared handle: the first resolve for a `(src, dst-node)`
    /// pair builds the hop list; every subsequent resolve is a cache hit
    /// that clones the `Arc` (no per-packet allocation). Anycast
    /// destinations are memoized per `(src AS, service IP)` before the
    /// path lookup, so a warm resolver answers anycast sends from two
    /// hash probes.
    pub fn resolve(
        &mut self,
        topo: &Topology,
        src_node: NodeId,
        dst: Ipv4Addr,
    ) -> Result<Arc<Path>, RouteError> {
        let src_as = topo.as_of_node(src_node);
        let dst_node = match topo.owner_of_ip(dst) {
            None => return Err(RouteError::NoSuchHost),
            Some(IpOwner::Router(_)) => return Err(RouteError::RouterAddress),
            Some(IpOwner::Host(n)) => n,
            Some(IpOwner::Anycast) => {
                let selected = match self.anycast_cache.get(&(src_as, dst)) {
                    Some(&cached) => cached,
                    None => {
                        let selected = self.select_anycast_instance(topo, src_as, dst);
                        self.anycast_cache.insert((src_as, dst), selected);
                        selected
                    }
                };
                selected.ok_or(RouteError::Unreachable)?
            }
        };
        if let Some(path) = self.path_cache.get(&(src_node, dst_node)) {
            self.path_hits += 1;
            return Ok(Arc::clone(path));
        }
        let dst_as = topo.as_of_node(dst_node);
        let as_path = self
            .as_path(topo, src_as, dst_as)
            .ok_or(RouteError::Unreachable)?;
        // Counted only once the route is known to materialize, so
        // `path_misses` equals the number of cached `Path`s exactly —
        // failed resolves (unreachable AS) count neither hit nor miss.
        self.path_misses += 1;

        let src_spec = topo.host_spec(src_node);
        let dst_spec = topo.host_spec(dst_node);

        let mut hops = Vec::new();
        let mut latency = src_spec.link_latency;
        // Out through the source's access routers (host-side first).
        for r in src_spec.access_routers.iter().rev() {
            latency = latency + HOP_LATENCY;
            hops.push(Hop {
                ip: *r,
                as_id: src_as,
                latency,
            });
        }
        // Across each AS on the path, through its transit routers.
        for (i, &as_id) in as_path.iter().enumerate() {
            if i > 0 {
                latency = latency + AS_CROSS_LATENCY;
            }
            for r in &topo.as_spec(as_id).transit_routers {
                latency = latency + HOP_LATENCY;
                hops.push(Hop {
                    ip: *r,
                    as_id,
                    latency,
                });
            }
        }
        // In through the destination's access routers (core-side first).
        for r in dst_spec.access_routers.iter() {
            latency = latency + HOP_LATENCY;
            hops.push(Hop {
                ip: *r,
                as_id: dst_as,
                latency,
            });
        }
        let total_latency = latency + dst_spec.link_latency;

        let path = Arc::new(Path {
            dst_node,
            hops,
            total_latency,
            as_path: as_path.to_vec(),
        });
        self.path_cache
            .insert((src_node, dst_node), Arc::clone(&path));
        Ok(path)
    }
}

/// Whether an AS may carry traffic it neither sources nor sinks. Only
/// transit networks do — content networks (Cloudflare's omnipresent
/// peering!) and eyeball ISPs never provide transit, the "valley-free"
/// property of inter-domain routing. Without this rule a heavily-peered
/// content AS becomes a universal shortcut and every path collapses.
fn provides_transit(topo: &Topology, a: AsId) -> bool {
    matches!(topo.as_spec(a).kind, crate::topology::AsKind::Transit)
}

fn bfs_as_path(topo: &Topology, src: AsId, dst: AsId) -> Option<Vec<AsId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let n = topo.as_count();
    if (src.0 as usize) >= n || (dst.0 as usize) >= n {
        return None;
    }
    let mut prev: Vec<Option<AsId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[src.0 as usize] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(cur) = queue.pop_front() {
        // The source always forwards its own traffic; everything else on
        // the path must be a transit network.
        if cur != src && !provides_transit(topo, cur) {
            continue;
        }
        for &(next, _) in topo.as_neighbors(cur) {
            if !visited[next.0 as usize] {
                visited[next.0 as usize] = true;
                prev[next.0 as usize] = Some(cur);
                if next == dst {
                    let mut path = vec![dst];
                    let mut at = dst;
                    while let Some(p) = prev[at.0 as usize] {
                        path.push(p);
                        at = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::{AsKind, AsSpec, CountryCode, HostSpec, Relationship, TopologyBuilder};

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn as_spec(asn: u32, routers: Vec<Ipv4Addr>) -> AsSpec {
        AsSpec {
            asn,
            country: CountryCode::new("ZZZ"),
            kind: AsKind::Transit,
            sav_outbound: false,
            transit_routers: routers,
        }
    }

    /// Chain topology: AS0 — AS1 — AS2 — AS3, host in AS0 and AS3.
    fn chain() -> (Topology, NodeId, NodeId, Ipv4Addr) {
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(as_spec(100, vec![ip(10, 0, 0, 1)]));
        let a1 = b.add_as(as_spec(101, vec![ip(10, 1, 0, 1), ip(10, 1, 0, 2)]));
        let a2 = b.add_as(as_spec(102, vec![ip(10, 2, 0, 1)]));
        let a3 = b.add_as(as_spec(103, vec![ip(10, 3, 0, 1)]));
        b.connect(a0, a1, Relationship::ProviderCustomer);
        b.connect(a1, a2, Relationship::Peer);
        b.connect(a2, a3, Relationship::ProviderCustomer);
        let src = b.add_host(
            a0,
            HostSpec {
                ip: ip(192, 0, 2, 1),
                extra_ips: vec![],
                access_routers: vec![ip(10, 0, 9, 1)],
                link_latency: SimDuration::from_millis(2),
            },
        );
        let dst_ip = ip(203, 0, 113, 1);
        let dst = b.add_host(
            a3,
            HostSpec {
                ip: dst_ip,
                extra_ips: vec![],
                access_routers: vec![ip(10, 3, 9, 1)],
                link_latency: SimDuration::from_millis(2),
            },
        );
        (b.build().unwrap(), src, dst, dst_ip)
    }

    #[test]
    fn chain_path_hops_in_order() {
        let (t, src, dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        let p = r.resolve(&t, src, dst_ip).unwrap();
        assert_eq!(p.dst_node, dst);
        let hop_ips: Vec<_> = p.hops.iter().map(|h| h.ip).collect();
        assert_eq!(
            hop_ips,
            vec![
                ip(10, 0, 9, 1), // src access
                ip(10, 0, 0, 1), // AS0 transit
                ip(10, 1, 0, 1), // AS1 transit
                ip(10, 1, 0, 2),
                ip(10, 2, 0, 1), // AS2 transit
                ip(10, 3, 0, 1), // AS3 transit
                ip(10, 3, 9, 1), // dst access
            ]
        );
        assert_eq!(p.as_path.len(), 4);
        assert_eq!(p.router_hops(), 7);
    }

    #[test]
    fn expiry_hop_semantics() {
        let (t, src, _dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        let p = r.resolve(&t, src, dst_ip).unwrap();
        // TTL 1 dies at the first router.
        assert_eq!(p.expiry_hop(1).unwrap().ip, ip(10, 0, 9, 1));
        // TTL equal to router count dies at the last router.
        assert_eq!(p.expiry_hop(7).unwrap().ip, ip(10, 3, 9, 1));
        // TTL beyond router count is delivered.
        assert!(p.expiry_hop(8).is_none());
    }

    #[test]
    fn latency_is_monotone_along_path() {
        let (t, src, _dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        let p = r.resolve(&t, src, dst_ip).unwrap();
        for w in p.hops.windows(2) {
            assert!(w[0].latency < w[1].latency);
        }
        assert!(p.total_latency > p.hops.last().unwrap().latency);
    }

    #[test]
    fn cache_reuses_as_paths() {
        let (t, src, _dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        let _ = r.resolve(&t, src, dst_ip).unwrap();
        let before = r.cache_len();
        let _ = r.resolve(&t, src, dst_ip).unwrap();
        assert_eq!(r.cache_len(), before, "second resolve must hit the cache");
    }

    #[test]
    fn path_cache_bounded_by_distinct_pairs() {
        let (t, src, _dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        for _ in 0..100 {
            let _ = r.resolve(&t, src, dst_ip).unwrap();
        }
        assert_eq!(r.path_cache_len(), 1, "one (src, dst) pair, one entry");
        assert_eq!(r.path_cache_misses(), 1);
        assert_eq!(r.path_cache_hits(), 99);
        // A second distinct pair adds exactly one entry, repeats add none.
        let second_dst = t.host_spec(_dst).ip;
        assert_eq!(second_dst, dst_ip, "chain has one remote host");
        let back = r.resolve(&t, _dst, ip(192, 0, 2, 1)).unwrap();
        assert_eq!(back.dst_node, src);
        for _ in 0..10 {
            let _ = r.resolve(&t, _dst, ip(192, 0, 2, 1)).unwrap();
        }
        assert_eq!(r.path_cache_len(), 2);
    }

    #[test]
    fn warm_resolve_returns_shared_path() {
        let (t, src, _dst, dst_ip) = chain();
        let mut r = RouteResolver::new();
        let first = r.resolve(&t, src, dst_ip).unwrap();
        let second = r.resolve(&t, src, dst_ip).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache hit must return the same allocation, not a rebuilt path"
        );
    }

    #[test]
    fn unknown_destination_errors() {
        let (t, src, _dst, _dst_ip) = chain();
        let mut r = RouteResolver::new();
        assert!(matches!(
            r.resolve(&t, src, ip(198, 18, 0, 1)),
            Err(RouteError::NoSuchHost)
        ));
        assert!(matches!(
            r.resolve(&t, src, ip(10, 1, 0, 1)),
            Err(RouteError::RouterAddress)
        ));
    }

    #[test]
    fn disconnected_as_unreachable() {
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(as_spec(100, vec![]));
        let a1 = b.add_as(as_spec(101, vec![]));
        let src = b.add_host(a0, HostSpec::simple(ip(192, 0, 2, 1)));
        let _dst = b.add_host(a1, HostSpec::simple(ip(203, 0, 113, 1)));
        let t = b.build().unwrap();
        let mut r = RouteResolver::new();
        assert!(matches!(
            r.resolve(&t, src, ip(203, 0, 113, 1)),
            Err(RouteError::Unreachable)
        ));
    }

    #[test]
    fn intra_as_path_has_no_crossing() {
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(as_spec(100, vec![ip(10, 0, 0, 1)]));
        let src = b.add_host(a0, HostSpec::simple(ip(192, 0, 2, 1)));
        let _dst = b.add_host(a0, HostSpec::simple(ip(192, 0, 2, 2)));
        let t = b.build().unwrap();
        let mut r = RouteResolver::new();
        let p = r.resolve(&t, src, ip(192, 0, 2, 2)).unwrap();
        assert_eq!(p.as_path.len(), 1);
        assert_eq!(p.router_hops(), 1);
    }

    /// Anycast: with a near PoP (1 AS hop) and a far PoP (3 AS hops), the
    /// near one must be selected — the Figure 6 mechanism.
    #[test]
    fn anycast_selects_nearest_pop() {
        let mut b = TopologyBuilder::new();
        let a0 = b.add_as(as_spec(100, vec![ip(10, 0, 0, 1)]));
        let a1 = b.add_as(as_spec(101, vec![ip(10, 1, 0, 1)]));
        let a2 = b.add_as(as_spec(102, vec![ip(10, 2, 0, 1)]));
        let a3 = b.add_as(as_spec(103, vec![ip(10, 3, 0, 1)]));
        b.connect(a0, a1, Relationship::Peer);
        b.connect(a1, a2, Relationship::Peer);
        b.connect(a2, a3, Relationship::Peer);
        let src = b.add_host(a0, HostSpec::simple(ip(192, 0, 2, 1)));
        let near = b.add_host(a1, HostSpec::simple(ip(198, 51, 100, 1)));
        let far = b.add_host(a3, HostSpec::simple(ip(198, 51, 100, 2)));
        let svc = ip(8, 8, 8, 8);
        b.add_anycast_instance(svc, far);
        b.add_anycast_instance(svc, near);
        let t = b.build().unwrap();
        let mut r = RouteResolver::new();
        let p = r.resolve(&t, src, svc).unwrap();
        assert_eq!(p.dst_node, near);
        // From the far host's perspective the far PoP instance wins.
        let p2 = r.resolve(&t, far, svc).unwrap();
        assert_eq!(p2.dst_node, far);
    }

    #[test]
    fn as_distance_zero_for_same_as() {
        let (t, src, _, _) = chain();
        let mut r = RouteResolver::new();
        let a = t.as_of_node(src);
        assert_eq!(r.as_distance(&t, a, a), Some(0));
    }
}
