//! Simulated time. All timestamps are microseconds since simulation start.
//!
//! The simulator is a discrete-event system: time only advances when the
//! event queue pops an event, which makes every run bit-for-bit reproducible
//! from its seed — a property the paper's real-world measurements cannot
//! have, and the main reason this reproduction can assert exact expectations
//! in tests.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch, as a float (for reports only — never for
    /// ordering decisions).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Millisecond count (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!(t2.as_millis(), 1_005);
        assert_eq!((t2 - t).as_millis(), 1_000);
        assert_eq!(t.since(t2), SimDuration::ZERO, "since saturates");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn saturation_does_not_wrap() {
        let huge = SimTime(u64::MAX);
        let later = huge + SimDuration::from_secs(10);
        assert_eq!(later, huge);
    }
}
