//! Deterministic seed derivation for sharded simulation.
//!
//! A sharded experiment runs one [`crate::Simulator`] per disjoint
//! partition of the modeled Internet. Every shard needs its own RNG
//! stream, and the streams must be a pure function of `(base seed,
//! stream id)` — never of the shard count or of scheduling order — so
//! that re-partitioning the same world cannot change any per-shard
//! decision. [`derive_seed`] is that function; every crate that derives
//! per-shard or per-country streams goes through it.

use crate::sim::SimConfig;

/// Derive an independent seed from `base` for logical stream `stream`.
///
/// SplitMix64 finalizer over the combined value: cheap, well-mixed, and
/// stable across platforms. `derive_seed(base, a) == derive_seed(base, b)`
/// iff `a == b`, and unrelated streams are statistically independent.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimConfig {
    /// Simulator configuration for shard `shard` of a sharded run seeded
    /// with `base_seed`. Identical inputs give identical event streams;
    /// distinct shards get independent ones.
    pub fn for_shard(base_seed: u64, shard: u32) -> Self {
        SimConfig {
            seed: derive_seed(base_seed, 0x5117_0000_0000_0000 | u64::from(shard)),
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn streams_are_distinct() {
        let base = 0xC0DE_2021;
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1_000u64 {
            assert!(
                seen.insert(derive_seed(base, stream)),
                "collision at stream {stream}"
            );
        }
    }

    #[test]
    fn shard_configs_differ_per_shard_only() {
        let a = SimConfig::for_shard(1, 0);
        let b = SimConfig::for_shard(1, 0);
        let c = SimConfig::for_shard(1, 1);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }
}
