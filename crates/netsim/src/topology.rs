//! Internet topology: autonomous systems, routers, hosts, anycast groups.
//!
//! The topology is built once through [`TopologyBuilder`], validated, and
//! then immutable for the lifetime of a simulation. Routing (path
//! computation over this graph) lives in [`crate::routing`].

use crate::time::SimDuration;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Dense index of an autonomous system within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

/// Dense index of a host node within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as#{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// ISO-3166-alpha-3-style country code (e.g. `BRA`, `IND`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode(pub [u8; 3]);

impl CountryCode {
    /// Build from a 3-letter string. Panics on wrong length (codes are
    /// compile-time constants in `inetgen`).
    pub fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert_eq!(b.len(), 3, "country code must be 3 letters, got {code:?}");
        CountryCode([b[0], b[1], b[2]])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).unwrap_or("???")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Network type of an AS, mirroring the paper's PeeringDB-based
/// classification (Appendix E: Cable/DSL/ISP, NSP, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsKind {
    /// Transit / network service provider.
    Transit,
    /// Eyeball (Cable/DSL/ISP) network — where the paper finds 79 % of the
    /// top-100 transparent-forwarder ASes.
    EyeballIsp,
    /// Content / cloud network (public resolver PoPs live here).
    Content,
    /// Education / research.
    Education,
    /// Not classified in PeeringDB — the paper manually reclassifies these.
    Unclassified,
}

/// Business relationship between two connected ASes (ground truth used to
/// evaluate DNSRoute++'s inference, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// First AS is the provider, second the customer.
    ProviderCustomer,
    /// Settlement-free peering (e.g. at an IXP, like the sensor network
    /// peering directly with Google in §3.1).
    Peer,
}

/// Specification of an AS, supplied by the generator.
#[derive(Debug, Clone)]
pub struct AsSpec {
    /// Public AS number (may be 32-bit, as 65 of the paper's top-100 are).
    pub asn: u32,
    /// Hosting country.
    pub country: CountryCode,
    /// Network type.
    pub kind: AsKind,
    /// Whether this AS filters spoofed *outbound* packets (BCP 38 / SAV).
    /// Transparent forwarders can only operate where this is `false` (§2).
    pub sav_outbound: bool,
    /// Router IPs traversed when a path crosses this AS, in traversal
    /// order. One to three is typical.
    pub transit_routers: Vec<Ipv4Addr>,
}

/// Specification of a host, supplied by the generator.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Primary address (the one the host answers from by default).
    pub ip: Ipv4Addr,
    /// Additional owned addresses (Sensor 2 in §3.1 uses two addresses in
    /// the same /24).
    pub extra_ips: Vec<Ipv4Addr>,
    /// Access routers between this host and its AS's transit routers
    /// (closest to the host last; usually one CPE-side gateway).
    pub access_routers: Vec<Ipv4Addr>,
    /// Last-mile link latency (one way).
    pub link_latency: SimDuration,
}

impl HostSpec {
    /// A minimal host with just a primary IP and a 2 ms access link.
    pub fn simple(ip: Ipv4Addr) -> Self {
        HostSpec {
            ip,
            extra_ips: Vec::new(),
            access_routers: Vec::new(),
            link_latency: SimDuration::from_millis(2),
        }
    }
}

/// What an IP address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpOwner {
    /// A host's (primary or extra) unicast address.
    Host(NodeId),
    /// A router inside an AS.
    Router(AsId),
    /// An anycast service address (deliverable to any instance).
    Anycast,
}

#[derive(Debug)]
pub(crate) struct AsData {
    pub spec: AsSpec,
    pub neighbors: Vec<(AsId, Relationship)>,
}

#[derive(Debug)]
pub(crate) struct HostData {
    pub as_id: AsId,
    pub spec: HostSpec,
}

/// An anycast service: one IP, many instances.
#[derive(Debug, Clone)]
pub struct AnycastGroup {
    /// The shared service address (e.g. 8.8.8.8).
    pub ip: Ipv4Addr,
    /// Instance nodes (PoPs), in registration order.
    pub instances: Vec<NodeId>,
}

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The same IP was assigned twice.
    DuplicateIp(Ipv4Addr),
    /// An AS or node index was out of range.
    BadIndex(String),
    /// Two ASes were connected twice.
    DuplicateLink(u32, u32),
    /// An anycast group has no instances.
    EmptyAnycastGroup(Ipv4Addr),
    /// An AS was declared with the same ASN twice.
    DuplicateAsn(u32),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateIp(ip) => write!(f, "IP {ip} assigned twice"),
            TopologyError::BadIndex(what) => write!(f, "bad index: {what}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "ASes {a} and {b} linked twice"),
            TopologyError::EmptyAnycastGroup(ip) => write!(f, "anycast {ip} has no instances"),
            TopologyError::DuplicateAsn(asn) => write!(f, "ASN {asn} declared twice"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for [`Topology`]. All mutation happens here; the built topology
/// is immutable.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    ases: Vec<AsData>,
    hosts: Vec<HostData>,
    anycast: HashMap<Ipv4Addr, Vec<NodeId>>,
    links: Vec<(AsId, AsId, Relationship)>,
}

impl TopologyBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an AS; returns its dense id.
    pub fn add_as(&mut self, spec: AsSpec) -> AsId {
        let id = AsId(self.ases.len() as u32);
        self.ases.push(AsData {
            spec,
            neighbors: Vec::new(),
        });
        id
    }

    /// Connect two ASes. For [`Relationship::ProviderCustomer`], `a` is the
    /// provider and `b` the customer.
    pub fn connect(&mut self, a: AsId, b: AsId, rel: Relationship) {
        self.links.push((a, b, rel));
    }

    /// Register a host inside `as_id`; returns its node id.
    pub fn add_host(&mut self, as_id: AsId, spec: HostSpec) -> NodeId {
        let id = NodeId(self.hosts.len() as u32);
        self.hosts.push(HostData { as_id, spec });
        id
    }

    /// Register `node` as an instance (PoP) of the anycast service at `ip`.
    pub fn add_anycast_instance(&mut self, ip: Ipv4Addr, node: NodeId) {
        self.anycast.entry(ip).or_default().push(node);
    }

    /// Number of ASes added so far.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of hosts added so far.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Validate and freeze.
    pub fn build(mut self) -> Result<Topology, TopologyError> {
        // Validate indices and wire up adjacency. The original link list
        // carries provider→customer direction, which adjacency (symmetric)
        // cannot represent, so the directed pairs are captured here.
        let n_as = self.ases.len() as u32;
        let n_host = self.hosts.len() as u32;
        let mut seen_links: HashMap<(u32, u32), ()> = HashMap::new();
        let mut pc_pairs = Vec::new();
        let links = std::mem::take(&mut self.links);
        for (a, b, rel) in links {
            if a.0 >= n_as || b.0 >= n_as {
                return Err(TopologyError::BadIndex(format!("link {a}-{b}")));
            }
            let key = (a.0.min(b.0), a.0.max(b.0));
            if seen_links.insert(key, ()).is_some() {
                return Err(TopologyError::DuplicateLink(a.0, b.0));
            }
            if rel == Relationship::ProviderCustomer {
                pc_pairs.push((
                    self.ases[a.0 as usize].spec.asn,
                    self.ases[b.0 as usize].spec.asn,
                ));
            }
            self.ases[a.0 as usize].neighbors.push((b, rel));
            self.ases[b.0 as usize].neighbors.push((a, rel));
        }
        pc_pairs.sort_unstable();
        pc_pairs.dedup();
        // Deterministic neighbor order for reproducible BFS tie-breaking.
        for a in &mut self.ases {
            a.neighbors.sort_by_key(|(id, _)| *id);
        }

        // ASN uniqueness.
        let mut asns = HashMap::new();
        for (i, a) in self.ases.iter().enumerate() {
            if asns.insert(a.spec.asn, i).is_some() {
                return Err(TopologyError::DuplicateAsn(a.spec.asn));
            }
        }

        let mut ip_index: HashMap<Ipv4Addr, IpOwner> = HashMap::new();
        for (i, a) in self.ases.iter().enumerate() {
            for r in &a.spec.transit_routers {
                if ip_index
                    .insert(*r, IpOwner::Router(AsId(i as u32)))
                    .is_some()
                {
                    return Err(TopologyError::DuplicateIp(*r));
                }
            }
        }
        for (i, h) in self.hosts.iter().enumerate() {
            if h.as_id.0 >= n_as {
                return Err(TopologyError::BadIndex(format!("host {i} AS {}", h.as_id)));
            }
            let node = NodeId(i as u32);
            if ip_index.insert(h.spec.ip, IpOwner::Host(node)).is_some() {
                return Err(TopologyError::DuplicateIp(h.spec.ip));
            }
            for ip in &h.spec.extra_ips {
                if ip_index.insert(*ip, IpOwner::Host(node)).is_some() {
                    return Err(TopologyError::DuplicateIp(*ip));
                }
            }
            for r in &h.spec.access_routers {
                // Access routers may be shared between hosts in the same AS
                // (a neighborhood gateway); allow re-registration as long as
                // it stays a router in the same AS.
                match ip_index.get(r) {
                    None => {
                        ip_index.insert(*r, IpOwner::Router(h.as_id));
                    }
                    Some(IpOwner::Router(owner)) if *owner == h.as_id => {}
                    Some(_) => return Err(TopologyError::DuplicateIp(*r)),
                }
            }
        }

        let mut anycast = HashMap::new();
        for (ip, instances) in self.anycast {
            if instances.is_empty() {
                return Err(TopologyError::EmptyAnycastGroup(ip));
            }
            for n in &instances {
                if n.0 >= n_host {
                    return Err(TopologyError::BadIndex(format!("anycast instance {n}")));
                }
            }
            if ip_index.insert(ip, IpOwner::Anycast).is_some() {
                return Err(TopologyError::DuplicateIp(ip));
            }
            anycast.insert(ip, AnycastGroup { ip, instances });
        }

        let asn_to_id: HashMap<u32, AsId> = self
            .ases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.spec.asn, AsId(i as u32)))
            .collect();

        Ok(Topology {
            ases: self.ases,
            hosts: self.hosts,
            anycast,
            ip_index,
            asn_to_id,
            pc_pairs,
        })
    }
}

/// A validated, immutable network topology.
#[derive(Debug)]
pub struct Topology {
    pub(crate) ases: Vec<AsData>,
    pub(crate) hosts: Vec<HostData>,
    anycast: HashMap<Ipv4Addr, AnycastGroup>,
    ip_index: HashMap<Ipv4Addr, IpOwner>,
    asn_to_id: HashMap<u32, AsId>,
    pc_pairs: Vec<(u32, u32)>,
}

impl Topology {
    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The AS a host belongs to.
    pub fn as_of_node(&self, node: NodeId) -> AsId {
        self.hosts[node.0 as usize].as_id
    }

    /// AS spec by id.
    pub fn as_spec(&self, id: AsId) -> &AsSpec {
        &self.ases[id.0 as usize].spec
    }

    /// Dense AS id for a public ASN.
    pub fn as_by_asn(&self, asn: u32) -> Option<AsId> {
        self.asn_to_id.get(&asn).copied()
    }

    /// Neighbors of an AS with relationships (sorted by AS id).
    pub fn as_neighbors(&self, id: AsId) -> &[(AsId, Relationship)] {
        &self.ases[id.0 as usize].neighbors
    }

    /// Host spec by node id.
    pub fn host_spec(&self, node: NodeId) -> &HostSpec {
        &self.hosts[node.0 as usize].spec
    }

    /// Who owns an IP, if anyone.
    pub fn owner_of_ip(&self, ip: Ipv4Addr) -> Option<IpOwner> {
        self.ip_index.get(&ip).copied()
    }

    /// The AS owning an IP: a host's AS, a router's AS. Anycast addresses
    /// have no single AS and return `None`.
    pub fn as_of_ip(&self, ip: Ipv4Addr) -> Option<AsId> {
        match self.owner_of_ip(ip)? {
            IpOwner::Host(n) => Some(self.as_of_node(n)),
            IpOwner::Router(a) => Some(a),
            IpOwner::Anycast => None,
        }
    }

    /// Anycast group at `ip`, if any.
    pub fn anycast_group(&self, ip: Ipv4Addr) -> Option<&AnycastGroup> {
        self.anycast.get(&ip)
    }

    /// All anycast groups.
    pub fn anycast_groups(&self) -> impl Iterator<Item = &AnycastGroup> {
        self.anycast.values()
    }

    /// Whether `node` may legitimately source packets from `src` —
    /// its own unicast addresses or an anycast address it instantiates.
    /// Everything else is spoofing (and subject to the AS's SAV policy).
    pub fn node_owns_ip(&self, node: NodeId, src: Ipv4Addr) -> bool {
        let h = &self.hosts[node.0 as usize].spec;
        if h.ip == src || h.extra_ips.contains(&src) {
            return true;
        }
        if let Some(group) = self.anycast.get(&src) {
            return group.instances.contains(&node);
        }
        false
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.hosts.len() as u32).map(NodeId)
    }

    /// All ground-truth provider→customer ASN pairs (for evaluating
    /// DNSRoute++'s relationship inference, §5). Each directed pair appears
    /// once, sorted.
    pub fn provider_customer_pairs(&self) -> &[(u32, u32)] {
        &self.pc_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn tiny() -> TopologyBuilder {
        let mut b = TopologyBuilder::new();
        let a1 = b.add_as(AsSpec {
            asn: 65001,
            country: CountryCode::new("DEU"),
            kind: AsKind::Transit,
            sav_outbound: true,
            transit_routers: vec![ip(10, 0, 1, 1), ip(10, 0, 1, 2)],
        });
        let a2 = b.add_as(AsSpec {
            asn: 65002,
            country: CountryCode::new("BRA"),
            kind: AsKind::EyeballIsp,
            sav_outbound: false,
            transit_routers: vec![ip(10, 0, 2, 1)],
        });
        b.connect(a1, a2, Relationship::ProviderCustomer);
        b.add_host(a1, HostSpec::simple(ip(192, 0, 2, 1)));
        b.add_host(a2, HostSpec::simple(ip(203, 0, 113, 1)));
        b
    }

    #[test]
    fn build_and_query() {
        let t = tiny().build().unwrap();
        assert_eq!(t.as_count(), 2);
        assert_eq!(t.host_count(), 2);
        assert_eq!(t.as_of_node(NodeId(0)), AsId(0));
        assert_eq!(t.as_spec(AsId(1)).country.as_str(), "BRA");
        assert_eq!(
            t.owner_of_ip(ip(192, 0, 2, 1)),
            Some(IpOwner::Host(NodeId(0)))
        );
        assert_eq!(
            t.owner_of_ip(ip(10, 0, 2, 1)),
            Some(IpOwner::Router(AsId(1)))
        );
        assert_eq!(t.as_of_ip(ip(10, 0, 1, 2)), Some(AsId(0)));
        assert_eq!(t.as_by_asn(65002), Some(AsId(1)));
        assert_eq!(t.owner_of_ip(ip(8, 8, 8, 8)), None);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let t = tiny().build().unwrap();
        assert_eq!(
            t.as_neighbors(AsId(0)),
            &[(AsId(1), Relationship::ProviderCustomer)]
        );
        assert_eq!(
            t.as_neighbors(AsId(1)),
            &[(AsId(0), Relationship::ProviderCustomer)]
        );
    }

    #[test]
    fn duplicate_ip_rejected() {
        let mut b = tiny();
        b.add_host(AsId(0), HostSpec::simple(ip(192, 0, 2, 1)));
        assert!(matches!(b.build(), Err(TopologyError::DuplicateIp(_))));
    }

    #[test]
    fn duplicate_asn_rejected() {
        let mut b = tiny();
        b.add_as(AsSpec {
            asn: 65001,
            country: CountryCode::new("USA"),
            kind: AsKind::Transit,
            sav_outbound: true,
            transit_routers: vec![],
        });
        assert!(matches!(b.build(), Err(TopologyError::DuplicateAsn(65001))));
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut b = tiny();
        b.connect(AsId(0), AsId(1), Relationship::Peer);
        assert!(matches!(b.build(), Err(TopologyError::DuplicateLink(_, _))));
    }

    #[test]
    fn anycast_membership_and_spoof_check() {
        let mut b = tiny();
        let node = b.add_host(AsId(0), HostSpec::simple(ip(198, 51, 100, 1)));
        b.add_anycast_instance(ip(8, 8, 8, 8), node);
        let t = b.build().unwrap();
        assert_eq!(t.owner_of_ip(ip(8, 8, 8, 8)), Some(IpOwner::Anycast));
        assert!(t.node_owns_ip(node, ip(8, 8, 8, 8)));
        assert!(t.node_owns_ip(node, ip(198, 51, 100, 1)));
        assert!(!t.node_owns_ip(NodeId(0), ip(8, 8, 8, 8)));
        assert!(
            !t.node_owns_ip(node, ip(1, 2, 3, 4)),
            "arbitrary IP is spoofing"
        );
    }

    #[test]
    fn empty_anycast_rejected() {
        let mut b = TopologyBuilder::new();
        b.anycast.insert(ip(9, 9, 9, 9), vec![]);
        assert!(matches!(
            b.build(),
            Err(TopologyError::EmptyAnycastGroup(_))
        ));
    }

    #[test]
    fn extra_ips_owned_by_same_node() {
        let mut b = tiny();
        let node = b.add_host(
            AsId(1),
            HostSpec {
                ip: ip(203, 0, 113, 10),
                extra_ips: vec![ip(203, 0, 113, 11)],
                access_routers: vec![],
                link_latency: SimDuration::from_millis(1),
            },
        );
        let t = b.build().unwrap();
        assert_eq!(
            t.owner_of_ip(ip(203, 0, 113, 11)),
            Some(IpOwner::Host(node))
        );
        assert!(t.node_owns_ip(node, ip(203, 0, 113, 11)));
    }

    #[test]
    fn shared_access_router_allowed_within_as() {
        let mut b = tiny();
        let shared = ip(10, 9, 9, 9);
        b.add_host(
            AsId(1),
            HostSpec {
                ip: ip(203, 0, 113, 20),
                extra_ips: vec![],
                access_routers: vec![shared],
                link_latency: SimDuration::from_millis(1),
            },
        );
        b.add_host(
            AsId(1),
            HostSpec {
                ip: ip(203, 0, 113, 21),
                extra_ips: vec![],
                access_routers: vec![shared],
                link_latency: SimDuration::from_millis(1),
            },
        );
        let t = b.build().unwrap();
        assert_eq!(t.owner_of_ip(shared), Some(IpOwner::Router(AsId(1))));
    }

    #[test]
    fn provider_customer_ground_truth() {
        let t = tiny().build().unwrap();
        assert_eq!(t.provider_customer_pairs(), &[(65001, 65002)]);
    }

    #[test]
    fn country_code_display() {
        assert_eq!(CountryCode::new("IND").to_string(), "IND");
    }
}
