//! # netsim — a deterministic discrete-event IPv4 Internet simulator
//!
//! This crate is the substrate substituting for the public IPv4 Internet in
//! the reproduction of *Transparent Forwarders: An Unnoticed Component of
//! the Open DNS Infrastructure* (CoNEXT '21). The paper's measurements need:
//!
//! * an AS-level topology with router-level paths (DNSRoute++ walks hops);
//! * per-router TTL decrements and ICMP Time Exceeded generation;
//! * source-address spoofing with per-AS outbound SAV policy (transparent
//!   forwarders only exist where SAV is absent);
//! * anycast services with PoP-proximity selection (public resolvers);
//! * pcap capture of real wire bytes (the zmap + dumpcap pipeline);
//! * fault injection (loss, duplication, jitter) for robustness tests.
//!
//! Design follows the event-driven, allocation-conscious style of smoltcp:
//! hosts implement [`Host`] and interact only through [`Ctx`]; the
//! simulator is single-threaded and fully deterministic from its seed.
//!
//! ## Quick tour
//!
//! ```
//! use netsim::{
//!     AsKind, AsSpec, CountryCode, HostSpec, Relationship, SimConfig, Simulator,
//!     TopologyBuilder, UdpSend, OneShotSender, SimDuration,
//! };
//! use std::net::Ipv4Addr;
//!
//! let mut b = TopologyBuilder::new();
//! let a0 = b.add_as(AsSpec {
//!     asn: 65001,
//!     country: CountryCode::new("DEU"),
//!     kind: AsKind::Transit,
//!     sav_outbound: true,
//!     transit_routers: vec![Ipv4Addr::new(10, 0, 0, 1)],
//! });
//! let scanner = b.add_host(a0, HostSpec::simple(Ipv4Addr::new(192, 0, 2, 1)));
//! let sink = b.add_host(a0, HostSpec::simple(Ipv4Addr::new(192, 0, 2, 2)));
//! let mut sim = Simulator::new(b.build().unwrap(), SimConfig::default());
//! sim.install(scanner, OneShotSender::new(UdpSend::new(
//!     40000, Ipv4Addr::new(192, 0, 2, 2), 53, b"hello".to_vec(),
//! )));
//! sim.schedule_timer(scanner, SimDuration::ZERO, 0);
//! sim.run();
//! assert_eq!(sim.stats().udp_delivered, 1);
//! let _ = sink;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod host;
mod packet;
mod retry;
mod routing;
mod sim;
mod stats;
mod time;
mod topology;

pub mod pcap;
pub mod shard;
pub mod testkit;
pub mod wheel;
pub mod wire;

pub use fault::{mix64, FaultConfig, FaultPlan, FlowKey, FlowVerdict, TokenBucket};
pub use host::{Ctx, Host, UdpSend};
pub use packet::{Datagram, IcmpKind, IcmpMessage, Payload, QuotedDatagram, DEFAULT_TTL};
pub use retry::RetryPolicy;
pub use routing::{Hop, Path, RouteError, RouteResolver};
pub use sim::{OneShotSender, SimConfig, Simulator};
pub use stats::{DropReason, SimStats};
pub use time::{SimDuration, SimTime};
pub use topology::{
    AnycastGroup, AsId, AsKind, AsSpec, CountryCode, HostSpec, IpOwner, NodeId, Relationship,
    Topology, TopologyBuilder, TopologyError,
};
