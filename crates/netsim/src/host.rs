//! The [`Host`] trait — how protocol logic attaches to simulated nodes —
//! and the per-event [`Ctx`] handed to handlers.

use crate::packet::{Datagram, IcmpMessage, Payload, DEFAULT_TTL};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use std::any::Any;
use std::net::Ipv4Addr;

/// A UDP send request issued by a host.
#[derive(Debug, Clone)]
pub struct UdpSend {
    /// Source address. `None` uses the node's primary IP. A `Some` value
    /// that the node does not own is *spoofing* and is subject to the
    /// sending AS's outbound SAV policy — the transparent forwarder's relay
    /// sets this to the original client's address (§2).
    pub src: Option<Ipv4Addr>,
    /// UDP source port.
    pub src_port: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// UDP destination port.
    pub dst_port: u16,
    /// Initial TTL; `None` uses [`DEFAULT_TTL`]. DNSRoute++ sweeps this
    /// field; a transparent forwarder sets it to `arrival_ttl - 1`.
    pub ttl: Option<u8>,
    /// Payload bytes (typically an encoded DNS message). Shared, so a
    /// relay reuses the arriving datagram's bytes without copying.
    pub payload: Payload,
}

impl UdpSend {
    /// Plain send from the node's primary address with default TTL.
    pub fn new(src_port: u16, dst: Ipv4Addr, dst_port: u16, payload: impl Into<Payload>) -> Self {
        UdpSend {
            src: None,
            src_port,
            dst,
            dst_port,
            ttl: None,
            payload: payload.into(),
        }
    }

    /// Effective TTL.
    pub fn effective_ttl(&self) -> u8 {
        self.ttl.unwrap_or(DEFAULT_TTL)
    }
}

/// Action buffer collected during one handler invocation and executed by
/// the simulator afterwards.
#[derive(Debug)]
pub(crate) enum Action {
    SendUdp {
        send: UdpSend,
        /// Retransmission attempt (0 = original). Part of the fault-plane
        /// flow key, so a retransmit's fate re-rolls independently.
        attempt: u8,
    },
    SetTimer {
        delay: SimDuration,
        token: u64,
    },
    SetTimerBatch {
        delay: SimDuration,
        stride: SimDuration,
        count: u32,
        token: u64,
        token_step: u64,
    },
    SendPortUnreachable {
        original: Datagram,
    },
    SendTimeExceeded {
        original: Datagram,
    },
}

/// Context passed to every host handler. Sends and timers are buffered and
/// executed after the handler returns, keeping handlers pure with respect
/// to the event queue.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) topo: &'a Topology,
    pub(crate) actions: Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's primary IP address.
    pub fn primary_ip(&self) -> Ipv4Addr {
        self.topo.host_spec(self.node).ip
    }

    /// Read access to the topology (for ACL checks, AS lookups, …).
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Queue a UDP send (an original transmission, attempt 0).
    pub fn send_udp(&mut self, send: UdpSend) {
        self.actions.push(Action::SendUdp { send, attempt: 0 });
    }

    /// Queue a UDP send tagged as retransmission attempt `attempt`
    /// (1-based for retries). The attempt number feeds the stateless
    /// fault plane's flow key — a retry's drop/corrupt/jitter decisions
    /// are independent of the original's — and attempts > 0 are counted
    /// in [`crate::SimStats::retransmits_sent`].
    pub fn send_udp_attempt(&mut self, send: UdpSend, attempt: u8) {
        self.actions.push(Action::SendUdp { send, attempt });
    }

    /// Queue a timer that fires `delay` from now, delivering `token` to
    /// [`Host::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Queue a *batch* of `count` timer callbacks sharing one queue event:
    /// the `k`-th (0-based) fires at `now + delay + k·stride` delivering
    /// `token + k·token_step` (wrapping) to [`Host::on_timer`]. Callback
    /// times are exactly what `count` individual [`Ctx::set_timer`] calls
    /// would produce — batching changes queue cost, never timing — which
    /// is how scanners pace a burst of B probes on one event instead of B.
    pub fn set_timer_batch(
        &mut self,
        delay: SimDuration,
        stride: SimDuration,
        count: u32,
        token: u64,
        token_step: u64,
    ) {
        self.actions.push(Action::SetTimerBatch {
            delay,
            stride,
            count,
            token,
            token_step,
        });
    }

    /// Queue an ICMP port-unreachable in response to `original` (what a
    /// host with no listener on the probed port does).
    pub fn send_port_unreachable(&mut self, original: &Datagram) {
        self.actions.push(Action::SendPortUnreachable {
            original: original.clone(),
        });
    }

    /// Queue an ICMP time-exceeded in response to `original`. A transparent
    /// forwarder does this when a query arrives whose remaining TTL does not
    /// survive the relay decrement — "the IP stack of the transparent
    /// forwarder replies when the TTL is exceeded, which stops forwarding"
    /// (§5). This is what makes the forwarder itself visible to DNSRoute++.
    pub fn send_time_exceeded(&mut self, original: &Datagram) {
        self.actions.push(Action::SendTimeExceeded {
            original: original.clone(),
        });
    }
}

/// Protocol logic attached to a node.
///
/// Handlers receive a [`Ctx`] for issuing sends and timers. Implementations
/// must provide `as_any`/`as_any_mut` so results can be extracted after a
/// run (see [`crate::sim::Simulator::host_as`]); the
/// [`crate::impl_host_downcast`] macro writes them for you.
///
/// Hosts are `Send` so a fully populated [`crate::Simulator`] can move to
/// a worker thread — sharded censuses drive one simulator per thread.
pub trait Host: Send + 'static {
    /// A UDP datagram arrived for one of this node's addresses.
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram);

    /// An ICMP message arrived (Time Exceeded, Port Unreachable, …).
    fn on_icmp(&mut self, ctx: &mut Ctx<'_>, icmp: IcmpMessage) {
        let _ = (ctx, icmp);
    }

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Downcast support (usually via [`crate::impl_host_downcast`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements [`Host::as_any`]/[`Host::as_any_mut`] for a type.
#[macro_export]
macro_rules! impl_host_downcast {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_send_defaults() {
        let s = UdpSend::new(4000, Ipv4Addr::new(1, 2, 3, 4), 53, vec![1]);
        assert_eq!(s.src, None);
        assert_eq!(s.effective_ttl(), DEFAULT_TTL);
        let spoofed = UdpSend {
            src: Some(Ipv4Addr::new(9, 9, 9, 9)),
            ttl: Some(3),
            ..s
        };
        assert_eq!(spoofed.effective_ttl(), 3);
    }
}
