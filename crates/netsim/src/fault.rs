//! Fault injection and rate limiting.
//!
//! Adverse network conditions are first-class: packet drop, corruption,
//! duplication, and latency jitter are configured through a [`FaultPlan`]
//! and decided **statelessly per packet** — every verdict is a SplitMix64
//! hash of `(plan salt, src, dst, src_port, txid, attempt)`, never a draw
//! from a sequential RNG. That makes a lossy run bit-identical for any
//! shard count, any event order, and any warm-cache rerun: the fate of a
//! probe depends only on its flow identity, not on how many packets the
//! simulator happened to process before it.
//!
//! The token bucket implements the paper's sensor rate limiting ("one
//! request every 5 minutes per source /24", §3.1) and the authoritative
//! server's 20k pps budget (§4.1).

use crate::time::{SimDuration, SimTime};
use crate::topology::{AsKind, CountryCode};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One fault profile: probabilities plus a jitter bound. Used standalone
/// (uniform faults) or as a per-country / per-AS-kind override inside a
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped in transit.
    pub drop_probability: f64,
    /// Probability a delivered packet is duplicated (second copy arrives
    /// one jitter interval later).
    pub duplicate_probability: f64,
    /// Probability a packet is corrupted in transit (the smoltcp examples'
    /// `--corrupt-chance`). The Internet checksum provably catches every
    /// single-bit error, so the receiving UDP stack discards such packets:
    /// corruption manifests as a distinct drop class. (Content-altering
    /// middleboxes that *recompute* checksums are modeled separately via
    /// `odns::Manipulation`.)
    pub corrupt_probability: f64,
    /// Maximum uniform extra latency added per packet. Zero disables
    /// jitter. Jitter also produces reordering between back-to-back sends.
    pub max_jitter: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            corrupt_probability: 0.0,
            max_jitter: SimDuration::ZERO,
        }
    }
}

/// The flow identity a fault verdict is keyed on. Two packets with the
/// same key share a fate; bumping `attempt` (a retransmission) re-rolls
/// every decision independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// Source address on the wire (post-spoofing).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// DNS transaction id (first two payload bytes; zero when absent).
    pub txid: u16,
    /// Retransmission attempt, 0 for the original send.
    pub attempt: u8,
}

/// The complete, precomputed fate of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowVerdict {
    /// Silently dropped before routing.
    pub drop: bool,
    /// Corrupted in transit — discarded by the receiver's checksum.
    pub corrupt: bool,
    /// A second copy is delivered shortly after the first.
    pub duplicate: bool,
    /// Extra delivery latency in `[0, max_jitter]`.
    pub jitter: SimDuration,
    /// Extra latency of the duplicate copy beyond the original's arrival.
    pub duplicate_jitter: SimDuration,
}

impl FlowVerdict {
    /// The no-fault verdict (quiet plans short-circuit to this).
    pub const CLEAN: FlowVerdict = FlowVerdict {
        drop: false,
        corrupt: false,
        duplicate: false,
        jitter: SimDuration::ZERO,
        duplicate_jitter: SimDuration::ZERO,
    };
}

/// SplitMix64 finalizer — the same mixing the shard-seed derivation uses.
/// Public so the retry layer can key its per-probe jitter off it.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-decision stream constants: each fault dimension reads an
/// independent hash of the same flow key.
const STREAM_DROP: u64 = 0xD509;
const STREAM_CORRUPT: u64 = 0xC055;
const STREAM_DUPLICATE: u64 = 0xD0B1;
const STREAM_JITTER: u64 = 0x71AA;
const STREAM_DUP_JITTER: u64 = 0x71BB;
/// Stream for deriving a plan salt from a simulator seed (see
/// [`FaultPlan::salted`]).
const STREAM_SALT: u64 = 0x5A17;

fn flow_hash(salt: u64, key: &FlowKey, stream: u64) -> u64 {
    let endpoints = (u64::from(u32::from(key.src)) << 32) | u64::from(u32::from(key.dst));
    let ports =
        (u64::from(key.src_port) << 32) | (u64::from(key.txid) << 16) | u64::from(key.attempt);
    let mut h = mix64(salt ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = mix64(h ^ endpoints);
    h = mix64(h ^ ports);
    h
}

/// Map a hash to a unit-interval f64 (53 mantissa bits, unbiased).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a hash to a duration in `[0, max]`.
fn bounded(h: u64, max: SimDuration) -> SimDuration {
    if max == SimDuration::ZERO {
        SimDuration::ZERO
    } else {
        SimDuration(h % (max.as_micros() + 1))
    }
}

fn probability_ok(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

impl FaultConfig {
    /// No faults at all (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A lossy profile for failure-injection tests: `p` drop probability
    /// with proportionate duplication/corruption and mild jitter.
    pub fn lossy(p: f64) -> Self {
        FaultConfig {
            drop_probability: p,
            duplicate_probability: p / 4.0,
            corrupt_probability: p / 8.0,
            max_jitter: SimDuration::from_millis(5),
        }
    }

    /// True when this profile injects nothing.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.max_jitter == SimDuration::ZERO
    }

    /// Reject NaN and out-of-range probabilities loudly. Runs at
    /// construction/installation time (plan builders, `Simulator::new`,
    /// `set_faults`) — decision sites never clamp.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("corrupt_probability", self.corrupt_probability),
        ] {
            if !probability_ok(p) {
                return Err(format!("{name} = {p} is not a probability in [0, 1]"));
            }
        }
        Ok(())
    }

    /// Decide this packet's complete fate from its flow key alone.
    pub fn decide(&self, salt: u64, key: &FlowKey) -> FlowVerdict {
        FlowVerdict {
            drop: self.drop_probability > 0.0
                && unit(flow_hash(salt, key, STREAM_DROP)) < self.drop_probability,
            corrupt: self.corrupt_probability > 0.0
                && unit(flow_hash(salt, key, STREAM_CORRUPT)) < self.corrupt_probability,
            duplicate: self.duplicate_probability > 0.0
                && unit(flow_hash(salt, key, STREAM_DUPLICATE)) < self.duplicate_probability,
            jitter: bounded(flow_hash(salt, key, STREAM_JITTER), self.max_jitter),
            duplicate_jitter: bounded(flow_hash(salt, key, STREAM_DUP_JITTER), self.max_jitter),
        }
    }
}

/// The world's fault geography: a base profile plus per-country and
/// per-AS-kind overrides, all keyed decisions salted by one value shared
/// across every shard world (which is what keeps a lossy census
/// K-invariant — shard worlds have different simulator seeds, but the
/// fault plane must not care).
///
/// Precedence per packet (keyed by the **destination**'s AS): country
/// override, else AS-kind override, else base.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Decision salt. `0` means "derive from the simulator seed at
    /// installation" ([`FaultPlan::salted`]); sharded drivers set an
    /// explicit salt so all shards agree.
    pub salt: u64,
    /// Profile applied where no override matches.
    pub base: FaultConfig,
    /// Overrides by destination country.
    pub by_country: BTreeMap<CountryCode, FaultConfig>,
    /// Overrides by destination AS kind.
    pub by_kind: BTreeMap<AsKind, FaultConfig>,
}

impl FaultPlan {
    /// No faults anywhere.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same profile everywhere (no geography).
    pub fn uniform(base: FaultConfig) -> Self {
        FaultPlan {
            base,
            ..FaultPlan::default()
        }
    }

    /// Uniform lossy profile, as [`FaultConfig::lossy`].
    pub fn lossy(p: f64) -> Self {
        Self::uniform(FaultConfig::lossy(p))
    }

    /// Builder: set an explicit decision salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Builder: override the profile for one destination country.
    pub fn with_country(mut self, country: CountryCode, cfg: FaultConfig) -> Self {
        self.by_country.insert(country, cfg);
        self
    }

    /// Builder: override the profile for one destination AS kind.
    pub fn with_kind(mut self, kind: AsKind, cfg: FaultConfig) -> Self {
        self.by_kind.insert(kind, cfg);
        self
    }

    /// Fill a zero salt from `seed` (leaves explicit salts untouched).
    /// The simulator calls this at installation so plain single-world
    /// runs get seed-dependent fault patterns for free.
    pub fn salted(mut self, seed: u64) -> Self {
        if self.salt == 0 {
            self.salt = mix64(seed ^ STREAM_SALT);
        }
        self
    }

    /// True when no profile anywhere injects anything — the hot path's
    /// one-branch fast exit.
    pub fn is_quiet(&self) -> bool {
        self.base.is_none()
            && self.by_country.values().all(FaultConfig::is_none)
            && self.by_kind.values().all(FaultConfig::is_none)
    }

    /// Validate every profile in the plan.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate().map_err(|e| format!("base: {e}"))?;
        for (c, cfg) in &self.by_country {
            cfg.validate()
                .map_err(|e| format!("country {}: {e}", c.as_str()))?;
        }
        for (k, cfg) in &self.by_kind {
            cfg.validate().map_err(|e| format!("kind {k:?}: {e}"))?;
        }
        Ok(())
    }

    /// Panicking form of [`FaultPlan::validate`], used at installation.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid FaultPlan: {e}");
        }
    }

    /// The profile in effect for a destination with the given geography.
    pub fn effective(&self, country: Option<CountryCode>, kind: Option<AsKind>) -> &FaultConfig {
        if let Some(cfg) = country.and_then(|c| self.by_country.get(&c)) {
            return cfg;
        }
        if let Some(cfg) = kind.and_then(|k| self.by_kind.get(&k)) {
            return cfg;
        }
        &self.base
    }

    /// Decide a packet's fate under the effective profile.
    pub fn decide(
        &self,
        key: &FlowKey,
        country: Option<CountryCode>,
        kind: Option<AsKind>,
    ) -> FlowVerdict {
        self.effective(country, kind).decide(self.salt, key)
    }
}

impl From<FaultConfig> for FaultPlan {
    fn from(cfg: FaultConfig) -> Self {
        FaultPlan::uniform(cfg)
    }
}

/// A deterministic token bucket driven by simulated time.
///
/// `capacity` tokens maximum; `refill_per_period` tokens added every
/// `period`. Each admitted request takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_per_period: u64,
    period: SimDuration,
    last_refill: SimTime,
}

impl TokenBucket {
    /// New bucket, starting full, with refills anchored at simulated time
    /// zero. Prefer [`TokenBucket::new_at`] for buckets created lazily at
    /// first use: a zero anchor makes refills land on *absolute* period
    /// boundaries, so two requests seconds apart can both be admitted
    /// whenever they straddle one.
    pub fn new(capacity: u64, refill_per_period: u64, period: SimDuration) -> Self {
        Self::new_at(capacity, refill_per_period, period, SimTime::ZERO)
    }

    /// New bucket, starting full, with refills anchored at `origin` — the
    /// moment the bucket comes into existence. Periods are then measured
    /// from the bucket's own first sighting, which makes admit/shed
    /// decisions a function of request *inter-arrival times* only, never
    /// of where the requests happen to fall on the absolute clock.
    pub fn new_at(
        capacity: u64,
        refill_per_period: u64,
        period: SimDuration,
        origin: SimTime,
    ) -> Self {
        assert!(period.as_micros() > 0, "refill period must be positive");
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_period,
            period,
            last_refill: origin,
        }
    }

    /// The paper's sensor policy: one answer per 5 minutes (per bucket; the
    /// caller keys buckets by source /24).
    pub fn one_per_5min() -> Self {
        TokenBucket::new(1, 1, SimDuration::from_secs(300))
    }

    /// A packets-per-second budget, e.g. the authoritative server's 20k pps.
    pub fn per_second(pps: u64) -> Self {
        TokenBucket::new(pps, pps, SimDuration::from_secs(1))
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now - self.last_refill;
        let periods = elapsed.as_micros() / self.period.as_micros();
        if periods > 0 {
            let added = periods.saturating_mul(self.refill_per_period);
            self.tokens = (self.tokens.saturating_add(added)).min(self.capacity);
            self.last_refill += SimDuration(periods * self.period.as_micros());
        }
    }

    /// Try to admit one request at time `now`.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::from((i as u32) | 0x0a00_0000),
            src_port: 33_000u16.wrapping_add(i as u16),
            txid: (i >> 16) as u16,
            attempt: 0,
        }
    }

    #[test]
    fn default_faults_do_nothing() {
        let f = FaultConfig::none();
        for i in 0..100 {
            assert_eq!(f.decide(7, &key(i)), FlowVerdict::CLEAN);
        }
        assert!(FaultPlan::none().is_quiet());
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let f = FaultConfig {
            drop_probability: 0.3,
            ..FaultConfig::none()
        };
        let drops = (0..10_000).filter(|&i| f.decide(42, &key(i)).drop).count();
        assert!(
            (2_500..3_500).contains(&drops),
            "got {drops} drops out of 10000"
        );
    }

    #[test]
    fn jitter_bounded_and_nontrivial() {
        let f = FaultConfig {
            max_jitter: SimDuration::from_millis(3),
            ..FaultConfig::none()
        };
        let mut nonzero = 0;
        for i in 0..1000 {
            let j = f.decide(7, &key(i)).jitter;
            assert!(j <= SimDuration::from_millis(3));
            if j > SimDuration::ZERO {
                nonzero += 1;
            }
        }
        assert!(nonzero > 900, "jitter should almost always be nonzero");
    }

    #[test]
    fn verdicts_are_a_pure_function_of_salt_and_key() {
        let f = FaultConfig::lossy(0.2);
        for i in 0..500 {
            assert_eq!(f.decide(99, &key(i)), f.decide(99, &key(i)));
        }
        let differs = (0..500).any(|i| f.decide(99, &key(i)) != f.decide(100, &key(i)));
        assert!(differs, "a different salt must change the pattern");
    }

    #[test]
    fn attempts_reroll_independently() {
        let f = FaultConfig {
            drop_probability: 0.5,
            ..FaultConfig::none()
        };
        let differs = (0..200).any(|i| {
            let k0 = key(i);
            let k1 = FlowKey { attempt: 1, ..k0 };
            f.decide(5, &k0).drop != f.decide(5, &k1).drop
        });
        assert!(
            differs,
            "retransmissions must not share the original's fate"
        );
    }

    #[test]
    fn validation_rejects_nan_and_out_of_range() {
        let nan = FaultConfig {
            drop_probability: f64::NAN,
            ..FaultConfig::none()
        };
        assert!(nan.validate().is_err());
        let big = FaultConfig {
            corrupt_probability: 1.5,
            ..FaultConfig::none()
        };
        assert!(big.validate().is_err());
        let neg = FaultConfig {
            duplicate_probability: -0.1,
            ..FaultConfig::none()
        };
        assert!(neg.validate().is_err());
        assert!(FaultConfig::lossy(0.3).validate().is_ok());
        let plan = FaultPlan::none().with_kind(AsKind::Transit, big);
        assert!(plan.validate().unwrap_err().contains("Transit"));
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn assert_valid_panics_loudly() {
        FaultPlan::lossy(f64::INFINITY).assert_valid();
    }

    #[test]
    fn plan_precedence_country_beats_kind_beats_base() {
        let drop_all = FaultConfig {
            drop_probability: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::uniform(FaultConfig::none())
            .with_kind(AsKind::EyeballIsp, FaultConfig::lossy(0.5))
            .with_country(CountryCode::new("BRA"), drop_all);
        let bra = Some(CountryCode::new("BRA"));
        let deu = Some(CountryCode::new("DEU"));
        let isp = Some(AsKind::EyeballIsp);
        assert_eq!(plan.effective(bra, isp), &drop_all);
        assert_eq!(plan.effective(deu, isp), &FaultConfig::lossy(0.5));
        assert_eq!(
            plan.effective(deu, Some(AsKind::Transit)),
            &FaultConfig::none()
        );
        assert_eq!(plan.effective(None, None), &FaultConfig::none());
        assert!(!plan.is_quiet());
    }

    #[test]
    fn salting_fills_only_zero_salts() {
        let derived = FaultPlan::lossy(0.1).salted(7);
        assert_ne!(derived.salt, 0);
        assert_eq!(derived.clone().salted(8).salt, derived.salt);
        let explicit = FaultPlan::lossy(0.1).with_salt(123).salted(7);
        assert_eq!(explicit.salt, 123);
        assert_ne!(
            FaultPlan::lossy(0.1).salted(7).salt,
            FaultPlan::lossy(0.1).salted(9).salt
        );
    }

    #[test]
    fn plan_from_config_is_uniform() {
        let plan: FaultPlan = FaultConfig::lossy(0.2).into();
        assert_eq!(plan.base, FaultConfig::lossy(0.2));
        assert!(plan.by_country.is_empty() && plan.by_kind.is_empty());
    }

    #[test]
    fn bucket_serves_capacity_then_blocks() {
        let mut b = TokenBucket::new(3, 3, SimDuration::from_secs(1));
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(
            !b.try_take(t0),
            "fourth request in the same instant must be rejected"
        );
    }

    #[test]
    fn bucket_refills_after_period() {
        let mut b = TokenBucket::new(1, 1, SimDuration::from_secs(300));
        assert!(b.try_take(SimTime::ZERO));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(300)));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(300)));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(2, 2, SimDuration::from_secs(1));
        // Long idle: refill many periods, but cap at capacity.
        assert_eq!(b.available(SimTime::ZERO + SimDuration::from_secs(100)), 2);
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
    }

    #[test]
    fn five_minute_policy_matches_paper() {
        let mut b = TokenBucket::one_per_5min();
        assert!(b.try_take(SimTime::ZERO));
        // A scan retry 20 seconds later is ignored.
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(20)));
        // The next periodic campaign pass (hours later) is served.
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(3600)));
    }

    #[test]
    fn per_second_budget() {
        let mut b = TokenBucket::per_second(2);
        let t = SimTime::ZERO;
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(!b.try_take(t));
        assert!(b.try_take(t + SimDuration::from_secs(1)));
    }

    #[test]
    fn zero_anchored_bucket_leaks_across_absolute_boundaries() {
        // The hazard new_at exists for: a zero-anchored 5-minute bucket
        // admits two requests 2 s apart when they straddle an absolute
        // 300 s boundary.
        let mut b = TokenBucket::one_per_5min();
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(301)));
    }

    #[test]
    fn origin_anchored_bucket_depends_on_inter_arrival_only() {
        for start_secs in [0u64, 17, 299, 600, 3601] {
            let t0 = SimTime::ZERO + SimDuration::from_secs(start_secs);
            let mut b = TokenBucket::new_at(1, 1, SimDuration::from_secs(300), t0);
            assert!(b.try_take(t0), "first request admitted at t0+{start_secs}s");
            assert!(
                !b.try_take(t0 + SimDuration::from_secs(2)),
                "2 s later is shed whatever the absolute clock says"
            );
            assert!(
                !b.try_take(t0 + SimDuration::from_secs(299)),
                "still inside the period"
            );
            assert!(b.try_take(t0 + SimDuration::from_secs(300)));
        }
    }
}
