//! Fault injection and rate limiting.
//!
//! Following the smoltcp example-harness idiom, adverse network conditions
//! are first-class: packet drop, duplication, and latency jitter are
//! configured globally and drawn from the simulator's seeded RNG, so a
//! faulty run is exactly reproducible. The token bucket implements the
//! paper's sensor rate limiting ("one request every 5 minutes per source
//! /24", §3.1) and the authoritative server's 20k pps budget (§4.1).

use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// Global fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped in transit.
    pub drop_probability: f64,
    /// Probability a delivered packet is duplicated (second copy arrives
    /// one jitter interval later).
    pub duplicate_probability: f64,
    /// Probability a packet is corrupted in transit (the smoltcp examples'
    /// `--corrupt-chance`). The Internet checksum provably catches every
    /// single-bit error, so the receiving UDP stack discards such packets:
    /// corruption manifests as a distinct drop class. (Content-altering
    /// middleboxes that *recompute* checksums are modeled separately via
    /// `odns::Manipulation`.)
    pub corrupt_probability: f64,
    /// Maximum uniform extra latency added per packet. Zero disables
    /// jitter. Jitter also produces reordering between back-to-back sends.
    pub max_jitter: SimDuration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            corrupt_probability: 0.0,
            max_jitter: SimDuration::ZERO,
        }
    }
}

impl FaultConfig {
    /// No faults at all (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A lossy profile for failure-injection tests: `p` drop probability
    /// with proportionate duplication/corruption and mild jitter.
    pub fn lossy(p: f64) -> Self {
        FaultConfig {
            drop_probability: p,
            duplicate_probability: p / 4.0,
            corrupt_probability: p / 8.0,
            max_jitter: SimDuration::from_millis(5),
        }
    }

    /// Decide whether to drop, using the simulator RNG.
    pub fn should_drop<R: Rng>(&self, rng: &mut R) -> bool {
        self.drop_probability > 0.0 && rng.gen_bool(self.drop_probability.clamp(0.0, 1.0))
    }

    /// Decide whether to duplicate.
    pub fn should_duplicate<R: Rng>(&self, rng: &mut R) -> bool {
        self.duplicate_probability > 0.0 && rng.gen_bool(self.duplicate_probability.clamp(0.0, 1.0))
    }

    /// Decide whether a packet is corrupted in transit (and therefore
    /// discarded by the receiver's checksum verification).
    pub fn should_corrupt<R: Rng>(&self, rng: &mut R) -> bool {
        self.corrupt_probability > 0.0 && rng.gen_bool(self.corrupt_probability.clamp(0.0, 1.0))
    }

    /// Draw a jitter value in `[0, max_jitter]`.
    pub fn jitter<R: Rng>(&self, rng: &mut R) -> SimDuration {
        if self.max_jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration(rng.gen_range(0..=self.max_jitter.as_micros()))
        }
    }
}

/// A deterministic token bucket driven by simulated time.
///
/// `capacity` tokens maximum; `refill_per_period` tokens added every
/// `period`. Each admitted request takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_per_period: u64,
    period: SimDuration,
    last_refill: SimTime,
}

impl TokenBucket {
    /// New bucket, starting full, with refills anchored at simulated time
    /// zero. Prefer [`TokenBucket::new_at`] for buckets created lazily at
    /// first use: a zero anchor makes refills land on *absolute* period
    /// boundaries, so two requests seconds apart can both be admitted
    /// whenever they straddle one.
    pub fn new(capacity: u64, refill_per_period: u64, period: SimDuration) -> Self {
        Self::new_at(capacity, refill_per_period, period, SimTime::ZERO)
    }

    /// New bucket, starting full, with refills anchored at `origin` — the
    /// moment the bucket comes into existence. Periods are then measured
    /// from the bucket's own first sighting, which makes admit/shed
    /// decisions a function of request *inter-arrival times* only, never
    /// of where the requests happen to fall on the absolute clock.
    pub fn new_at(
        capacity: u64,
        refill_per_period: u64,
        period: SimDuration,
        origin: SimTime,
    ) -> Self {
        assert!(period.as_micros() > 0, "refill period must be positive");
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_period,
            period,
            last_refill: origin,
        }
    }

    /// The paper's sensor policy: one answer per 5 minutes (per bucket; the
    /// caller keys buckets by source /24).
    pub fn one_per_5min() -> Self {
        TokenBucket::new(1, 1, SimDuration::from_secs(300))
    }

    /// A packets-per-second budget, e.g. the authoritative server's 20k pps.
    pub fn per_second(pps: u64) -> Self {
        TokenBucket::new(pps, pps, SimDuration::from_secs(1))
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now - self.last_refill;
        let periods = elapsed.as_micros() / self.period.as_micros();
        if periods > 0 {
            let added = periods.saturating_mul(self.refill_per_period);
            self.tokens = (self.tokens.saturating_add(added)).min(self.capacity);
            self.last_refill += SimDuration(periods * self.period.as_micros());
        }
    }

    /// Try to admit one request at time `now`.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_faults_do_nothing() {
        let f = FaultConfig::none();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!f.should_drop(&mut rng));
            assert!(!f.should_duplicate(&mut rng));
            assert_eq!(f.jitter(&mut rng), SimDuration::ZERO);
        }
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let f = FaultConfig {
            drop_probability: 0.3,
            ..FaultConfig::none()
        };
        let mut rng = SmallRng::seed_from_u64(42);
        let drops = (0..10_000).filter(|_| f.should_drop(&mut rng)).count();
        assert!(
            (2_500..3_500).contains(&drops),
            "got {drops} drops out of 10000"
        );
    }

    #[test]
    fn jitter_bounded() {
        let f = FaultConfig {
            max_jitter: SimDuration::from_millis(3),
            ..FaultConfig::none()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(f.jitter(&mut rng) <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn fault_decisions_deterministic_for_same_seed() {
        let f = FaultConfig::lossy(0.2);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..500 {
            assert_eq!(f.should_drop(&mut a), f.should_drop(&mut b));
            assert_eq!(f.jitter(&mut a), f.jitter(&mut b));
        }
    }

    #[test]
    fn bucket_serves_capacity_then_blocks() {
        let mut b = TokenBucket::new(3, 3, SimDuration::from_secs(1));
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(
            !b.try_take(t0),
            "fourth request in the same instant must be rejected"
        );
    }

    #[test]
    fn bucket_refills_after_period() {
        let mut b = TokenBucket::new(1, 1, SimDuration::from_secs(300));
        assert!(b.try_take(SimTime::ZERO));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(300)));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(300)));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(2, 2, SimDuration::from_secs(1));
        // Long idle: refill many periods, but cap at capacity.
        assert_eq!(b.available(SimTime::ZERO + SimDuration::from_secs(100)), 2);
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(100)));
    }

    #[test]
    fn five_minute_policy_matches_paper() {
        let mut b = TokenBucket::one_per_5min();
        assert!(b.try_take(SimTime::ZERO));
        // A scan retry 20 seconds later is ignored.
        assert!(!b.try_take(SimTime::ZERO + SimDuration::from_secs(20)));
        // The next periodic campaign pass (hours later) is served.
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(3600)));
    }

    #[test]
    fn per_second_budget() {
        let mut b = TokenBucket::per_second(2);
        let t = SimTime::ZERO;
        assert!(b.try_take(t));
        assert!(b.try_take(t));
        assert!(!b.try_take(t));
        assert!(b.try_take(t + SimDuration::from_secs(1)));
    }

    #[test]
    fn zero_anchored_bucket_leaks_across_absolute_boundaries() {
        // The hazard new_at exists for: a zero-anchored 5-minute bucket
        // admits two requests 2 s apart when they straddle an absolute
        // 300 s boundary.
        let mut b = TokenBucket::one_per_5min();
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(299)));
        assert!(b.try_take(SimTime::ZERO + SimDuration::from_secs(301)));
    }

    #[test]
    fn origin_anchored_bucket_depends_on_inter_arrival_only() {
        for start_secs in [0u64, 17, 299, 600, 3601] {
            let t0 = SimTime::ZERO + SimDuration::from_secs(start_secs);
            let mut b = TokenBucket::new_at(1, 1, SimDuration::from_secs(300), t0);
            assert!(b.try_take(t0), "first request admitted at t0+{start_secs}s");
            assert!(
                !b.try_take(t0 + SimDuration::from_secs(2)),
                "2 s later is shed whatever the absolute clock says"
            );
            assert!(
                !b.try_take(t0 + SimDuration::from_secs(299)),
                "still inside the period"
            );
            assert!(b.try_take(t0 + SimDuration::from_secs(300)));
        }
    }
}
