//! Minimal libpcap-format writer and reader (LINKTYPE_RAW: raw IPv4).
//!
//! The paper's scan server runs `dumpcap` alongside `zmap` and all analysis
//! happens offline on the pcap (§A.2, `dns-scan-server`). We reproduce that
//! pipeline: the scanner's capture tap produces real pcap bytes, and the
//! analysis crate re-parses them — so the correlation step works on exactly
//! the information a real capture would contain.

use crate::time::SimTime;

/// libpcap global-header magic, little-endian, microsecond timestamps.
const MAGIC_LE_US: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin directly with an IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;
/// Snapshot length declared in the global header; records never include
/// more than this many bytes (`incl_len <= SNAPLEN`), exactly like a real
/// `dumpcap -s 65535` capture.
pub const SNAPLEN: u32 = 65_535;

/// A single captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Raw IPv4 bytes (starting at the IP header), truncated to [`SNAPLEN`].
    pub data: Vec<u8>,
    /// Original on-the-wire length; exceeds `data.len()` only for packets
    /// the snapshot length truncated.
    pub orig_len: u32,
}

/// Errors from the pcap reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Stream shorter than a global header.
    TooShort,
    /// Unknown magic number.
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A record header claimed more bytes than remain.
    TruncatedRecord,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::TooShort => write!(f, "pcap stream shorter than global header"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic 0x{m:08x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported pcap linktype {l}"),
            PcapError::TruncatedRecord => write!(f, "truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Streaming pcap writer producing bytes in memory.
#[derive(Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    packets: usize,
}

impl Default for PcapWriter {
    /// Same as [`PcapWriter::new`]: the global header is always emitted.
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// Create a writer with the global header already emitted.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC_LE_US.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&SNAPLEN.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        PcapWriter { buf, packets: 0 }
    }

    /// Append one packet record. Packets beyond [`SNAPLEN`] are truncated
    /// to the declared snapshot length with `orig_len` recording the full
    /// size, as the global header promises readers.
    pub fn write(&mut self, ts: SimTime, data: &[u8]) {
        self.write_record(ts, data, data.len() as u32);
    }

    /// Append a record whose bytes may already be snaplen-truncated, with
    /// an explicit original length (the merge path re-emitting records a
    /// previous writer truncated).
    fn write_record(&mut self, ts: SimTime, data: &[u8], orig_len: u32) {
        let incl = data.len().min(SNAPLEN as usize);
        let us = ts.as_micros();
        let secs = (us / 1_000_000) as u32;
        let micros = (us % 1_000_000) as u32;
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&micros.to_le_bytes());
        self.buf.extend_from_slice(&(incl as u32).to_le_bytes());
        self.buf.extend_from_slice(&orig_len.to_le_bytes());
        self.buf.extend_from_slice(&data[..incl]);
        self.packets += 1;
    }

    /// Append one packet record whose bytes are produced *in place*: `f`
    /// appends the packet directly onto the capture buffer (no per-record
    /// staging Vec — the zero-copy tap path), and the record header is
    /// back-patched with the resulting length, snaplen-truncated like
    /// [`PcapWriter::write`].
    pub fn record_with<F: FnOnce(&mut Vec<u8>)>(&mut self, ts: SimTime, f: F) {
        let us = ts.as_micros();
        let secs = (us / 1_000_000) as u32;
        let micros = (us % 1_000_000) as u32;
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&micros.to_le_bytes());
        let len_pos = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]); // incl_len + orig_len, patched below
        let data_start = self.buf.len();
        f(&mut self.buf);
        let orig = (self.buf.len() - data_start) as u32;
        let incl = orig.min(SNAPLEN);
        self.buf.truncate(data_start + incl as usize);
        self.buf[len_pos..len_pos + 4].copy_from_slice(&incl.to_le_bytes());
        self.buf[len_pos + 4..len_pos + 8].copy_from_slice(&orig.to_le_bytes());
        self.packets += 1;
    }

    /// Number of records written so far.
    pub fn packet_count(&self) -> usize {
        self.packets
    }

    /// Finish, yielding the full pcap byte stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far without consuming the writer.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Merge several pcap streams into one, records interleaved by capture
/// timestamp (stable: ties keep the input-stream order). The per-shard
/// taps of a sharded experiment each produce their own capture on their
/// own simulated clock; this joins them into a single stream that real
/// tools (wireshark/tshark) open directly. Note that *analysis* merges at
/// the record-stream level instead — `(port, txid)` tuples restart per
/// shard, so correlation must stay per-capture (see `analysis`'s shard
/// ingestion) even though inspection wants one file.
pub fn merge_captures<S: AsRef<[u8]>>(parts: &[S]) -> Result<Vec<u8>, PcapError> {
    let mut records: Vec<CapturedPacket> = Vec::new();
    for part in parts {
        records.extend(read_pcap(part.as_ref())?);
    }
    records.sort_by_key(|r| r.ts); // stable: equal stamps keep input order
    let mut w = PcapWriter::new();
    for r in &records {
        w.write_record(r.ts, &r.data, r.orig_len);
    }
    Ok(w.finish())
}

/// Parse a pcap byte stream produced by [`PcapWriter`] (or any LE,
/// microsecond, LINKTYPE_RAW pcap).
pub fn read_pcap(bytes: &[u8]) -> Result<Vec<CapturedPacket>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::TooShort);
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != MAGIC_LE_US {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::BadLinkType(linktype));
    }
    let mut out = Vec::new();
    let mut pos = 24usize;
    while pos < bytes.len() {
        if pos + 16 > bytes.len() {
            return Err(PcapError::TruncatedRecord);
        }
        let secs = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let micros = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let incl = u32::from_le_bytes([
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]) as usize;
        let orig_len = u32::from_le_bytes([
            bytes[pos + 12],
            bytes[pos + 13],
            bytes[pos + 14],
            bytes[pos + 15],
        ]);
        pos += 16;
        if pos + incl > bytes.len() {
            return Err(PcapError::TruncatedRecord);
        }
        out.push(CapturedPacket {
            ts: SimTime(u64::from(secs) * 1_000_000 + u64::from(micros)),
            data: bytes[pos..pos + incl].to_vec(),
            orig_len,
        });
        pos += incl;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_capture_roundtrip() {
        let w = PcapWriter::new();
        assert_eq!(w.packet_count(), 0);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 24);
        assert_eq!(read_pcap(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn packets_roundtrip_with_timestamps() {
        let mut w = PcapWriter::new();
        w.write(SimTime(1_500_042), &[1, 2, 3]);
        w.write(SimTime(2_000_000), &[4, 5, 6, 7]);
        assert_eq!(w.packet_count(), 2);
        let recs = read_pcap(&w.finish()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, SimTime(1_500_042));
        assert_eq!(recs[0].data, vec![1, 2, 3]);
        assert_eq!(recs[1].ts, SimTime(2_000_000));
        assert_eq!(recs[1].data, vec![4, 5, 6, 7]);
    }

    #[test]
    fn oversized_packet_truncates_to_snaplen_with_correct_orig_len() {
        // A packet over the declared 65535-byte snapshot length must be
        // cut to the snaplen with orig_len holding the wire size — a
        // record claiming more bytes than the global header promised
        // would be inconsistent and trips real pcap readers.
        let big = vec![0x5A; SNAPLEN as usize + 1000];
        let mut w = PcapWriter::new();
        w.write(SimTime(7), &big);
        let bytes = w.finish();
        // Record header math: 24 global + 16 record + exactly SNAPLEN.
        assert_eq!(bytes.len(), 24 + 16 + SNAPLEN as usize);
        let recs = read_pcap(&bytes).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data.len(), SNAPLEN as usize);
        assert_eq!(recs[0].orig_len, big.len() as u32);
        assert!(recs[0].data.iter().all(|&b| b == 0x5A));
        // And the same through the in-place record path.
        let mut w = PcapWriter::new();
        w.record_with(SimTime(7), |buf| buf.extend_from_slice(&big));
        let recs2 = read_pcap(&w.finish()).unwrap();
        assert_eq!(recs, recs2);
        // Truncation survives a merge: orig_len is carried through.
        let mut w = PcapWriter::new();
        w.write(SimTime(7), &big);
        let merged = merge_captures(&[w.finish()]).unwrap();
        assert_eq!(read_pcap(&merged).unwrap(), recs);
    }

    #[test]
    fn record_with_matches_write_byte_for_byte() {
        let payloads: [&[u8]; 3] = [&[1, 2, 3], &[], &[9; 40]];
        let mut a = PcapWriter::new();
        let mut b = PcapWriter::new();
        for (i, p) in payloads.iter().enumerate() {
            a.write(SimTime(i as u64 * 1000), p);
            b.record_with(SimTime(i as u64 * 1000), |buf| buf.extend_from_slice(p));
        }
        assert_eq!(a.packet_count(), b.packet_count());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PcapWriter::new().finish();
        bytes[0] = 0x00;
        assert!(matches!(read_pcap(&bytes), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new();
        w.write(SimTime(1), &[0xAA; 10]);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(read_pcap(&bytes), Err(PcapError::TruncatedRecord));
    }

    #[test]
    fn merge_interleaves_by_timestamp_stably() {
        let mut a = PcapWriter::new();
        a.write(SimTime(10), &[1]);
        a.write(SimTime(30), &[3]);
        let mut b = PcapWriter::new();
        b.write(SimTime(10), &[2]); // tie with a's first: a wins (input order)
        b.write(SimTime(20), &[4]);
        let merged = merge_captures(&[a.finish(), b.finish()]).unwrap();
        let recs = read_pcap(&merged).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.data[0]).collect::<Vec<u8>>(),
            vec![1, 2, 4, 3]
        );
        assert_eq!(
            recs.iter().map(|r| r.ts.0).collect::<Vec<u64>>(),
            vec![10, 10, 20, 30]
        );
    }

    #[test]
    fn merge_rejects_bad_part() {
        let good = PcapWriter::new().finish();
        assert!(matches!(
            merge_captures(&[good.as_slice(), &[0u8; 8]]),
            Err(PcapError::TooShort)
        ));
        assert_eq!(
            read_pcap(&merge_captures::<&[u8]>(&[]).unwrap()).unwrap(),
            vec![]
        );
    }

    #[test]
    fn wire_packets_survive_pcap() {
        use crate::packet::Datagram;
        use std::net::Ipv4Addr;
        let d = Datagram {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 9),
            src_port: 40000,
            dst_port: 53,
            ttl: 61,
            payload: vec![9; 12].into(),
        };
        let wire = crate::wire::encode_udp(&d, 77);
        let mut w = PcapWriter::new();
        w.write(SimTime(5), &wire);
        let recs = read_pcap(&w.finish()).unwrap();
        match crate::wire::decode(&recs[0].data).unwrap() {
            crate::wire::DecodedPacket::Udp(back) => assert_eq!(back, d),
            other => panic!("expected UDP, got {other:?}"),
        }
    }
}
